"""The repair pass: detect and heal arbitrarily corrupted overlay state.

A crash mid-heal (or any externally inflicted corruption) leaves the
distributed image in states the protocols never produce on their own:
survivors whose local state names a dead node (**dangling pointers** —
the paper's processors announce their own death, crashed ones don't),
heals frozen halfway because the messages that would finish them died
with their sender (**half-applied heals**), edges only one endpoint
claims (**asymmetric claims**), and, after enough damage, islands of
nodes with no symmetric path to the rest (**orphaned fragments**).

:class:`RepairPass` is the self-stabilizing recovery in the Bampas et
al. sense (PAPERS.md: starting from an *arbitrary* configuration, the
system re-converges to a legal one): :meth:`scan` detects every
violation class using the runtimes' own check surfaces (per-node
``pending`` / ``neighbor_claims``, plus each driver's
``integrity_violations()``), and :meth:`run` re-converges the image by
**reset-replay** — the caller rebuilds a fresh driver from the
campaign's initial graph and oracle history (the transport mirror owns
that; see :meth:`TransportMirror.recover_from_crash`), and the pass
certifies the rebuilt overlay scans clean.  Replay, rather than local
state surgery, is what makes the recovered runtime's *future* heals
keep exact message/image parity with the oracle: heal outcomes depend
on will/helper history, not just the current image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

#: Violation classes a scan may report (the docs' taxonomy).
VIOLATION_KINDS = (
    "half-applied-heal",
    "dangling-pointer",
    "asymmetric-claim",
    "orphaned-fragment",
)


@dataclass(frozen=True)
class Violation:
    """One corrupted-state finding: what, where, and the evidence."""

    kind: str
    node: int
    detail: str

    def __post_init__(self) -> None:
        if self.kind not in VIOLATION_KINDS:
            raise ValueError(
                f"unknown violation kind {self.kind!r} "
                f"(one of {VIOLATION_KINDS})"
            )


@dataclass
class RepairReport:
    """One repair pass: what the scan found, and whether rebuild cured it."""

    violations: Tuple[Violation, ...]
    residual: Tuple[Violation, ...] = ()
    victim: Optional[int] = None

    @property
    def repaired(self) -> bool:
        return not self.residual

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for v in self.violations:
            out[v.kind] = out.get(v.kind, 0) + 1
        return out


class RepairPass:
    """Scan a distributed driver's overlay for corruption; certify repair.

    Works on any driver exposing the shared runtime surface
    (``driver.network.nodes`` of objects with ``pending`` and
    ``neighbor_claims()``) — both the Forgiving Tree's and the Forgiving
    Graph's.  When the driver additionally implements
    ``integrity_violations()`` (both do), its protocol-specific findings
    (helper-pointer checks the generic claim walk can't see) replace the
    generic pending/dangling scan.
    """

    def __init__(self, driver):
        self.driver = driver

    # -- detection -----------------------------------------------------
    def scan(self) -> List[Violation]:
        """Every violation in the current overlay (empty = legal state)."""
        nodes = self.driver.network.nodes
        alive = set(nodes)
        out: List[Violation] = []
        specific = getattr(self.driver, "integrity_violations", None)
        if specific is not None:
            out.extend(Violation(*v) for v in specific())
        else:
            for nid, node in nodes.items():
                if node.pending:
                    out.append(
                        Violation(
                            "half-applied-heal",
                            nid,
                            f"awaiting {sorted(node.pending)}",
                        )
                    )
                for claim in sorted(node.neighbor_claims()):
                    if claim not in alive:
                        out.append(
                            Violation(
                                "dangling-pointer",
                                nid,
                                f"claims dead node {claim}",
                            )
                        )
        out.extend(self._claim_violations(nodes, alive))
        return out

    def _claim_violations(self, nodes, alive: Set[int]) -> List[Violation]:
        """Asymmetric claims and fragment structure, from local state
        only (a tolerant re-implementation of ``image_edges``, which
        *raises* on the asymmetry this scan must report)."""
        out: List[Violation] = []
        claims: Dict[int, Set[int]] = {
            nid: {c for c in node.neighbor_claims() if c != nid}
            for nid, node in nodes.items()
        }
        symmetric: Dict[int, Set[int]] = {nid: set() for nid in alive}
        for nid in sorted(claims):
            for other in sorted(claims[nid]):
                if other not in alive:
                    continue  # dangling, reported above
                if nid in claims[other]:
                    symmetric[nid].add(other)
                elif nid < other:
                    out.append(
                        Violation(
                            "asymmetric-claim",
                            nid,
                            f"claims {other}, which does not claim back",
                        )
                    )
        out.extend(self._fragments(symmetric))
        return out

    @staticmethod
    def _fragments(symmetric: Dict[int, Set[int]]) -> List[Violation]:
        """Connected components of the symmetric-claim graph beyond the
        first: each is an orphaned fragment (healing restores a single
        connected overlay; fragments can never rejoin on their own)."""
        if not symmetric:
            return []
        seen: Set[int] = set()
        components: List[List[int]] = []
        for start in sorted(symmetric):
            if start in seen:
                continue
            stack, comp = [start], []
            seen.add(start)
            while stack:
                nid = stack.pop()
                comp.append(nid)
                for nxt in symmetric[nid]:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            components.append(comp)
        # The main component is the largest; every other is orphaned.
        components.sort(key=len, reverse=True)
        return [
            Violation(
                "orphaned-fragment",
                min(comp),
                f"fragment of {len(comp)} node(s) disconnected "
                f"from the main component",
            )
            for comp in components[1:]
        ]

    # -- repair --------------------------------------------------------
    def run(
        self, rebuild: Callable[[], object], victim: Optional[int] = None
    ) -> RepairReport:
        """Scan, rebuild via ``rebuild()``, certify the result scans clean.

        ``rebuild`` returns the re-converged driver (reset-replay from
        the initial graph and the oracle's event history); the pass
        re-scans it and reports residual violations — an honestly failed
        repair is a report with ``repaired=False``, never a silent pass.
        """
        violations = tuple(self.scan())
        repaired = rebuild()
        if repaired is not None:
            self.driver = repaired
        residual = tuple(self.scan())
        return RepairReport(
            violations=violations, residual=residual, victim=victim
        )
