"""faults — the hostile-network subsystem.

Fault injection (per-link drop/duplicate probabilities, crash-during-
heal adversaries) layered on the simnet kernel, the timeout/retransmit
reliable-delivery layer that survives it, and the self-stabilizing
:class:`RepairPass` that re-converges arbitrarily corrupted overlay
state to the sequential oracle.  See ``docs/FAULTS.md``.
"""

from .plan import (
    CRASH_TARGETS,
    CrashDuringHeal,
    FaultInput,
    FaultPlan,
    FaultSummary,
    LinkFaults,
    resolve_faults,
)
from .repair import VIOLATION_KINDS, RepairPass, RepairReport, Violation

__all__ = [
    "CRASH_TARGETS",
    "VIOLATION_KINDS",
    "CrashDuringHeal",
    "FaultInput",
    "FaultPlan",
    "FaultSummary",
    "LinkFaults",
    "RepairPass",
    "RepairReport",
    "Violation",
    "resolve_faults",
]
