"""Fault plans: the declarative description of a hostile network.

The papers assume a *reliable* network — every message delivered exactly
once, every node announcing its own death.  A :class:`FaultPlan` drops
that assumption as data: per-link loss and duplication probabilities
(seeded and deterministic, drawn from a dedicated RNG stream so the
latency and scheduler draws are untouched), the timeout/retransmit
parameters the kernel's reliable-delivery layer uses to survive the
loss, and a schedule of :class:`CrashDuringHeal` adversaries that kill a
coordinator or participant *between delivery layers* mid-heal.

The plan is pure configuration: the machinery lives in
:class:`~repro.simnet.AsyncNetwork` (loss/duplication/retransmit/crash
at the delivery layer — both distributed runtimes experience faults
without code changes) and :class:`repro.faults.RepairPass` (the
self-stabilizing recovery that re-converges a crashed overlay to the
oracle).  See ``docs/FAULTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Mapping, Optional, Tuple, Union

#: Who a :class:`CrashDuringHeal` kills: the heal's coordinator (the
#: node the protocols elect to anchor the repair) or a deterministic
#: non-coordinator participant of the heal footprint.
CRASH_TARGETS = ("coordinator", "participant")


@dataclass(frozen=True)
class LinkFaults:
    """Per-link override of the plan's global drop/dup probabilities."""

    drop: float = 0.0
    dup: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("drop", self.drop, strict=True)
        _check_probability("dup", self.dup)


@dataclass(frozen=True)
class CrashDuringHeal:
    """Kill one node mid-heal, between delivery layers.

    ``event`` is the campaign event index whose heal is attacked;
    ``layer`` the causal depth after which the crash fires (the victim
    dies at the first delivery deeper than ``layer``, or at quiescence
    if the heal never gets that deep — the crash always lands);
    ``target`` picks the victim (:data:`CRASH_TARGETS`).  The victim
    does *not* announce its death: in-flight messages to it become
    dead-recipient drops and its neighbors' state dangles until the
    repair pass runs.
    """

    event: int
    layer: int = 1
    target: str = "coordinator"

    def __post_init__(self) -> None:
        if self.event < 0:
            raise ValueError("crash event index must be >= 0")
        if self.layer < 0:
            raise ValueError("crash layer must be >= 0")
        if self.target not in CRASH_TARGETS:
            raise ValueError(
                f"unknown crash target {self.target!r} (one of {CRASH_TARGETS})"
            )


@dataclass(frozen=True)
class FaultPlan:
    """One campaign's hostile-network configuration (see module doc).

    ``drop`` / ``dup`` are the global per-message probabilities; ``links``
    overrides them per directed ``(sender, recipient)`` pair.  ``rto``,
    ``backoff`` and ``max_attempts`` parameterize the reliable-delivery
    layer: a message lost ``k`` times is retransmitted after
    ``rto * backoff**i`` for each failed attempt ``i`` (``max_attempts``
    caps the attempts, so delivery always terminates and ``drop`` may
    approach 1).  ``seen_window`` bounds each recipient's duplicate-
    suppression memory of ``(sender, sequence)`` pairs.  ``seed=None``
    derives the fault RNG stream from the kernel seed (stream 3 —
    disjoint from the latency and scheduler streams), so one campaign
    seed still fixes the whole run.
    """

    drop: float = 0.0
    dup: float = 0.0
    links: Mapping[Tuple[int, int], LinkFaults] = field(default_factory=dict)
    crashes: Tuple[CrashDuringHeal, ...] = ()
    rto: float = 1.0
    backoff: float = 2.0
    max_attempts: int = 16
    seen_window: int = 4096
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        _check_probability("drop", self.drop, strict=True)
        _check_probability("dup", self.dup)
        if self.rto <= 0:
            raise ValueError("rto must be > 0")
        if self.backoff < 1:
            raise ValueError("backoff must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.seen_window < 1:
            raise ValueError("seen_window must be >= 1")
        object.__setattr__(self, "crashes", tuple(self.crashes))
        for crash in self.crashes:
            if not isinstance(crash, CrashDuringHeal):
                raise ValueError(f"not a CrashDuringHeal: {crash!r}")
        seen_events = [c.event for c in self.crashes]
        if len(seen_events) != len(set(seen_events)):
            raise ValueError("at most one crash per campaign event")
        for link, faults in dict(self.links).items():
            if not isinstance(faults, LinkFaults):
                raise ValueError(f"link {link}: not a LinkFaults: {faults!r}")

    @property
    def active(self) -> bool:
        """Whether any fault mode is actually on."""
        return bool(
            self.drop or self.dup or self.links or self.crashes
        )

    def link(self, sender: int, recipient: int) -> Tuple[float, float]:
        """The effective ``(drop, dup)`` probabilities for one send."""
        override = self.links.get((sender, recipient))
        if override is not None:
            return override.drop, override.dup
        return self.drop, self.dup

    def crash_for(self, event_index: int) -> Optional[CrashDuringHeal]:
        """The crash scheduled for this campaign event, if any."""
        for crash in self.crashes:
            if crash.event == event_index:
                return crash
        return None

    def retransmit_delay(self, lost_attempts: int) -> float:
        """Virtual time the reliable-delivery layer spends re-sending a
        message that was lost ``lost_attempts`` times: one exponentially
        backed-off timeout per failed attempt."""
        return sum(self.rto * self.backoff ** i for i in range(lost_attempts))


FaultInput = Union[None, FaultPlan, Mapping[str, object]]


def resolve_faults(faults: FaultInput) -> Optional[FaultPlan]:
    """Normalize the ``faults=`` knob into a plan (or None = reliable)."""
    if faults is None:
        return None
    if isinstance(faults, FaultPlan):
        return faults
    if isinstance(faults, Mapping):
        return FaultPlan(**faults)
    raise ValueError(
        f"faults must be a FaultPlan or a kwargs mapping, not {faults!r}"
    )


@dataclass
class FaultSummary:
    """What a faulted campaign's transport observed, campaign-wide.

    ``drops`` counts lost transmission attempts and ``retransmissions``
    the re-sends that recovered them — equal by construction (every loss
    is retried until a copy lands; the ``max_attempts`` cap bounds the
    count but the final attempt always delivers), the exact-parity
    invariant the tests pin.  ``dead_drops`` are deliveries to crashed
    or departed recipients — *not* retransmitted (the recipient is gone,
    not the message).  ``violations`` counts the corrupted-state
    findings of the repair passes that ran; ``unrepaired_violations``
    stays 0 on a converged campaign (the SLO watchdogs budget it).
    """

    drops: int = 0
    retransmissions: int = 0
    duplicates: int = 0
    dup_suppressed: int = 0
    dead_drops: int = 0
    crashes: int = 0
    handler_faults: int = 0
    repairs: int = 0
    violations: int = 0
    unrepaired_violations: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def window_record(self, events: int) -> Dict[str, object]:
        """The tallies as an SLO-watchdog window record.

        Shaped for :func:`repro.obs.slo.fault_slos`: the raw counters
        under ``"faults."`` plus the derived rates the budgets compare
        against (``dup_leak`` is duplicates the seen-window failed to
        suppress — 0 unless a window overflowed or a duplicate raced
        its original's crash).
        """
        n = max(1, events)
        d = dict(self.to_dict())
        d["retransmissions_per_event"] = self.retransmissions / n
        d["dup_leak"] = self.duplicates - self.dup_suppressed
        d["retransmit_deficit"] = self.drops - self.retransmissions
        return {"events": events, "faults": d}


def _check_probability(name: str, value: float, strict: bool = False) -> None:
    if strict:
        # drop=1.0 would loop the retransmit layer to max_attempts on
        # every message; demand headroom.
        if not 0.0 <= value < 1.0:
            raise ValueError(f"{name} must be within [0, 1)")
    elif not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1]")
