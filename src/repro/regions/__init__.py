"""regions — region leases and coordinator handoff for overlapping heals.

The protocol layer that lets churn events with *intersecting* heal
footprints make progress concurrently instead of serializing behind a
global quiesce barrier: a deterministic per-node lease table
(:class:`LeaseManager`), the handoff state machine every event walks
(:mod:`repro.regions.handoff`), and counted escalation back to the
barrier when handoff is unsafe.  Wired into campaigns through
``TransportSpec(overlap="lease")`` — see ``docs/LEASES.md``.
"""

from .handoff import (
    DELEGATED,
    ESCALATED,
    ESCALATION_REASONS,
    GRANTED,
    INJECTED,
    RELEASED,
    REQUESTED,
    RESUMED,
    DeferredHeal,
    HandoffError,
    HandoffLedger,
    HealHandoff,
)
from .leases import (
    LeaseDecision,
    LeaseError,
    LeaseManager,
    LeaseTableStats,
    Priority,
)

__all__ = [
    "DELEGATED",
    "ESCALATED",
    "ESCALATION_REASONS",
    "GRANTED",
    "INJECTED",
    "RELEASED",
    "REQUESTED",
    "RESUMED",
    "DeferredHeal",
    "HandoffError",
    "HandoffLedger",
    "HealHandoff",
    "LeaseDecision",
    "LeaseError",
    "LeaseManager",
    "LeaseTableStats",
    "Priority",
]
