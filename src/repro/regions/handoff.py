"""Coordinator handoff: the life of a heal through the lease protocol.

When a churn event lands inside an in-flight heal's leased region, its
repair is not started — it is **delegated**: queued on the owning heal's
coordinator (the node anchoring that repair) and resumed the moment the
blocking lease is released.  This module is the state machine that
tracks every event through that protocol, mirrored after the transport's
centralized implementation of it (see the honest-deviations section of
``docs/LEASES.md``).

States and legal transitions::

            acquire
    REQUESTED ──────────────► GRANTED ───────► INJECTED ───► RELEASED
        │                                         ▲
        │ conflict                                │ lease release
        └─────────► DELEGATED ────────► RESUMED ──┘
                        │
                        │ lease cycle / coordinator death / wait chain
                        └─────────► ESCALATED ───► INJECTED (behind a
                                                   global barrier)

* ``GRANTED`` — leases acquired immediately; the heal injects now.
* ``DELEGATED`` — blocked; queued on the blocking heal's coordinator.
* ``RESUMED`` — the blocking lease released; leases now held.
* ``ESCALATED`` — handoff was unsafe; the transport fell back to the
  PR 4 global quiesce barrier (the reason is recorded and counted,
  never silent).
* ``RELEASED`` — the heal quiesced and its leases are free.

An illegal transition raises :class:`HandoffError` — the ledger is how
the tests pin that the transport walks the state machine exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import ReproError
from ..obs.trace import CONTROL_TRACK, NO_TRACE
from .leases import Priority

#: Escalation reasons the transport may record (ISSUE-mandated triggers).
#: ``"crash"`` is the hostile-network one: a :class:`repro.faults`
#: crash-during-heal kills an in-flight coordinator, so delegation is
#: impossible and the event escalates to the global barrier (the heal
#: then injects with the crash armed and the repair pass re-converges).
ESCALATION_REASONS = ("coordinator-death", "lease-cycle", "wait-chain", "crash")

REQUESTED = "requested"
GRANTED = "granted"
DELEGATED = "delegated"
RESUMED = "resumed"
ESCALATED = "escalated"
INJECTED = "injected"
RELEASED = "released"

_TRANSITIONS = {
    REQUESTED: {GRANTED, DELEGATED, ESCALATED},
    GRANTED: {INJECTED},
    DELEGATED: {RESUMED, ESCALATED},
    RESUMED: {INJECTED},
    ESCALATED: {INJECTED},
    INJECTED: {RELEASED},
    RELEASED: set(),
}


class HandoffError(ReproError):
    """An illegal handoff state transition."""


@dataclass
class HealHandoff:
    """One event's walk through the handoff state machine."""

    eid: int
    state: str = REQUESTED
    requested_at: float = 0.0
    granted_at: Optional[float] = None
    delegated_to: Optional[int] = None
    escalation: Optional[str] = None
    history: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def lease_wait(self) -> float:
        """Virtual time spent between request and lease grant."""
        if self.granted_at is None:
            return 0.0
        return self.granted_at - self.requested_at

    def advance(self, state: str, clock: float) -> None:
        if state not in _TRANSITIONS[self.state]:
            raise HandoffError(
                f"event {self.eid}: illegal handoff {self.state} -> {state}"
            )
        self.state = state
        self.history.append((state, clock))


@dataclass
class DeferredHeal:
    """A delegated event parked until its blocking leases release.

    Carries everything injection needs later: the oracle's report (the
    payload the transport replays), the footprint the leases cover, and
    the deterministic priority.
    """

    eid: int
    report: object  # a HealReport; typed loosely to avoid a core import
    footprint: frozenset
    priority: Priority
    delegated_to: Optional[int]


class HandoffLedger:
    """Tracks every event's handoff state + the campaign-level counters."""

    def __init__(self, tracer=NO_TRACE) -> None:
        self._heals: Dict[int, HealHandoff] = {}
        self.escalations: Dict[str, int] = {}
        self.wait_times: List[float] = []
        self.immediate_grants = 0
        self.peak_deferred = 0
        self._deferred_now = 0
        # Optional causal tracer (repro.obs): every state transition
        # becomes an instant on the control-plane track, so a Perfetto
        # view shows grant/defer/resume/escalate against the heal spans.
        self.tracer = tracer

    def _mark(self, state: str, eid: int, clock: float, **extra) -> None:
        if self.tracer.enabled:
            self.tracer.instant(
                f"handoff:{state}",
                "handoff",
                clock,
                CONTROL_TRACK,
                args=dict(eid=eid, **extra),
            )

    def __getitem__(self, eid: int) -> HealHandoff:
        return self._heals[eid]

    def __len__(self) -> int:
        return len(self._heals)

    @property
    def lease_waits(self) -> int:
        """Events that waited for a lease and were resumed by a release
        (escalated waits are counted under :attr:`escalations` instead,
        so ``immediate_grants + lease_waits + total_escalations`` equals
        the number of events mirrored)."""
        return len(self.wait_times)

    @property
    def total_escalations(self) -> int:
        return sum(self.escalations.values())

    def request(self, eid: int, clock: float) -> HealHandoff:
        if eid in self._heals:
            raise HandoffError(f"event {eid} already in the ledger")
        h = HealHandoff(eid=eid, requested_at=clock)
        h.history.append((REQUESTED, clock))
        self._heals[eid] = h
        self._mark(REQUESTED, eid, clock)
        return h

    def granted(self, eid: int, clock: float) -> None:
        h = self._heals[eid]
        h.advance(GRANTED, clock)
        h.granted_at = clock
        self.immediate_grants += 1
        self._mark(GRANTED, eid, clock)

    def delegated(self, eid: int, clock: float, to: Optional[int]) -> None:
        h = self._heals[eid]
        h.advance(DELEGATED, clock)
        h.delegated_to = to
        self._deferred_now += 1
        self.peak_deferred = max(self.peak_deferred, self._deferred_now)
        self._mark(DELEGATED, eid, clock, to=to)

    def resumed(self, eid: int, clock: float) -> None:
        h = self._heals[eid]
        h.advance(RESUMED, clock)
        h.granted_at = clock
        self._deferred_now -= 1
        self.wait_times.append(h.lease_wait)
        self._mark(RESUMED, eid, clock, waited=h.lease_wait)

    def escalated(self, eid: int, clock: float, reason: str) -> None:
        if reason not in ESCALATION_REASONS:
            raise HandoffError(f"unknown escalation reason {reason!r}")
        h = self._heals[eid]
        if h.state == DELEGATED:
            self._deferred_now -= 1
        h.advance(ESCALATED, clock)
        h.escalation = reason
        self.escalations[reason] = self.escalations.get(reason, 0) + 1
        self._mark(ESCALATED, eid, clock, reason=reason)

    def injected(self, eid: int, clock: float) -> None:
        self._heals[eid].advance(INJECTED, clock)
        self._mark(INJECTED, eid, clock)

    def released(self, eid: int, clock: float) -> None:
        self._heals[eid].advance(RELEASED, clock)
        self._mark(RELEASED, eid, clock)

    def check_drained(self) -> None:
        """After a global barrier every heal must be terminal.

        ``ESCALATED`` is the one admissible non-terminal state: an
        escalating event runs its barrier *before* injecting (the
        barrier is what makes its admission safe), so during that
        barrier the event itself is still awaiting injection."""
        stuck = [
            e
            for e, h in self._heals.items()
            if h.state not in (RELEASED, ESCALATED)
        ]
        if stuck:
            raise HandoffError(f"heals not released after barrier: {stuck[:6]}")
