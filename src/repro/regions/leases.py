"""Region leases: deterministic admission for overlapping heals.

PR 4's async transport admits a churn event concurrently only when its
heal footprint is disjoint from *every* in-flight repair; any overlap
forces a global quiesce barrier.  The :class:`LeaseManager` replaces
that all-or-nothing rule with per-node **leases**: an in-flight heal
holds a lease on every node of its footprint, and a new event acquires
its own footprint's leases before injection.

* **Grant** — no held or earlier-queued lease intersects the request:
  the heal is admitted immediately and flies concurrently with every
  other holder (all holders are pairwise disjoint by construction).
* **Defer** — the request intersects a holder or an earlier waiter: the
  event is queued, *delegated* to the blocking heal's coordinator (see
  :mod:`repro.regions.handoff`), and resumed the moment its blockers
  release.  Unrelated heals keep flying — the serialized path's global
  drain never happens.

Conflict resolution is deterministic and seed-stable: every request
carries a priority ``(virtual time of the triggering event, event id)``
— a strict total order because the transport mirrors the oracle's event
stream in order over a monotone clock.  A waiter is granted exactly when
no conflicting lease is held *and* no conflicting earlier-priority
request is still waiting, so conflicting events are always admitted in
oracle order (the commutativity argument of ``docs/ASYNC.md`` then
applies pairwise to everything admitted concurrently).

Because holders never wait and waiters only ever wait on strictly
earlier priorities, the waits-for relation is acyclic by construction.
:meth:`LeaseManager.find_cycle` still checks — a cycle would mean the
invariant broke, and the transport escalates to a global quiesce barrier
(counted, never silent) rather than deadlocking.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.errors import ReproError

#: A request's priority: (virtual time of the triggering event, event id).
#: Tuple comparison gives the deterministic total order the docstring
#: describes — earlier virtual time wins, ties broken by event id.
Priority = Tuple[float, int]


class LeaseError(ReproError):
    """An impossible lease-table state (double grant, unknown id, ...)."""


@dataclass(frozen=True)
class LeaseDecision:
    """What :meth:`LeaseManager.acquire` decided for one request.

    ``granted`` means the leases are held and the heal may inject now.
    Otherwise ``blockers`` names every conflicting event id (held or
    queued ahead), in priority order, and ``delegated_to`` is the
    coordinator of the highest-priority blocking *holder* — the node the
    handoff protocol queues the late event on (``None`` when the head
    blocker is itself still waiting and has no coordinator yet).
    """

    eid: int
    granted: bool
    blockers: Tuple[int, ...] = ()
    delegated_to: Optional[int] = None


@dataclass
class _Waiter:
    eid: int
    footprint: FrozenSet[int]
    priority: Priority
    delegated_to: Optional[int] = None
    #: The waits-for edges, captured at acquire time and crossed off as
    #: blockers release — the structure :meth:`LeaseManager.find_cycle`
    #: audits.  A waiter is grantable exactly when this empties.
    blockers: Set[int] = field(default_factory=set)


@dataclass
class LeaseTableStats:
    """Counters the transport folds into its campaign summary."""

    requests: int = 0
    immediate_grants: int = 0
    deferred: int = 0
    regrants: int = 0
    peak_waiting: int = 0
    peak_held: int = 0


class LeaseManager:
    """Per-node lease table with deterministic priority admission.

    The manager is transport-agnostic bookkeeping: it never touches the
    network.  The caller (:class:`~repro.simnet.TransportMirror`) owns
    the clock, computes footprints from the oracle's reports, injects
    granted heals, and releases leases when the kernel reports the heal
    quiesced.
    """

    def __init__(self, profiler=None, metrics=None) -> None:
        self._held: Dict[int, FrozenSet[int]] = {}
        self._coordinator: Dict[int, Optional[int]] = {}
        self._waiting: List[_Waiter] = []
        self._priority: Dict[int, Priority] = {}
        self.stats = LeaseTableStats()
        # Optional observability instruments (repro.obs): a PhaseProfiler
        # timing the grant cascade and a MetricsRegistry streaming the
        # admission counters.  Both default off and cost one None-check.
        self.profiler = profiler
        self.metrics = metrics

    # -- queries -----------------------------------------------------------
    def holders(self) -> List[int]:
        """Event ids currently holding leases (in priority order)."""
        return sorted(self._held, key=lambda e: self._priority[e])

    def waiters(self) -> List[int]:
        """Event ids queued for leases (in priority order)."""
        return [w.eid for w in self._waiting]

    def held_nodes(self) -> Set[int]:
        """Every node currently under a lease."""
        out: Set[int] = set()
        for fp in self._held.values():
            out |= fp
        return out

    def coordinator_of(self, eid: int) -> Optional[int]:
        """The heal's coordinator (holders: set at injection; waiters:
        their delegation target)."""
        if eid in self._coordinator:
            return self._coordinator[eid]
        for w in self._waiting:
            if w.eid == eid:
                return w.delegated_to
        raise LeaseError(f"unknown lease id {eid}")

    def coordinators(self) -> Set[int]:
        """Every node currently anchoring a heal or a handoff queue."""
        out = {c for c in self._coordinator.values() if c is not None}
        out |= {w.delegated_to for w in self._waiting if w.delegated_to is not None}
        return out

    def blockers_of(self, eid: int) -> Tuple[int, ...]:
        """Current blockers of a waiting event (empty for holders)."""
        if eid in self._held:
            return ()
        for w in self._waiting:
            if w.eid == eid:
                return tuple(sorted(w.blockers, key=lambda b: self._priority[b]))
        raise LeaseError(f"unknown lease id {eid}")

    def wait_chain_depth(self) -> int:
        """Longest blocking chain among queued waiters.

        Depth 1 = a waiter blocked only by holders; each additional link
        is a waiter blocked by another waiter.  The transport escalates
        when this exceeds its ``max_wait_chain`` — a convoy that deep
        means the lease path has degenerated into a serial queue and the
        global barrier bounds its staleness.
        """
        depth: Dict[int, int] = {}
        for w in self._waiting:  # priority order: blockers come first
            blocked_on_waiters = [depth[b] for b in w.blockers if b in depth]
            depth[w.eid] = 1 + max(blocked_on_waiters, default=0)
        return max(depth.values(), default=0)

    def find_cycle(self) -> Optional[List[int]]:
        """A waits-for cycle among the stored blocker edges, or None.

        Structurally unreachable (waiters only ever capture strictly
        earlier priorities as blockers, and holders never wait) — audited
        anyway so a broken invariant escalates loudly instead of
        deadlocking silently.
        """
        edges = {
            w.eid: [b for b in w.blockers if b not in self._held]
            for w in self._waiting
        }
        state: Dict[int, int] = {}  # 1 = on stack, 2 = done

        def visit(eid: int, trail: List[int]) -> Optional[List[int]]:
            state[eid] = 1
            trail.append(eid)
            for nxt in edges.get(eid, ()):
                if state.get(nxt) == 1:
                    return trail[trail.index(nxt):] + [nxt]
                if state.get(nxt) is None:
                    found = visit(nxt, trail)
                    if found:
                        return found
            trail.pop()
            state[eid] = 2
            return None

        for eid in edges:
            if state.get(eid) is None:
                found = visit(eid, [])
                if found:
                    return found
        return None

    # -- the protocol ------------------------------------------------------
    def acquire(
        self,
        eid: int,
        footprint: Sequence[int],
        priority: Priority,
        coordinator: Optional[int] = None,
    ) -> LeaseDecision:
        """Request leases on ``footprint`` for event ``eid``.

        ``coordinator`` is recorded for an immediate grant (the heal's
        own coordinator, used for delegation and the coordinator-death
        escalation check).  Returns the :class:`LeaseDecision`.
        """
        if eid in self._held or eid in self._priority:
            raise LeaseError(f"lease id {eid} already active")
        fp = frozenset(footprint)
        self.stats.requests += 1
        if self.metrics is not None:
            self.metrics.counter("lease.requests").inc()
            self.metrics.histogram("lease.footprint").observe(len(fp))
        blockers = self._blockers(fp, priority)
        if not blockers:
            self._grant(eid, fp, priority, coordinator)
            self.stats.immediate_grants += 1
            if self.metrics is not None:
                self.metrics.counter("lease.grants").inc()
            return LeaseDecision(eid=eid, granted=True)
        head = blockers[0]
        delegated = (
            self._coordinator.get(head)
            if head in self._held
            else next(w.delegated_to for w in self._waiting if w.eid == head)
        )
        self._waiting.append(
            _Waiter(
                eid=eid,
                footprint=fp,
                priority=priority,
                delegated_to=delegated,
                blockers=set(blockers),
            )
        )
        self._waiting.sort(key=lambda w: w.priority)
        self._priority[eid] = priority
        self.stats.deferred += 1
        self.stats.peak_waiting = max(self.stats.peak_waiting, len(self._waiting))
        if self.metrics is not None:
            self.metrics.counter("lease.defers").inc()
            self.metrics.gauge("lease.waiting").set(len(self._waiting))
        return LeaseDecision(
            eid=eid, granted=False, blockers=blockers, delegated_to=delegated
        )

    def release(self, eid: int) -> List[int]:
        """The heal quiesced: free its leases and admit what unblocks.

        Crosses ``eid`` off every waiter's blocker set; a waiter whose
        set empties is granted.  Returns the newly granted event ids
        **in priority order**; the caller must inject them in that order
        (their leases are already held).  A release can cascade nothing
        (the freed region is uncontended) or several waiters at once
        (disjoint waiters behind the same holder all resume together).
        """
        if eid not in self._held:
            raise LeaseError(f"release of non-held lease id {eid}")
        del self._held[eid]
        del self._coordinator[eid]
        del self._priority[eid]
        for w in self._waiting:
            w.blockers.discard(eid)
        return self._grant_unblocked()

    def withdraw(self, eid: int) -> List[int]:
        """Remove a *waiting* request (its handoff escalated: the event
        will re-acquire against an empty table after the barrier).

        Only the newest request can meaningfully withdraw — nothing can
        block on the highest priority — but later waiters' blocker sets
        are swept anyway, and any waiter that empties is granted through
        the same cascade a release runs (returned in priority order), so
        no waiter is ever stranded with nothing to wait on.
        """
        for i, w in enumerate(self._waiting):
            if w.eid == eid:
                del self._waiting[i]
                del self._priority[eid]
                for other in self._waiting:
                    other.blockers.discard(eid)
                return self._grant_unblocked()
        raise LeaseError(f"withdraw of non-waiting lease id {eid}")

    def _grant_unblocked(self) -> List[int]:
        """Grant every waiter whose blocker set emptied (priority order)."""
        if self.profiler is None:
            return self._grant_unblocked_inner()
        t0 = time.perf_counter_ns()
        granted = self._grant_unblocked_inner()
        self.profiler.add("lease:cascade", time.perf_counter_ns() - t0)
        return granted

    def _grant_unblocked_inner(self) -> List[int]:
        granted: List[int] = []
        still_waiting: List[_Waiter] = []
        for w in self._waiting:  # priority order
            if not w.blockers:
                # Defensive re-check: under the transport's monotone
                # priorities an empty blocker set implies disjointness
                # from every holder, but a direct API user may acquire
                # out of priority order — refill instead of granting a
                # conflicting lease.
                conflicts = {
                    held_eid
                    for held_eid, held_fp in self._held.items()
                    if w.footprint & held_fp
                }
                if conflicts:
                    w.blockers |= conflicts
                    still_waiting.append(w)
                    continue
                self._grant(w.eid, w.footprint, w.priority, None, regrant=True)
                granted.append(w.eid)
            else:
                still_waiting.append(w)
        self._waiting = still_waiting
        self.stats.regrants += len(granted)
        if granted and self.metrics is not None:
            self.metrics.counter("lease.regrants").inc(len(granted))
        return granted

    def set_coordinator(self, eid: int, coordinator: Optional[int]) -> None:
        """Record a held heal's coordinator (known only at injection)."""
        if eid not in self._held:
            raise LeaseError(f"coordinator for non-held lease id {eid}")
        self._coordinator[eid] = coordinator

    def clear(self) -> None:
        """Global barrier: everything drained, all leases void."""
        self._held.clear()
        self._coordinator.clear()
        self._waiting.clear()
        self._priority.clear()

    # -- internals ---------------------------------------------------------
    def _blockers(self, fp: FrozenSet[int], priority: Priority) -> Tuple[int, ...]:
        out = [
            (self._priority[eid], eid)
            for eid, held_fp in self._held.items()
            if fp & held_fp
        ]
        out += [
            (w.priority, w.eid)
            for w in self._waiting
            if w.priority < priority and (w.footprint & fp)
        ]
        return tuple(eid for _, eid in sorted(out))

    def _grant(
        self,
        eid: int,
        fp: FrozenSet[int],
        priority: Priority,
        coordinator: Optional[int],
        regrant: bool = False,
    ) -> None:
        self._held[eid] = fp
        self._coordinator[eid] = coordinator
        self._priority[eid] = priority
        self.stats.peak_held = max(self.stats.peak_held, len(self._held))

    # -- validation (tests) ------------------------------------------------
    def check(self) -> None:
        """Invariants: holders pairwise disjoint, queue priority-sorted,
        waits-for acyclic.  Raises :class:`LeaseError` on violation."""
        held = list(self._held.items())
        for i, (ea, fa) in enumerate(held):
            for eb, fb in held[i + 1:]:
                if fa & fb:
                    raise LeaseError(
                        f"holders {ea} and {eb} share nodes {sorted(fa & fb)[:4]}"
                    )
        priorities = [w.priority for w in self._waiting]
        if priorities != sorted(priorities):
            raise LeaseError("wait queue out of priority order")
        live = set(self._held) | {w.eid for w in self._waiting}
        for w in self._waiting:
            if not w.blockers:
                raise LeaseError(f"waiter {w.eid} has no blockers yet waits")
            dangling = w.blockers - live
            if dangling:
                raise LeaseError(
                    f"waiter {w.eid} blocked on released ids {sorted(dangling)}"
                )
        cycle = self.find_cycle()
        if cycle:
            raise LeaseError(f"waits-for cycle {cycle}")
