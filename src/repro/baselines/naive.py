"""Naive self-healing strategies the paper's introduction rules out.

Section 1 ("Our Results"): *"A naive approach ... is simply to 'surrogate'
one neighbor of the deleted node to take on the role of the deleted node
... an intelligent adversary can always cause this approach to increase the
degree of some node by Θ(n).  On the other hand, we may try to keep the
degree increase low by connecting neighbors of the deleted node as a
straight line, or ... in a binary tree.  However, for both of these
techniques the diameter can increase by Θ(n) over multiple deletions."*

These strategies are implemented here so the benchmarks can reproduce the
claimed failure modes head-to-head with the Forgiving Tree:

* :class:`SurrogateHealer` — one neighbor absorbs all of the dead node's
  edges (degree blow-up under the surrogate-killer adversary).
* :class:`LineHealer` — the dead node's neighbors are chained in a line
  (diameter blow-up: roughly +deg per deletion along a path).
* :class:`BinaryTreeHealer` — the dead node's neighbors are reconnected as
  a balanced binary tree; better locally, but the adversary still drives
  the diameter to Θ(n) over repeated deletions because the trees are not
  coordinated (this is the strategy of the earlier work [3, 19] the paper
  builds on).
* :class:`NoRepairHealer` — the control: remove the node, add nothing
  (measures raw fragmentation, used by the Skype-outage example).
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..core.errors import NodeNotFoundError
from ..core.events import EdgeAdded, HealReport, NodeInserted, edge_key
from ..graphs.adjacency import (
    Graph,
    add_edge,
    copy as copy_graph,
    remove_node,
)
from .base import Healer, edge_delta_report


class _GraphHealer(Healer):
    """Shared plumbing: keeps a mutable current graph."""

    def __init__(self, graph: Graph):
        super().__init__(graph)
        self._graph = copy_graph(graph)

    def graph(self) -> Graph:
        return copy_graph(self._graph)

    @property
    def alive(self) -> Set[int]:
        return set(self._graph)

    def delete(self, nid: int) -> HealReport:
        self._pre_delete(nid)
        before = copy_graph(self._graph)
        neighbors = sorted(remove_node(self._graph, nid))
        self._repair(nid, neighbors)
        return edge_delta_report(
            nid, before, self._graph, was_internal=len(neighbors) > 1
        )

    def insert(self, nid: int, attach_to: int) -> HealReport:
        nid = int(nid)
        self._pre_insert(nid, attach_to)
        add_edge(self._graph, nid, attach_to)
        self._original_degree[nid] = 1
        self._original_degree[attach_to] += 1
        return HealReport(
            deleted=-1,
            edges_added=frozenset({edge_key(nid, attach_to)}),
            events=(
                NodeInserted(nid, attach_to),
                EdgeAdded(*edge_key(nid, attach_to)),
            ),
            inserted=nid,
            attached_to=attach_to,
        )

    def _repair(self, deleted: int, neighbors: List[int]) -> None:
        raise NotImplementedError


class NoRepairHealer(_GraphHealer):
    """Control strategy: do nothing after a deletion (may disconnect)."""

    name = "no-repair"

    def _repair(self, deleted: int, neighbors: List[int]) -> None:
        return


class SurrogateHealer(_GraphHealer):
    """One surviving neighbor inherits every edge of the deleted node.

    The surrogate is chosen deterministically (the smallest-id neighbor),
    which is exactly what the omniscient adversary exploits: repeatedly
    deleting neighbors of the current surrogate piles all their edges onto
    it, driving its degree to Θ(n).
    """

    name = "surrogate"

    def __init__(self, graph: Graph, choose_max_degree: bool = False):
        super().__init__(graph)
        self._choose_max_degree = choose_max_degree
        self.last_surrogate: Optional[int] = None

    def _repair(self, deleted: int, neighbors: List[int]) -> None:
        if len(neighbors) <= 1:
            self.last_surrogate = neighbors[0] if neighbors else None
            return
        if self._choose_max_degree:
            surrogate = max(neighbors, key=lambda x: (len(self._graph[x]), -x))
        else:
            surrogate = neighbors[0]
        self.last_surrogate = surrogate
        for other in neighbors:
            if other != surrogate:
                add_edge(self._graph, surrogate, other)


class LineHealer(_GraphHealer):
    """Connect the deleted node's neighbors in a line (sorted by id).

    Degree increase is at most 2, but the diameter grows by Θ(deg) per
    deletion: an adversary walking down a path of stars stretches the
    network to Θ(n) (reproduced by EXP-BASE-DIAM).
    """

    name = "line"

    def _repair(self, deleted: int, neighbors: List[int]) -> None:
        for a, b in zip(neighbors, neighbors[1:]):
            add_edge(self._graph, a, b)


class BinaryTreeHealer(_GraphHealer):
    """Reconnect the deleted node's neighbors as a balanced binary tree.

    The local replacement trees are uncoordinated across deletions, so an
    adversary can still chain them into Θ(n) diameter (the observation
    attributed to [3, 19] in the introduction); the Forgiving Tree's global
    will system is precisely what prevents this.
    """

    name = "binary-tree"

    def _repair(self, deleted: int, neighbors: List[int]) -> None:
        if len(neighbors) <= 1:
            return
        # neighbors sorted; neighbors[0] becomes the root of a balanced
        # binary tree, wired breadth-first: parent i -> children 2i+1, 2i+2.
        for i in range(len(neighbors)):
            for child in (2 * i + 1, 2 * i + 2):
                if child < len(neighbors):
                    add_edge(self._graph, neighbors[i], neighbors[child])


class DegreeCappedSurrogateHealer(_GraphHealer):
    """Surrogate with a degree cap: overflow spills to the next neighbor.

    An intermediate strategy included for the ablation benches: it fixes
    the degree blow-up but inherits the line healer's diameter growth,
    illustrating that the tension between the two metrics (Theorem 2) is
    not an artifact of the two extreme baselines.
    """

    name = "capped-surrogate"

    def __init__(self, graph: Graph, cap: int = 3):
        super().__init__(graph)
        if cap < 2:
            raise ValueError("cap must allow at least 2 extra edges")
        self.cap = cap

    def _repair(self, deleted: int, neighbors: List[int]) -> None:
        if len(neighbors) <= 1:
            return
        # Chain surrogates: each absorbs up to `cap` neighbors, then hands
        # off to the next absorber.
        absorber_idx = 0
        absorbed = 0
        for i in range(1, len(neighbors)):
            if absorbed >= self.cap:
                add_edge(self._graph, neighbors[absorber_idx], neighbors[i])
                absorber_idx = i
                absorbed = 1
                continue
            add_edge(self._graph, neighbors[absorber_idx], neighbors[i])
            absorbed += 1


def healer_catalog():
    """Name -> factory for every baseline healer (used by the harness)."""
    from ..fgraph.healer import ForgivingGraphHealer
    from .forgiving import ForgivingTreeHealer

    return {
        ForgivingTreeHealer.name: ForgivingTreeHealer,
        ForgivingGraphHealer.name: ForgivingGraphHealer,
        SurrogateHealer.name: SurrogateHealer,
        LineHealer.name: LineHealer,
        BinaryTreeHealer.name: BinaryTreeHealer,
        NoRepairHealer.name: NoRepairHealer,
        DegreeCappedSurrogateHealer.name: DegreeCappedSurrogateHealer,
    }
