"""The Forgiving Tree as a general-graph healer.

Wraps the core engine for arbitrary connected graphs, the setting of the
paper's Section 3: "we begin with a rooted spanning tree T, which without
loss of generality may as well be the entire network".  The healer maintains
the Forgiving Tree over a BFS spanning tree and keeps the surviving
*non-tree* edges of the original graph in the overlay (they can only help
the diameter and never hurt the degree bound, since they existed in G_0).

Two interchangeable cores drive the same protocol (``core=``):

* ``"flat"`` (default) — :class:`~repro.core.flat_tree.FlatForgivingTree`,
  struct-of-arrays storage with O(1) hot queries; what churn campaigns at
  n = 10k..1M run on.
* ``"object"`` — :class:`~repro.core.forgiving_tree.ForgivingTree`, the
  readable per-node object reference the flat core is differentially
  tested against (``tests/test_flatcore.py``).

The two produce bit-identical :class:`~repro.core.events.HealReport`
streams, so the choice never changes results — only constant factors.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Set, Tuple

from ..core.events import HealReport, edge_key
from ..core.flat_tree import FlatForgivingTree
from ..core.forgiving_tree import WILL_SPLICE, ForgivingTree
from ..graphs.adjacency import Graph, require_connected
from ..graphs.spanning import bfs_tree, non_tree_edges
from .base import Healer

#: ``core=`` choices: engine class per storage layout.
ENGINE_CORES = {"flat": FlatForgivingTree, "object": ForgivingTree}


class ForgivingTreeHealer(Healer):
    """Forgiving Tree self-healing over a general connected graph.

    Parameters mirror :class:`~repro.core.forgiving_tree.ForgivingTree`;
    ``root`` selects the spanning-tree root (default: smallest id);
    ``core`` selects the storage layout (see module docstring).
    """

    name = "forgiving-tree"

    def __init__(
        self,
        graph: Graph,
        root: Optional[int] = None,
        branching: int = 2,
        will_mode: str = WILL_SPLICE,
        strict: bool = False,
        core: str = "flat",
    ):
        super().__init__(graph)
        require_connected(graph)
        if core not in ENGINE_CORES:
            raise ValueError(f"unknown core {core!r} (one of {sorted(ENGINE_CORES)})")
        tree = bfs_tree(graph, root)
        self.core = core
        self.engine = ENGINE_CORES[core](
            tree,
            root=root,
            branching=branching,
            will_mode=will_mode,
            strict=strict,
        )
        self._extra: Set[Tuple[int, int]] = non_tree_edges(graph, tree)
        # When the input was already a tree, the overlay *is* the engine's
        # image for the whole campaign — O(1) metric fast paths apply.
        self._pure_tree = not self._extra

    @classmethod
    def from_engine(
        cls,
        engine,
        extras: Set[Tuple[int, int]] = frozenset(),
    ) -> "ForgivingTreeHealer":
        """Wrap an existing engine — fresh or checkpoint-restored.

        The soak service's resume path: a
        :meth:`~repro.core.flat_tree.FlatForgivingTree.restore`'d engine
        (or a bulk ``from_parents`` build) becomes a catalog healer
        without re-running the BFS spanning-tree construction.  The
        healer's baseline degrees and round counter come from the engine
        (they survive checkpoints there); ``initial_graph`` reflects the
        overlay at wrap time, which for a resumed campaign is the
        restore point, so stretch denominators must be carried by the
        caller (the soak manifest does).
        """
        self = cls.__new__(cls)
        adjacency = engine.adjacency()
        for u, v in extras:
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        self._initial = adjacency
        self._original_degree = dict(engine.original_degree)
        self.rounds = engine.rounds
        self.core = (
            "flat" if isinstance(engine, FlatForgivingTree) else "object"
        )
        self.engine = engine
        self._extra = set(extras)
        self._pure_tree = not self._extra
        return self

    def delete(self, nid: int) -> HealReport:
        self._pre_delete(nid)
        report = self.engine.delete(nid)
        dropped = {e for e in self._extra if nid in e}
        self._extra -= dropped
        if dropped:
            report.edges_removed = frozenset(set(report.edges_removed) | dropped)
        return report

    def insert(self, nid: int, attach_to: int) -> HealReport:
        nid = int(nid)
        self._pre_insert(nid, attach_to)
        report = self.engine.insert(nid, attach_to)
        self._original_degree[nid] = 1
        self._original_degree[attach_to] += 1
        return report

    def insert_batch(self, joiners) -> HealReport:
        """Batch wave via the engine: one will pass per attachment point."""
        wave = [(int(n), int(a)) for n, a in joiners]
        report = self.engine.insert_batch(wave)  # validates the wave itself
        for nid, attach_to in wave:
            self._original_degree[nid] = 1
            self._original_degree[attach_to] += 1
        self.rounds += 1
        return report

    def graph(self) -> Graph:
        adjacency = self.engine.adjacency()
        for u, v in self._extra:
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        return adjacency

    @property
    def alive(self) -> Set[int]:
        return self.engine.alive

    # Forgiving-tree specific introspection ------------------------------
    def tree_overlay(self) -> Graph:
        """The healed spanning-tree overlay only (no original extras)."""
        return self.engine.adjacency()

    def max_degree_increase(self) -> int:
        # On pure-tree inputs the merged overlay equals the engine image
        # and the healer's baseline degrees equal the engine's, so the
        # engine's maintained maximum (O(1) on the flat core) is the
        # answer.  With original non-tree extras the merged graph differs:
        # measure on it for honesty, as the base class does.
        if self._pure_tree:
            return self.engine.max_degree_increase()
        return super().max_degree_increase()

    def fast_stats(self) -> Tuple[bool, int]:
        """O(1) ``(connected, alive_count)`` without materializing the graph.

        The engine maintains a spanning tree of the survivors at all
        times, so the healed overlay is connected whenever anyone is
        alive — extras only ever add edges.  The harness's
        ``metrics="none"`` path uses this instead of a per-round BFS.
        """
        return True, len(self.engine.alive)

    def sample_alive(self, rng: random.Random) -> int:
        """Uniform surviving node id; O(1) on the flat core.

        Capability hook for opt-in fast adversary sampling
        (``RandomChurnAdversary(fast_sample=True)``).  The object core
        falls back to a sorted draw with the same distribution (but a
        different stream than the adversary's classic path).
        """
        sampler = getattr(self.engine, "sample_alive", None)
        if sampler is not None:
            return sampler(rng)
        return rng.choice(sorted(self.engine.alive))
