"""The Forgiving Tree as a general-graph healer.

Wraps the core engine for arbitrary connected graphs, the setting of the
paper's Section 3: "we begin with a rooted spanning tree T, which without
loss of generality may as well be the entire network".  The healer maintains
the Forgiving Tree over a BFS spanning tree and keeps the surviving
*non-tree* edges of the original graph in the overlay (they can only help
the diameter and never hurt the degree bound, since they existed in G_0).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..core.events import HealReport, edge_key
from ..core.forgiving_tree import WILL_SPLICE, ForgivingTree
from ..graphs.adjacency import Graph, require_connected
from ..graphs.spanning import bfs_tree, non_tree_edges
from .base import Healer


class ForgivingTreeHealer(Healer):
    """Forgiving Tree self-healing over a general connected graph.

    Parameters mirror :class:`~repro.core.forgiving_tree.ForgivingTree`;
    ``root`` selects the spanning-tree root (default: smallest id).
    """

    name = "forgiving-tree"

    def __init__(
        self,
        graph: Graph,
        root: Optional[int] = None,
        branching: int = 2,
        will_mode: str = WILL_SPLICE,
        strict: bool = False,
    ):
        super().__init__(graph)
        require_connected(graph)
        tree = bfs_tree(graph, root)
        self.engine = ForgivingTree(
            tree,
            root=root,
            branching=branching,
            will_mode=will_mode,
            strict=strict,
        )
        self._extra: Set[Tuple[int, int]] = non_tree_edges(graph, tree)

    def delete(self, nid: int) -> HealReport:
        self._pre_delete(nid)
        report = self.engine.delete(nid)
        dropped = {e for e in self._extra if nid in e}
        self._extra -= dropped
        if dropped:
            report.edges_removed = frozenset(set(report.edges_removed) | dropped)
        return report

    def insert(self, nid: int, attach_to: int) -> HealReport:
        nid = int(nid)
        self._pre_insert(nid, attach_to)
        report = self.engine.insert(nid, attach_to)
        self._original_degree[nid] = 1
        self._original_degree[attach_to] += 1
        return report

    def insert_batch(self, joiners) -> HealReport:
        """Batch wave via the engine: one will pass per attachment point."""
        wave = [(int(n), int(a)) for n, a in joiners]
        report = self.engine.insert_batch(wave)  # validates the wave itself
        for nid, attach_to in wave:
            self._original_degree[nid] = 1
            self._original_degree[attach_to] += 1
        self.rounds += 1
        return report

    def graph(self) -> Graph:
        adjacency = self.engine.adjacency()
        for u, v in self._extra:
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        return adjacency

    @property
    def alive(self) -> Set[int]:
        return self.engine.alive

    # Forgiving-tree specific introspection ------------------------------
    def tree_overlay(self) -> Graph:
        """The healed spanning-tree overlay only (no original extras)."""
        return self.engine.adjacency()

    def max_degree_increase(self) -> int:
        # Non-tree edges only ever disappear, so the increase is governed
        # by the engine; still measure on the merged graph for honesty.
        return super().max_degree_increase()
