"""Healer strategies: the Forgiving Tree and the baselines it outperforms."""

from .base import Healer, edge_delta_report
from .forgiving import ENGINE_CORES, ForgivingTreeHealer
from .naive import (
    BinaryTreeHealer,
    DegreeCappedSurrogateHealer,
    LineHealer,
    NoRepairHealer,
    SurrogateHealer,
    healer_catalog,
)

def __getattr__(name):
    # Lazy re-export: fgraph.healer itself imports baselines.base, so a
    # module-level import here would cycle when repro.fgraph loads first.
    if name == "ForgivingGraphHealer":
        from ..fgraph.healer import ForgivingGraphHealer

        return ForgivingGraphHealer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BinaryTreeHealer",
    "ENGINE_CORES",
    "DegreeCappedSurrogateHealer",
    "ForgivingGraphHealer",
    "ForgivingTreeHealer",
    "Healer",
    "LineHealer",
    "NoRepairHealer",
    "SurrogateHealer",
    "edge_delta_report",
    "healer_catalog",
]
