"""Healer strategies: the Forgiving Tree and the baselines it outperforms."""

from .base import Healer, edge_delta_report
from .forgiving import ForgivingTreeHealer
from .naive import (
    BinaryTreeHealer,
    DegreeCappedSurrogateHealer,
    LineHealer,
    NoRepairHealer,
    SurrogateHealer,
    healer_catalog,
)

__all__ = [
    "BinaryTreeHealer",
    "DegreeCappedSurrogateHealer",
    "ForgivingTreeHealer",
    "Healer",
    "LineHealer",
    "NoRepairHealer",
    "SurrogateHealer",
    "edge_delta_report",
    "healer_catalog",
]
