"""The self-healing interface shared by the Forgiving Tree and baselines.

The paper's Delete and Repair Model (Model 2.1): an adversary deletes one
node per round; the Player responds by adding (and possibly dropping) edges.
A :class:`Healer` encapsulates one Player strategy.  All healers operate on
general connected graphs and expose the same success metrics so the harness
can compare them head-to-head:

* ``max_degree_increase()`` — Model 2.1 metric 1,
* the current :meth:`graph` for diameter stretch — metric 2,
* per-round :class:`~repro.core.events.HealReport` for communication.
"""

from __future__ import annotations

import abc
from typing import Dict, Set

from ..core.errors import DuplicateNodeError, NodeNotFoundError, SimulationOverError
from ..core.events import HealReport, normalize_wave
from ..graphs.adjacency import Graph, copy as copy_graph, degrees


class Healer(abc.ABC):
    """A Player strategy in the Delete and Repair game."""

    #: short machine name used in benchmark tables
    name: str = "abstract"

    def __init__(self, graph: Graph):
        self._initial = copy_graph(graph)
        self._original_degree = degrees(graph)
        self.rounds = 0

    # -- interface ------------------------------------------------------
    @abc.abstractmethod
    def delete(self, nid: int) -> HealReport:
        """Adversary deletes ``nid``; repair and report."""

    @abc.abstractmethod
    def insert(self, nid: int, attach_to: int) -> HealReport:
        """A new node ``nid`` joins attached to live ``attach_to``
        (churn model).  The demanded edge raises both endpoints'
        baseline degrees — the Forgiving Graph's *ideal graph*
        convention — so degree increase keeps measuring only
        heal-induced edges."""

    def insert_batch(self, joiners) -> HealReport:
        """A wave of ``(nid, attach_to)`` joiners lands in one round.

        Default implementation: validate the whole wave up front (so a
        rejected wave leaves no partial state — the same atomicity the
        engines give), then apply the inserts sequentially and merge the
        reports; the wave still counts as a single round.  Engines with
        will machinery override this to amortize the rebuild cost across
        the wave.  Wave semantics are shared by every healer: attachment
        points must be alive *before* the wave — a joiner may not attach
        to another joiner of the same wave — and ids are never reused.
        """
        wave = normalize_wave(
            joiners, known_ids=self._original_degree, alive=self.alive
        )
        reports = [self.insert(nid, attach_to) for nid, attach_to in wave]
        self.rounds -= len(wave) - 1  # one wave = one round
        merged_messages: Dict[int, int] = {}
        for r in reports:
            for n, c in r.messages_per_node.items():
                merged_messages[n] = merged_messages.get(n, 0) + c
        return HealReport(
            deleted=-1,
            was_internal=False,
            edges_added=frozenset().union(*(r.edges_added for r in reports)),
            edges_removed=frozenset(),
            events=tuple(e for r in reports for e in r.events),
            messages_per_node=merged_messages,
            inserted=wave[0][0] if len(wave) == 1 else None,
            attached_to=wave[0][1] if len(wave) == 1 else None,
            inserted_batch=tuple(wave),
        )

    @abc.abstractmethod
    def graph(self) -> Graph:
        """Current healed network (adjacency)."""

    @property
    @abc.abstractmethod
    def alive(self) -> Set[int]:
        """Surviving node ids."""

    # -- shared metrics ---------------------------------------------------
    @property
    def initial_graph(self) -> Graph:
        return copy_graph(self._initial)

    @property
    def known_ids(self) -> Set[int]:
        """Every id ever seen (initial or inserted, alive or dead).

        Ids are never reused, so fresh-id allocation must range above
        this set, not just above the currently alive one."""
        return set(self._original_degree)

    def original_degree(self, nid: int) -> int:
        return self._original_degree[nid]

    def degree_increase(self, nid: int) -> int:
        g = self.graph()
        if nid not in g:
            raise NodeNotFoundError(nid, "degree_increase")
        return len(g[nid]) - self._original_degree[nid]

    def max_degree_increase(self) -> int:
        g = self.graph()
        if not g:
            return 0
        return max(len(s) - self._original_degree[n] for n, s in g.items())

    def _pre_delete(self, nid: int) -> None:
        if not self.alive:
            raise SimulationOverError("all nodes already deleted")
        if nid not in self.alive:
            raise NodeNotFoundError(nid, "delete")
        self.rounds += 1

    def _pre_insert(self, nid: int, attach_to: int) -> None:
        if nid in self._original_degree:  # ids are never reused
            raise DuplicateNodeError(nid)
        if attach_to not in self.alive:
            raise NodeNotFoundError(attach_to, "insert attach point")
        self.rounds += 1


def edge_delta_report(
    deleted: int, before: Graph, after: Graph, was_internal: bool = False
) -> HealReport:
    """Build a HealReport from a before/after graph pair (baseline helper)."""
    from ..graphs.adjacency import edges

    b, a = edges(before), edges(after)
    return HealReport(
        deleted=deleted,
        was_internal=was_internal,
        edges_added=frozenset(a - b),
        edges_removed=frozenset(b - a),
    )
