"""Plain-dict graph representation and basic operations.

The whole library speaks ``Dict[int, Set[int]]`` adjacency (undirected,
simple).  This keeps the hot paths dependency-free; conversion helpers to
and from ``networkx`` are provided for interoperability and for
verification in tests (networkx acts as an independent oracle).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Mapping, Set, Tuple

from ..core.errors import DisconnectedGraphError, NodeNotFoundError

Graph = Dict[int, Set[int]]


def empty() -> Graph:
    return {}


def from_edges(edges: Iterable[Tuple[int, int]], nodes: Iterable[int] = ()) -> Graph:
    """Build a graph from an edge list (plus optional isolated nodes)."""
    graph: Graph = {int(n): set() for n in nodes}
    for u, v in edges:
        u, v = int(u), int(v)
        if u == v:
            continue
        graph.setdefault(u, set()).add(v)
        graph.setdefault(v, set()).add(u)
    return graph


def from_adjacency(adjacency: Mapping[int, Iterable[int]]) -> Graph:
    """Copy/normalize an adjacency mapping into a symmetric Graph."""
    graph: Graph = {int(n): set() for n in adjacency}
    for n, neighbors in adjacency.items():
        for m in neighbors:
            graph.setdefault(int(n), set()).add(int(m))
            graph.setdefault(int(m), set()).add(int(n))
    return graph


def copy(graph: Graph) -> Graph:
    return {n: set(s) for n, s in graph.items()}


def edges(graph: Graph) -> Set[Tuple[int, int]]:
    """Canonical (sorted-pair) edge set."""
    return {(u, v) if u < v else (v, u) for u, s in graph.items() for v in s}


def edge_count(graph: Graph) -> int:
    return sum(len(s) for s in graph.values()) // 2


def add_edge(graph: Graph, u: int, v: int) -> None:
    if u == v:
        return
    graph.setdefault(u, set()).add(v)
    graph.setdefault(v, set()).add(u)


def remove_node(graph: Graph, nid: int) -> Set[int]:
    """Delete a node; return its former neighborhood."""
    if nid not in graph:
        raise NodeNotFoundError(nid, "remove_node")
    neighbors = graph.pop(nid)
    for m in neighbors:
        graph[m].discard(nid)
    return neighbors


def degrees(graph: Graph) -> Dict[int, int]:
    return {n: len(s) for n, s in graph.items()}


def max_degree(graph: Graph) -> int:
    return max((len(s) for s in graph.values()), default=0)


def bfs_distances(graph: Graph, source: int) -> Dict[int, int]:
    """Hop distances from ``source`` to every reachable node."""
    if source not in graph:
        raise NodeNotFoundError(source, "bfs")
    dist = {source: 0}
    queue = deque([source])
    while queue:
        cur = queue.popleft()
        for nxt in graph[cur]:
            if nxt not in dist:
                dist[nxt] = dist[cur] + 1
                queue.append(nxt)
    return dist


def is_connected(graph: Graph) -> bool:
    if not graph:
        return True
    start = next(iter(graph))
    return len(bfs_distances(graph, start)) == len(graph)


def connected_components(graph: Graph) -> List[Set[int]]:
    remaining = set(graph)
    out: List[Set[int]] = []
    while remaining:
        start = next(iter(remaining))
        comp = set(bfs_distances(graph, start))
        comp &= remaining
        # bfs walks the full graph; restrict to remaining for safety
        out.append(comp)
        remaining -= comp
    return out


def require_connected(graph: Graph) -> None:
    if not is_connected(graph):
        raise DisconnectedGraphError("graph is not connected")


def to_networkx(graph: Graph):
    """Convert to ``networkx.Graph`` (lazy import)."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(graph)
    g.add_edges_from(edges(graph))
    return g


def from_networkx(g) -> Graph:
    """Convert from ``networkx.Graph``."""
    return from_edges(((int(u), int(v)) for u, v in g.edges), nodes=(int(n) for n in g.nodes))


def relabel_consecutive(graph: Graph) -> Tuple[Graph, Dict[int, int]]:
    """Relabel nodes to 0..n-1 (sorted); returns (graph, old->new map)."""
    mapping = {old: new for new, old in enumerate(sorted(graph))}
    out: Graph = {mapping[n]: {mapping[m] for m in s} for n, s in graph.items()}
    return out, mapping


def iter_nodes_sorted(graph: Graph) -> Iterator[int]:
    return iter(sorted(graph))
