"""Graph and tree generators for experiments.

Families used across the paper's claims:

* **star** — the Theorem 2 lower-bound instance and the surrogate-killer's
  favorite victim (one deletion exposes Θ(n) naive degree growth).
* **path / caterpillar / broom / spider** — adversarial shapes for the
  diameter claims about line and binary-tree healing.
* **balanced trees / random trees** — generic overlays.
* **connected G(n, p) / preferential attachment / grid / hypercube** — the
  "many peer-to-peer systems have polylog ∆" setting of the introduction,
  inputs for the setup phase and the general-graph healer.

Every generator is deterministic given its ``seed`` and returns the plain
adjacency representation (:data:`repro.graphs.adjacency.Graph`).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Set

from ..core.errors import ReproError
from .adjacency import Graph, add_edge, from_edges, is_connected


def star(n_leaves: int, center: int = 0) -> Graph:
    """A star: ``center`` joined to ``n_leaves`` leaves (ids follow center)."""
    if n_leaves < 1:
        raise ValueError("star needs at least one leaf")
    return from_edges((center, center + i + 1) for i in range(n_leaves))


def path(n: int) -> Graph:
    """A path 0-1-...-(n-1)."""
    if n < 1:
        raise ValueError("path needs at least one node")
    if n == 1:
        return {0: set()}
    return from_edges((i, i + 1) for i in range(n - 1))


def cycle(n: int) -> Graph:
    """A cycle on n >= 3 nodes (general-graph experiments only)."""
    if n < 3:
        raise ValueError("cycle needs at least three nodes")
    g = path(n)
    add_edge(g, 0, n - 1)
    return g


def balanced_tree(branching: int, height: int) -> Graph:
    """Complete ``branching``-ary tree of the given height (root id 0)."""
    if branching < 1 or height < 0:
        raise ValueError("invalid balanced tree parameters")
    edges = []
    frontier = [0]
    next_id = 1
    for _ in range(height):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                edges.append((parent, next_id))
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    if not edges:
        return {0: set()}
    return from_edges(edges)


def random_tree(n: int, seed: int = 0) -> Graph:
    """Uniform random labelled tree via a random Prüfer sequence."""
    if n < 1:
        raise ValueError("random tree needs at least one node")
    if n == 1:
        return {0: set()}
    if n == 2:
        return from_edges([(0, 1)])
    rng = random.Random(seed)
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    return tree_from_prufer(prufer)


def tree_from_prufer(prufer: Sequence[int]) -> Graph:
    """Decode a Prüfer sequence into its labelled tree."""
    n = len(prufer) + 2
    degree = [1] * n
    for x in prufer:
        if not 0 <= x < n:
            raise ReproError(f"prufer symbol {x} out of range for n={n}")
        degree[x] += 1
    edges = []
    import heapq

    leaves = [i for i in range(n) if degree[i] == 1]
    heapq.heapify(leaves)
    for x in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, x))
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, x)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((u, v))
    return from_edges(edges)


def caterpillar(spine: int, legs_per_node: int) -> Graph:
    """A path of ``spine`` nodes, each with ``legs_per_node`` leaf legs."""
    if spine < 1 or legs_per_node < 0:
        raise ValueError("invalid caterpillar parameters")
    g = path(spine)
    next_id = spine
    for s in range(spine):
        for _ in range(legs_per_node):
            add_edge(g, s, next_id)
            next_id += 1
    return g


def broom(handle: int, bristles: int) -> Graph:
    """A path of ``handle`` nodes ending in a star of ``bristles`` leaves.

    The classic instance where line-healing accumulates diameter: killing
    the star center repeatedly stretches the handle.
    """
    if handle < 1 or bristles < 1:
        raise ValueError("invalid broom parameters")
    g = path(handle)
    for i in range(bristles):
        add_edge(g, handle - 1, handle + i)
    return g


def spider(legs: int, leg_length: int) -> Graph:
    """``legs`` paths of ``leg_length`` nodes joined at a hub (id 0)."""
    if legs < 1 or leg_length < 1:
        raise ValueError("invalid spider parameters")
    edges = []
    next_id = 1
    for _ in range(legs):
        prev = 0
        for _ in range(leg_length):
            edges.append((prev, next_id))
            prev = next_id
            next_id += 1
    return from_edges(edges)


def random_connected_gnp(n: int, p: float, seed: int = 0) -> Graph:
    """G(n, p) conditioned on connectivity (re-seeds until connected,
    then patches any leftover components along a random spanning chain)."""
    if n < 1:
        raise ValueError("gnp needs at least one node")
    rng = random.Random(seed)
    g: Graph = {i: set() for i in range(n)}
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                add_edge(g, u, v)
    # Patch connectivity deterministically: chain component representatives.
    if not is_connected(g):
        reps = _component_reps(g)
        for a, b in zip(reps, reps[1:]):
            add_edge(g, a, b)
    return g


def preferential_attachment(n: int, m: int, seed: int = 0) -> Graph:
    """Barabási–Albert-style scale-free graph: each new node attaches to
    ``m`` existing nodes with probability proportional to degree.

    This is the "power-law network" setting of the cascading-failure
    related work and the natural P2P overlay model of the introduction.
    """
    if n < m + 1 or m < 1:
        raise ValueError("preferential attachment needs n > m >= 1")
    rng = random.Random(seed)
    g: Graph = {i: set() for i in range(n)}
    targets: List[int] = list(range(m))
    repeated: List[int] = list(range(m))
    for new in range(m, n):
        chosen: Set[int] = set()
        while len(chosen) < m:
            chosen.add(rng.choice(repeated) if repeated else rng.randrange(new))
        for t in chosen:
            add_edge(g, new, t)
            repeated.append(t)
            repeated.append(new)
    if not is_connected(g):  # pragma: no cover - PA graphs are connected
        reps = _component_reps(g)
        for a, b in zip(reps, reps[1:]):
            add_edge(g, a, b)
    return g


def grid(width: int, height: int) -> Graph:
    """A width × height grid (4-neighborhood)."""
    if width < 1 or height < 1:
        raise ValueError("invalid grid dimensions")
    g: Graph = {i: set() for i in range(width * height)}
    for y in range(height):
        for x in range(width):
            nid = y * width + x
            if x + 1 < width:
                add_edge(g, nid, nid + 1)
            if y + 1 < height:
                add_edge(g, nid, nid + width)
    return g


def hypercube(dim: int) -> Graph:
    """The ``dim``-dimensional hypercube (2^dim nodes, log-degree)."""
    if dim < 1:
        raise ValueError("hypercube dimension must be >= 1")
    n = 1 << dim
    g: Graph = {i: set() for i in range(n)}
    for u in range(n):
        for b in range(dim):
            add_edge(g, u, u ^ (1 << b))
    return g


def two_level_star(hubs: int, leaves_per_hub: int) -> Graph:
    """A hub-and-spoke overlay: a center, ``hubs`` superpeers, leaf peers.

    Mimics the Skype-style superpeer topology of the introduction's
    motivating outage.
    """
    if hubs < 1 or leaves_per_hub < 0:
        raise ValueError("invalid two_level_star parameters")
    edges = []
    next_id = 1 + hubs
    for h in range(1, hubs + 1):
        edges.append((0, h))
        for _ in range(leaves_per_hub):
            edges.append((h, next_id))
            next_id += 1
    return from_edges(edges)


def _component_reps(g: Graph) -> List[int]:
    from .adjacency import connected_components

    return sorted(min(c) for c in connected_components(g))


#: Named tree families used by benchmark sweeps: name -> factory(n, seed).
TREE_FAMILIES = {
    "star": lambda n, seed=0: star(max(1, n - 1)),
    "path": lambda n, seed=0: path(n),
    "random": lambda n, seed=0: random_tree(n, seed),
    "binary": lambda n, seed=0: _balanced_with_n(2, n),
    "ternary": lambda n, seed=0: _balanced_with_n(3, n),
    "broom": lambda n, seed=0: broom(max(1, n // 2), max(1, n - n // 2)),
    "caterpillar": lambda n, seed=0: caterpillar(max(1, n // 4), 3),
    "spider": lambda n, seed=0: spider(max(1, n // 10 or 1), 10),
}


def _balanced_with_n(branching: int, n: int) -> Graph:
    """Balanced tree with at least ``n`` nodes (smallest full height)."""
    height = 0
    total = 1
    layer = 1
    while total < n:
        layer *= branching
        total += layer
        height += 1
    return balanced_tree(branching, height)
