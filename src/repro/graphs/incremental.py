"""Incremental tree metrics: O(depth) diameter maintenance under churn.

Per-round diameter measurement is the expensive half of the paper's
success metrics (Model 2.1): :func:`~repro.graphs.metrics.diameter_exact`
is O(n·m) and even the double sweep pays two full BFS passes — O(m) —
every round, which makes per-round stretch tracking unaffordable on the
10k+ churn campaigns the benchmarks target.  But a healing round only
edits the overlay *locally*: the engines emit structured deltas (the
:class:`~repro.core.events.HealReport` edge sets), so the diameter can be
maintained incrementally instead of re-derived from scratch.

:class:`DynamicTreeMetrics` keeps a rooted orientation of the (tree)
overlay together with two per-subtree aggregates:

* ``height[v]`` — the number of edges from ``v`` down to its deepest
  descendant leaf, and
* ``diam[v]`` — the diameter of the subtree rooted at ``v``
  (``max`` of the child diameters and of the path through ``v`` joining
  its two tallest child branches).

The global diameter is ``diam[root]``.  A leaf insertion touches only the
root path of the attachment point; a heal round removes the victim, may
detach whole subtrees (whose *internal* aggregates stay valid), and
re-hangs them along the new edges — re-orienting only the path from each
re-attachment point up to its detached fragment root, then re-aggregating
root paths.  Every update is O(k·depth) for k changed edges, against the
O(m)-per-round BFS it replaces.

The structure is deliberately *strict*: any delta that would leave a
non-tree (a cycle, a disconnection, an unknown edge) raises
:class:`~repro.core.errors.NotATreeError`, which is how the harness knows
to fall back to BFS measurement (see ``run_churn_campaign``'s ``metrics``
parameter).  Property-based tests cross-validate the maintained diameter
against ``diameter_exact`` after every event of randomized churn traces.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..core.errors import (
    DuplicateNodeError,
    EmptyStructureError,
    InvariantViolationError,
    NodeNotFoundError,
    NotATreeError,
)
from ..core.events import edge_key
from .adjacency import Graph


class DynamicTreeMetrics:
    """Maintains the exact diameter of a changing tree (see module doc).

    Parameters
    ----------
    graph:
        The initial overlay; must be a tree (or empty).  The adjacency is
        copied — the structure is fed deltas, it never re-reads the graph.
    root:
        Orientation root (default: smallest id).  Purely internal; the
        maintained metrics are orientation-independent.
    """

    def __init__(self, graph: Mapping[int, Iterable[int]], root: Optional[int] = None):
        self._adj: Graph = {int(n): {int(m) for m in s} for n, s in graph.items()}
        self._parent: Dict[int, Optional[int]] = {}
        self._children: Dict[int, Set[int]] = {}
        self._height: Dict[int, int] = {}
        self._diam: Dict[int, int] = {}
        self._chords: Set[Tuple[int, int]] = set()
        self._root: Optional[int] = None
        if not self._adj:
            return
        self._root = min(self._adj) if root is None else int(root)
        if self._root not in self._adj:
            raise NodeNotFoundError(self._root, "metrics root")
        self._orient_from_root()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_parents(
        cls,
        parents: Iterable[int],
        ids: Optional[Iterable[int]] = None,
        chords: Iterable[Tuple[int, int]] = (),
    ) -> "DynamicTreeMetrics":
        """O(n) construction from a parent array (position ``i``'s parent
        *position*, ``-1`` at the root).

        The orientation is taken directly from the array — no adjacency
        dict to build first and no BFS to orient it, roughly halving the
        startup cost of tracking a tree the caller already holds in
        parent-pointer form (the flat core's native shape; see
        :meth:`~repro.core.flat_tree.FlatForgivingTree.from_parents`).
        Equivalent to ``DynamicTreeMetrics(adjacency, root=<array root>)``
        in every maintained value.

        ``ids`` optionally maps positions to actual node ids (default
        ``0..n-1``), and ``chords`` re-adds non-tree cycle edges (id
        pairs) — together they invert :meth:`parent_state`, so a tracker
        checkpointed mid-campaign rebuilds exactly, arbitrary ids, heal
        cycles and all.  Aggregates come out identical to the unbroken
        incremental run because :meth:`check` proves the maintained
        values always equal this same bottom-up recomputation.
        """
        parents = list(parents)
        n = len(parents)
        labels = list(range(n)) if ids is None else [int(x) for x in ids]
        if len(labels) != n:
            raise NotATreeError("ids and parents lengths differ")
        if len(set(labels)) != n:
            raise DuplicateNodeError("duplicate id in parent-state ids")
        self = cls.__new__(cls)
        self._adj = {nid: set() for nid in labels}
        self._parent = {}
        self._children = {nid: set() for nid in labels}
        self._height = {}
        self._diam = {}
        self._chords = set()
        self._root = None
        if n == 0:
            if list(chords):
                raise NotATreeError("chords on an empty tree")
            return self
        root = -1
        for i, p in enumerate(parents):
            if p == -1:
                if root != -1:
                    raise NotATreeError("two roots in parent array")
                root = i
            elif not 0 <= p < n:
                raise NodeNotFoundError(p, "parent array")
        if root == -1:
            raise NotATreeError("no root in parent array")
        self._root = labels[root]
        for i, p in enumerate(parents):
            nid = labels[i]
            self._parent[nid] = None if p == -1 else labels[p]
            if p != -1:
                self._children[labels[p]].add(nid)
                self._adj[nid].add(labels[p])
                self._adj[labels[p]].add(nid)
        order: List[int] = [self._root]
        queue = deque(order)
        while queue:
            kids = self._children[queue.popleft()]
            order.extend(kids)
            queue.extend(kids)
        if len(order) != n:
            raise NotATreeError("parent array contains a cycle")
        for u, v in chords:
            key = edge_key(int(u), int(v))
            u, v = key
            if u not in self._adj or v not in self._adj:
                raise NodeNotFoundError(u if u not in self._adj else v, "chord")
            if v in self._adj[u]:
                raise NotATreeError(f"chord {key} duplicates a tree edge")
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._chords.add(key)
        for nid in reversed(order):
            self._recompute(nid)
        return self

    def parent_state(self) -> Dict[str, list]:
        """Serialize the maintained orientation for checkpointing.

        Returns ``{"ids", "parents", "chords"}`` where ``ids`` lists the
        node ids ascending, ``parents`` gives each position's parent
        *position* (``-1`` at the orientation root) and ``chords`` lists
        the non-tree edges sorted.  ``from_parents(parents, ids=...,
        chords=...)`` rebuilds an equivalent tracker — same diameter, same
        future trajectory (chord competition is resolved in sorted order,
        so replayed deltas classify edges identically)."""
        ids = sorted(self._adj)
        index = {nid: i for i, nid in enumerate(ids)}
        parents = [
            -1 if self._parent[nid] is None else index[self._parent[nid]]
            for nid in ids
        ]
        return {
            "ids": ids,
            "parents": parents,
            "chords": sorted(self._chords),
        }

    def _orient_from_root(self) -> None:
        order: List[int] = [self._root]  # type: ignore[list-item]
        self._parent = {self._root: None}  # type: ignore[dict-item]
        self._children = {n: set() for n in self._adj}
        queue = deque(order)
        while queue:
            cur = queue.popleft()
            for nxt in self._adj[cur]:
                if nxt not in self._parent:
                    self._parent[nxt] = cur
                    self._children[cur].add(nxt)
                    order.append(nxt)
                    queue.append(nxt)
                elif self._parent[cur] != nxt and nxt not in self._children[cur]:
                    self._chords.add(edge_key(cur, nxt))
        if len(order) != len(self._adj):
            raise NotATreeError("graph is not connected")
        for nid in reversed(order):
            self._recompute(nid)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, nid: int) -> bool:
        return nid in self._adj

    @property
    def root(self) -> Optional[int]:
        return self._root

    @property
    def n_chords(self) -> int:
        """Number of non-tree (cycle-closing) edges currently tracked."""
        return len(self._chords)

    @property
    def is_exact(self) -> bool:
        """True when :attr:`diameter` is the exact graph diameter.

        The maintained aggregate is the diameter of the spanning tree;
        with no chords the graph *is* that tree, so the value is exact.
        With chords (the Forgiving Tree's short heal cycles) the chords
        can only shorten distances, so the value brackets the true
        diameter from above — the mirror of the double sweep's
        lower-bound bracket, and still inside the Theorem 1.2 envelope.
        """
        return not self._chords

    @property
    def diameter(self) -> int:
        """Diameter of the maintained tree overlay (0 for a singleton).

        Exact whenever the tracked graph is a tree (:attr:`is_exact`);
        an upper bound when chord edges are present.
        """
        if self._root is None:
            raise EmptyStructureError("diameter of empty tree")
        return self._diam[self._root]

    def height_of(self, nid: int) -> int:
        """Edges from ``nid`` down to its deepest subtree leaf."""
        if nid not in self._adj:
            raise NodeNotFoundError(nid, "height_of")
        return self._height[nid]

    # ------------------------------------------------------------------
    # the delta feed
    # ------------------------------------------------------------------
    def apply_report(self, report) -> None:
        """Consume one heal/insert round's :class:`HealReport` delta.

        Deletion rounds replay the **net deltas from the raw
        chronological event log** (:meth:`HealReport.net_edge_deltas`),
        not the report's disjointified summary sets: an edge toggling an
        odd number of times inside one heal (removed, re-added, removed
        again — observed under RandomChurn at n=300) vanishes from both
        summary sets, and feeding those here would leave a phantom edge
        in the maintained overlay.  The transport mirror replays the
        same way (``TransportMirror.apply``)."""
        if report.is_insertion:
            pairs = report.inserted_batch or ((report.inserted, report.attached_to),)
            for nid, attach_to in pairs:
                self.insert_leaf(nid, attach_to)
        else:
            added, removed = report.net_edge_deltas()
            self.apply_delete(report.deleted, added, removed)

    def insert_leaf(self, nid: int, attach_to: int) -> None:
        """A fresh leaf ``nid`` joined under live ``attach_to`` — O(depth)."""
        nid, attach_to = int(nid), int(attach_to)
        if nid in self._adj:
            raise DuplicateNodeError(nid)
        if self._root is None:
            # First node of an empty network (the network can re-grow).
            self._adj[nid] = set()
            self._parent[nid] = None
            self._children[nid] = set()
            self._height[nid] = 0
            self._diam[nid] = 0
            self._root = nid
            return
        if attach_to not in self._adj:
            raise NodeNotFoundError(attach_to, "insert_leaf attach point")
        self._adj[nid] = {attach_to}
        self._adj[attach_to].add(nid)
        self._parent[nid] = attach_to
        self._children[nid] = set()
        self._children[attach_to].add(nid)
        self._height[nid] = 0
        self._diam[nid] = 0
        self._bubble(attach_to)

    def apply_delete(
        self,
        victim: int,
        added: Iterable[Tuple[int, int]],
        removed: Iterable[Tuple[int, int]],
    ) -> None:
        """One deletion round: the victim dies, heal edges rewire the tree.

        ``added``/``removed`` are the net image-edge deltas of the round
        (canonical pairs, as reported by the engines).  Raises
        :class:`NotATreeError` when the deltas do not leave a tree — the
        caller should then fall back to BFS measurement.
        """
        if victim not in self._adj:
            raise NodeNotFoundError(victim, "apply_delete victim")
        if len(self._adj) == 1:
            self._adj.clear()
            self._parent.clear()
            self._children.clear()
            self._height.clear()
            self._diam.clear()
            self._root = None
            return
        if victim == self._root:
            # Re-root to a tree child (a chord neighbor carries no
            # orientation to flip); n >= 2 guarantees one exists.
            self._reroot_adjacent(min(self._children[victim]))

        # Normalize and include every victim-incident edge in the removals
        # (engines report them, but baseline reports are trusted less).
        removed_keys = {edge_key(int(u), int(v)) for u, v in removed}
        removed_keys |= {edge_key(victim, x) for x in self._adj[victim]}
        added_keys = [edge_key(int(u), int(v)) for u, v in added]

        detached: Set[int] = set()  # fragment roots cut off the anchor tree
        dirty: Set[int] = set()  # nodes whose child set changed
        for u, v in removed_keys:
            if v not in self._adj.get(u, ()):
                raise NotATreeError(f"removed edge {(u, v)} not present")
            self._adj[u].discard(v)
            self._adj[v].discard(u)
            if (u, v) in self._chords:
                self._chords.discard((u, v))  # chords carry no orientation
            elif self._parent.get(u) == v:
                self._children[v].discard(u)
                self._parent[u] = None
                detached.add(u)
                dirty.add(v)
            elif self._parent.get(v) == u:
                self._children[u].discard(v)
                self._parent[v] = None
                detached.add(v)
                dirty.add(u)
            else:  # pragma: no cover - defensive: cannot happen on a tree
                raise NotATreeError(f"edge {(u, v)} had no orientation")

        if self._adj[victim]:
            raise NotATreeError(f"victim {victim} still has edges after removals")
        for store in (self._adj, self._parent, self._children, self._height, self._diam):
            store.pop(victim, None)
        detached.discard(victim)
        dirty.discard(victim)

        pending: List[Tuple[int, int]] = []
        for u, v in added_keys:
            if u not in self._adj or v not in self._adj:
                raise NotATreeError(f"added edge {(u, v)} touches unknown node")
            if v in self._adj[u]:
                raise NotATreeError(f"added edge {(u, v)} already present")
            self._adj[u].add(v)
            self._adj[v].add(u)
            pending.append((u, v))
        # Existing chords may reconnect fragments a removed tree edge cut
        # off: they compete with the new edges for spanning duty.  Sorted,
        # not set order: which competitor wins spanning duty decides the
        # future orientation, and a checkpoint-restored tracker must make
        # the same choice as the unbroken run.
        #
        # Only chords touching a detached fragment can change anything: a
        # fragment only ever attaches *to* the anchor tree, so an endpoint
        # anchored here stays anchored for the whole re-hang loop and a
        # both-anchored chord would round-trip through ``pending`` back
        # into the chord set untouched.  Selecting just the incident
        # chords keeps chord-heavy soaks O(fragment size) per deletion
        # instead of O(all accumulated chords) — and dropping the no-ops
        # from ``sorted(...)`` preserves the survivors' relative order, so
        # spanning-duty competition resolves identically.
        if self._chords:
            affected = self._fragment_chords(detached)
            pending.extend(sorted(affected))
            self._chords -= affected

        # Re-hang detached fragments along the new (and chord) edges.  A
        # fragment's internal orientation and aggregates are still valid;
        # only the path from the re-attachment point up to the fragment
        # root flips.  An edge whose endpoints land in the same fragment
        # closes a cycle and is kept as a chord.
        #
        # Fragment-root lookups dominate chord-heavy rounds (every carried
        # chord is re-tested each pass), so walks are memoized for the
        # duration of this call: ``memo`` caches node -> fragment root with
        # path compression, and ``rehung`` marks former fragment roots
        # whose fragments were absorbed into the anchor tree — a memo hit
        # on one resolves to the anchor root.  The anchor root itself is
        # pinned for the whole call (the victim was re-rooted away above),
        # so absorbed fragments never need per-node invalidation.
        memo: Dict[int, int] = {}
        rehung: Set[int] = set()

        def frag_root(nid: int) -> int:
            path = []
            cur = nid
            while cur not in memo and self._parent[cur] is not None:
                path.append(cur)
                cur = self._parent[cur]  # type: ignore[assignment]
            root = memo.get(cur, cur)
            if root in rehung:
                root = self._root  # type: ignore[assignment]
            for node in path:
                memo[node] = root
            memo[cur] = root
            return root  # type: ignore[return-value]

        while pending:
            rest: List[Tuple[int, int]] = []
            progress = False
            for u, v in pending:
                ru, rv = frag_root(u), frag_root(v)
                if ru == rv:
                    self._chords.add(edge_key(u, v))
                    progress = True
                elif ru == self._root:
                    self._rehang(v, u)
                    detached.discard(rv)
                    rehung.add(rv)
                    dirty.add(u)
                    progress = True
                elif rv == self._root:
                    self._rehang(u, v)
                    detached.discard(ru)
                    rehung.add(ru)
                    dirty.add(v)
                    progress = True
                else:
                    rest.append((u, v))
            if not progress:
                raise NotATreeError("heal round left the overlay disconnected")
            pending = rest
        if detached:
            raise NotATreeError("heal round left the overlay disconnected")

        for seed in dirty:
            if seed in self._adj:
                self._bubble(seed)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _recompute(self, nid: int) -> None:
        """Refresh ``height``/``diam`` of ``nid`` from its children."""
        top1 = top2 = -1  # the two tallest child branch heights
        best_child_diam = 0
        for c in self._children[nid]:
            h = self._height[c]
            if h > top1:
                top1, top2 = h, top1
            elif h > top2:
                top2 = h
            if self._diam[c] > best_child_diam:
                best_child_diam = self._diam[c]
        self._height[nid] = top1 + 1 if top1 >= 0 else 0
        through = (top1 + 1) + (top2 + 1) if top2 >= 0 else (top1 + 1 if top1 >= 0 else 0)
        self._diam[nid] = max(through, best_child_diam)

    def _bubble(self, nid: int) -> None:
        """Recompute aggregates from ``nid`` all the way to the root."""
        cur: Optional[int] = nid
        while cur is not None:
            self._recompute(cur)
            cur = self._parent[cur]

    def _fragment_chords(self, detached: Set[int]) -> Set[Tuple[int, int]]:
        """Chords with an endpoint inside a detached fragment.

        Walks the fragments' subtrees (their internal orientation is
        still intact) and collects incident chords out of the bounded-
        degree adjacency.  Falls back to the full chord set when the
        fragments outgrow it — the full scan is then the cheaper side,
        and it reproduces the pre-selection behavior exactly.
        """
        cap = 4 * len(self._chords) + 64
        affected: Set[Tuple[int, int]] = set()
        stack = list(detached)
        seen = 0
        while stack:
            node = stack.pop()
            seen += 1
            if seen > cap:
                return set(self._chords)
            for nbr in self._adj[node]:
                key = edge_key(node, nbr)
                if key in self._chords:
                    affected.add(key)
            stack.extend(self._children[node])
        return affected

    def _frag_root(self, nid: int) -> int:
        cur = nid
        while self._parent[cur] is not None:
            cur = self._parent[cur]  # type: ignore[assignment]
        return cur

    def _rehang(self, top: int, onto: int) -> None:
        """Re-root ``top``'s fragment at ``top`` and hang it under ``onto``.

        Flips the parent pointers along the ``top`` → fragment-root path,
        re-aggregating the flipped nodes bottom-up, then attaches.
        """
        path = [top]
        while self._parent[path[-1]] is not None:
            path.append(self._parent[path[-1]])  # type: ignore[arg-type]
        for i in range(len(path) - 1, 0, -1):
            child, par = path[i - 1], path[i]
            self._children[par].discard(child)
            self._children[child].add(par)
            self._parent[par] = child
        for node in reversed(path):
            self._recompute(node)
        self._parent[top] = onto
        self._children[onto].add(top)

    def _reroot_adjacent(self, new_root: int) -> None:
        """Move the orientation root to a neighbor of the current root."""
        old = self._root
        assert old is not None and new_root in self._adj[old]
        if self._parent[new_root] != old:  # pragma: no cover - defensive
            raise InvariantViolationError("metrics-root", "neighbor not a child")
        self._children[old].discard(new_root)
        self._children[new_root].add(old)
        self._parent[old] = new_root
        self._parent[new_root] = None
        self._root = new_root
        self._recompute(old)
        self._recompute(new_root)

    # ------------------------------------------------------------------
    # validation (tests)
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Recompute everything from scratch and compare (slow; tests)."""
        if self._root is None:
            if self._adj or self._parent or self._height or self._chords:
                raise InvariantViolationError("metrics-empty", "stale entries")
            return
        # Orientation forms a spanning tree of the adjacency minus chords.
        seen = {self._root}
        order = [self._root]
        queue = deque(order)
        while queue:
            cur = queue.popleft()
            for c in self._children[cur]:
                if self._parent[c] != cur or cur not in self._adj[c]:
                    raise InvariantViolationError("metrics-orientation", str(c))
                if c in seen:
                    raise InvariantViolationError("metrics-orientation", f"dup {c}")
                seen.add(c)
                order.append(c)
                queue.append(c)
        if seen != set(self._adj):
            raise InvariantViolationError(
                "metrics-spanning", f"unreachable: {set(self._adj) - seen}"
            )
        tree_edges = {
            edge_key(n, self._parent[n])  # type: ignore[arg-type]
            for n in self._adj
            if self._parent[n] is not None
        }
        all_edges = {edge_key(u, v) for u, s in self._adj.items() for v in s}
        if tree_edges | self._chords != all_edges or tree_edges & self._chords:
            raise InvariantViolationError("metrics-chords", "edge partition broken")
        # Aggregates match a bottom-up recomputation over this orientation.
        stored = {n: (self._height[n], self._diam[n]) for n in self._adj}
        for nid in reversed(order):
            self._recompute(nid)
        for nid in self._adj:
            if stored[nid] != (self._height[nid], self._diam[nid]):
                raise InvariantViolationError(
                    "metrics-aggregate",
                    f"node {nid}: stored {stored[nid]} vs "
                    f"{(self._height[nid], self._diam[nid])}",
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self._root is None:
            return "DynamicTreeMetrics(empty)"
        return f"DynamicTreeMetrics(n={len(self._adj)}, diameter={self.diameter})"
