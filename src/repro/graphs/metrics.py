"""Graph metrics: diameters, eccentricities, stretch.

The paper's success metrics (Model 2.1) are *degree increase* and *diameter
stretch*.  Degree bookkeeping lives with the engines; this module provides
the distance machinery: exact diameters (all-sources BFS), the fast
double-sweep lower bound used by benchmarks on larger graphs, per-pair
stretch between two graphs, and eccentricities.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional, Set, Tuple

from ..core.errors import DisconnectedGraphError, EmptyStructureError
from .adjacency import Graph, bfs_distances


def eccentricity(graph: Graph, source: int) -> int:
    """Max hop distance from ``source`` (graph must be connected)."""
    dist = bfs_distances(graph, source)
    if len(dist) != len(graph):
        raise DisconnectedGraphError(f"node {source} cannot reach the whole graph")
    return max(dist.values())


def diameter_exact(graph: Graph) -> int:
    """Exact diameter by all-sources BFS (O(n·m); fine up to a few 1000s)."""
    if not graph:
        raise EmptyStructureError("diameter of empty graph")
    if len(graph) == 1:
        return 0
    best = 0
    for source in graph:
        best = max(best, eccentricity(graph, source))
    return best


def diameter_double_sweep(graph: Graph, seed: int = 0) -> int:
    """Double-sweep lower bound on the diameter (exact on trees).

    Start a BFS anywhere, move to the farthest node found, BFS again; the
    max distance of the second sweep lower-bounds the diameter and equals
    it on trees — which is where the benchmarks use it.  On general
    graphs the result can undershoot the true diameter, so callers
    measuring non-tree overlays (baseline healers keep cycles) must treat
    it as a lower bound.

    ``seed`` only picks the first sweep's start node: the function is
    deterministic given ``seed``, and the campaign harness threads its
    own seed through so repeated runs reproduce end to end (the result
    itself can differ across seeds only on non-tree graphs, where
    different start nodes may find different lower bounds).
    """
    if not graph:
        raise EmptyStructureError("diameter of empty graph")
    if len(graph) == 1:
        return 0
    rng = random.Random(seed)
    start = rng.choice(sorted(graph))
    dist = bfs_distances(graph, start)
    if len(dist) != len(graph):
        raise DisconnectedGraphError("double sweep on disconnected graph")
    far = max(dist, key=lambda n: (dist[n], n))
    dist2 = bfs_distances(graph, far)
    return max(dist2.values())


def diameter(graph: Graph, exact: bool = True, seed: int = 0) -> int:
    """Diameter; ``exact=False`` uses the double sweep.

    Caveat for ``exact=False``: the double sweep is exact *on trees only*
    (every healed Forgiving Tree overlay); on general graphs it is a
    seed-dependent lower bound — see :func:`diameter_double_sweep`.  For
    per-round measurement over churn campaigns prefer the incremental
    engine (:class:`repro.graphs.incremental.DynamicTreeMetrics`), which
    is exact on trees at O(depth) per round instead of O(m).
    """
    return diameter_exact(graph) if exact else diameter_double_sweep(graph, seed)


def radius(graph: Graph) -> int:
    """Min eccentricity over nodes (exact, all-sources)."""
    if not graph:
        raise EmptyStructureError("radius of empty graph")
    return min(eccentricity(graph, s) for s in graph)


def center(graph: Graph) -> Set[int]:
    """Nodes of minimum eccentricity."""
    if not graph:
        raise EmptyStructureError("center of empty graph")
    ecc = {s: eccentricity(graph, s) for s in graph}
    r = min(ecc.values())
    return {s for s, e in ecc.items() if e == r}


def pairwise_stretch(
    before: Graph,
    after: Graph,
    pairs: Optional[Iterable[Tuple[int, int]]] = None,
    sample: int = 0,
    seed: int = 0,
) -> Dict[Tuple[int, int], float]:
    """Distance stretch ``d_after(u,v) / d_before(u,v)`` for node pairs.

    Only pairs alive in both graphs are measured.  ``sample > 0`` draws that
    many random pairs instead of measuring all (used on large graphs).
    """
    common = sorted(set(before) & set(after))
    if pairs is None:
        if sample > 0:
            rng = random.Random(seed)
            pairs = [
                tuple(sorted(rng.sample(common, 2)))  # type: ignore[misc]
                for _ in range(sample)
                if len(common) >= 2
            ]
        else:
            pairs = [(u, v) for i, u in enumerate(common) for v in common[i + 1 :]]
    out: Dict[Tuple[int, int], float] = {}
    cache_before: Dict[int, Dict[int, int]] = {}
    cache_after: Dict[int, Dict[int, int]] = {}
    for u, v in pairs:
        if u not in cache_before:
            cache_before[u] = bfs_distances(before, u)
        if u not in cache_after:
            cache_after[u] = bfs_distances(after, u)
        d0 = cache_before[u].get(v)
        d1 = cache_after[u].get(v)
        if d0 in (None, 0) or d1 is None:
            continue
        out[(u, v)] = d1 / d0
    return out


def max_stretch(before: Graph, after: Graph, sample: int = 0, seed: int = 0) -> float:
    """Max pairwise stretch between two graphs (1.0 if nothing measurable)."""
    stretches = pairwise_stretch(before, after, sample=sample, seed=seed)
    return max(stretches.values(), default=1.0)
