"""Spanning trees of general graphs.

The Forgiving Tree operates on a rooted spanning tree of the network
(Section 3: "we begin with a rooted spanning tree T, which without loss of
generality may as well be the entire network").  The sequential engine uses
:func:`bfs_tree` here; the *distributed* construction with Cohen-style
O(log n) messages per edge lives in :mod:`repro.distributed.setup`.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, Optional, Set, Tuple

from ..core.errors import DisconnectedGraphError, NodeNotFoundError
from .adjacency import Graph, from_edges


def bfs_tree(graph: Graph, root: Optional[int] = None) -> Graph:
    """Breadth-first spanning tree rooted at ``root`` (default: min id).

    Neighbors are scanned in sorted order, so the tree is deterministic —
    and it is a *shortest-path* tree, which preserves the paper's diameter
    accounting (tree height ≤ eccentricity of the root).
    """
    if not graph:
        return {}
    if root is None:
        root = min(graph)
    if root not in graph:
        raise NodeNotFoundError(root, "bfs_tree root")
    parent: Dict[int, int] = {}
    seen: Set[int] = {root}
    queue = deque([root])
    while queue:
        cur = queue.popleft()
        for nxt in sorted(graph[cur]):
            if nxt not in seen:
                seen.add(nxt)
                parent[nxt] = cur
                queue.append(nxt)
    if len(seen) != len(graph):
        raise DisconnectedGraphError("bfs_tree on disconnected graph")
    if not parent:
        return {root: set()}
    return from_edges(parent.items())


def random_spanning_tree(graph: Graph, seed: int = 0) -> Graph:
    """Random spanning tree by randomized BFS/DFS hybrid (deterministic
    per seed).  Used by tests to vary tree shapes over the same graph."""
    if not graph:
        return {}
    rng = random.Random(seed)
    root = rng.choice(sorted(graph))
    parent: Dict[int, int] = {}
    seen = {root}
    frontier = [root]
    while frontier:
        idx = rng.randrange(len(frontier))
        frontier[idx], frontier[-1] = frontier[-1], frontier[idx]
        cur = frontier.pop()
        neighbors = sorted(graph[cur])
        rng.shuffle(neighbors)
        for nxt in neighbors:
            if nxt not in seen:
                seen.add(nxt)
                parent[nxt] = cur
                frontier.append(nxt)
    if len(seen) != len(graph):
        raise DisconnectedGraphError("random_spanning_tree on disconnected graph")
    if not parent:
        return {root: set()}
    return from_edges(parent.items())


def tree_parents(tree: Graph, root: int) -> Dict[int, Optional[int]]:
    """Parent map of a tree rooted at ``root`` (root maps to None)."""
    if root not in tree:
        raise NodeNotFoundError(root, "tree_parents root")
    parents: Dict[int, Optional[int]] = {root: None}
    queue = deque([root])
    while queue:
        cur = queue.popleft()
        for nxt in sorted(tree[cur]):
            if nxt not in parents:
                parents[nxt] = cur
                queue.append(nxt)
    if len(parents) != len(tree):
        raise DisconnectedGraphError("tree_parents on disconnected input")
    return parents


def tree_height(tree: Graph, root: int) -> int:
    """Height of the tree as rooted at ``root``."""
    from .adjacency import bfs_distances

    dist = bfs_distances(tree, root)
    if len(dist) != len(tree):
        raise DisconnectedGraphError("tree_height on disconnected input")
    return max(dist.values())


def non_tree_edges(graph: Graph, tree: Graph) -> Set[Tuple[int, int]]:
    """Edges of ``graph`` not used by ``tree`` (canonical pairs)."""
    from .adjacency import edges as edge_set

    return edge_set(graph) - edge_set(tree)
