"""Graph substrates: plain-dict graphs, generators, metrics, spanning trees."""

from . import adjacency, generators, metrics, spanning
from .adjacency import Graph

__all__ = ["Graph", "adjacency", "generators", "metrics", "spanning"]
