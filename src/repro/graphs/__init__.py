"""Graph substrates: plain-dict graphs, generators, metrics, spanning trees,
and incremental (O(depth)-per-edit) tree-metric maintenance."""

from . import adjacency, generators, incremental, metrics, spanning
from .adjacency import Graph
from .incremental import DynamicTreeMetrics

__all__ = [
    "DynamicTreeMetrics",
    "Graph",
    "adjacency",
    "generators",
    "incremental",
    "metrics",
    "spanning",
]
