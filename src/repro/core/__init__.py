"""Core of the reproduction: the Forgiving Tree engine and its parts."""

from .errors import (
    DisconnectedGraphError,
    DuplicateNodeError,
    EmptyStructureError,
    InvariantViolationError,
    NodeNotFoundError,
    NotATreeError,
    ProtocolError,
    ReproError,
    SimulationOverError,
)
from .events import (
    EdgeAdded,
    EdgeRemoved,
    HealReport,
    HelperCreated,
    HelperDestroyed,
    HelperTransferred,
    LeafWillSent,
    NodeInserted,
    WillPortionSent,
    edge_key,
)
from .flat import AliveView, FlatCore, FlatWills
from .flat_tree import FlatForgivingTree
from .forgiving_tree import WILL_REBUILD, WILL_SPLICE, ForgivingTree
from .slot_tree import SlotTree
from .state import ALLOWED_TRANSITIONS, HelperState, NodeState
from .virtual_tree import VirtualTree, VTHelper, VTNode, VTReal

__all__ = [
    "ALLOWED_TRANSITIONS",
    "AliveView",
    "DisconnectedGraphError",
    "DuplicateNodeError",
    "EdgeAdded",
    "EdgeRemoved",
    "EmptyStructureError",
    "FlatCore",
    "FlatForgivingTree",
    "FlatWills",
    "ForgivingTree",
    "HealReport",
    "HelperCreated",
    "HelperDestroyed",
    "HelperState",
    "HelperTransferred",
    "InvariantViolationError",
    "LeafWillSent",
    "NodeInserted",
    "NodeNotFoundError",
    "NodeState",
    "NotATreeError",
    "ProtocolError",
    "ReproError",
    "SimulationOverError",
    "SlotTree",
    "VTHelper",
    "VTNode",
    "VTReal",
    "VirtualTree",
    "WILL_REBUILD",
    "WILL_SPLICE",
    "WillPortionSent",
    "edge_key",
]
