"""Slot trees: the shape of a node's Reconstruction Tree (SubRT).

A *slot tree* is the will's blueprint for ``GenerateSubRT`` (Algorithm 3.5 of
the paper): a full search tree whose

* **leaves** are the child *slots* of a node ``v``, identified by their
  *stand-in* (the real node currently answering for that child edge), in
  left-to-right key order, and whose
* **internal positions** are each *assigned* to a distinct non-heir stand-in
  — the real node that will simulate the corresponding helper node when
  ``v`` dies.

For the paper's binary case the construction is exactly Algorithm 3.5: the
leaves are sorted ascending by ID, the heir is the highest-ID child, and the
``d - 1`` internal positions are keyed by the maximum stand-in of their left
subtree, which enumerates exactly the non-heir children.  The generalized
``branching = b`` tree implements the Section 4.2 remark (degree increase
``α = b + 1``, stretch ``≈ 2·log_b Δ``).

Maintenance is **positional** (never re-sorted after construction), which is
what makes the paper's O(1)-messages-per-deletion claim (Theorem 1.3) true:

* ``remove(y)`` splices the dead leaf out.  Its parent internal position, if
  left with a single child, is spliced too, freeing its simulator — the
  paper's "helper node which has just decreased in degree from 3 to 2".  The
  freed simulator re-keys the internal position that was assigned to ``y``
  (if any) and becomes the new heir if ``y`` was the heir.
* ``replace(old, new)`` substitutes a stand-in in place (used when an heir
  takes a dead child's slot, or when a leaf will is inherited).

Both operations report exactly which stand-ins' will *portions* changed so
that the distributed layer can count retransmissions; the deltas are O(1)
per operation, which the test-suite asserts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from .errors import (
    DuplicateNodeError,
    EmptyStructureError,
    InvariantViolationError,
    NodeNotFoundError,
)

#: Reference to a position in the slot tree, used when describing structure:
#: ``("leaf", stand_in)`` or ``("internal", sim)`` or ``("top",)`` for the
#: position above the root.
PosRef = Tuple[str, ...]


class _Leaf:
    """A leaf position: one child slot, identified by its stand-in."""

    __slots__ = ("stand_in", "parent")

    def __init__(self, stand_in: int, parent: Optional["_Internal"] = None):
        self.stand_in = stand_in
        self.parent = parent

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Leaf({self.stand_in})"


class _Internal:
    """An internal position: a helper node to be simulated by ``sim``."""

    __slots__ = ("sim", "children", "parent")

    def __init__(self, sim: int, children: List[Union["_Internal", _Leaf]]):
        self.sim = sim
        self.children = children
        self.parent: Optional[_Internal] = None
        for child in children:
            child.parent = self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Internal(sim={self.sim}, n={len(self.children)})"


_Pos = Union[_Internal, _Leaf]


@dataclass(frozen=True)
class RemovalDelta:
    """What changed when a leaf slot was removed.

    Attributes
    ----------
    emptied:
        The tree had a single leaf and is now empty.
    spliced_sim:
        Simulator freed because its internal position was spliced out
        (``None`` if no internal was spliced — only possible for b > 2).
    reassigned:
        ``(freed_position_old_sim, new_sim)`` if an internal position that
        was assigned to the dead stand-in got a new simulator.
    new_heir:
        The new heir stand-in if the dead slot was the heir.
    touched:
        Stand-ins whose will portion changed and must be retransmitted
        (always O(1) of them).
    """

    emptied: bool = False
    spliced_sim: Optional[int] = None
    reassigned: Optional[Tuple[int, int]] = None
    new_heir: Optional[int] = None
    touched: Tuple[int, ...] = ()


@dataclass(frozen=True)
class ReplaceDelta:
    """What changed when a stand-in was substituted positionally."""

    was_heir: bool
    had_internal: bool
    touched: Tuple[int, ...] = ()


@dataclass(frozen=True)
class AddDelta:
    """What changed when a new leaf slot was inserted (churn model).

    Attributes
    ----------
    became_heir:
        The will was empty, so the new stand-in is the (only) heir.
    paired_with:
        The existing leaf the new slot was paired with under a fresh
        internal position (``None`` when the will was empty or the new
        leaf filled a spare internal arity slot, b > 2 only).
    touched:
        Stand-ins whose will portion changed and must be retransmitted
        (always O(1) of them, the Theorem 1.3 property insertions keep).
    """

    became_heir: bool = False
    paired_with: Optional[int] = None
    touched: Tuple[int, ...] = ()


@dataclass(frozen=True)
class AddBatchDelta:
    """What changed when a wave of leaf slots was inserted together.

    ``touched`` is the union of the per-add touched sets, deduplicated —
    the point of batching: each affected stand-in's portion is recomputed
    and retransmitted *once per wave*, not once per joiner.
    """

    added: Tuple[int, ...] = ()
    touched: Tuple[int, ...] = ()


@dataclass
class InternalSpec:
    """Structural description of one internal position (for deployment)."""

    sim: int
    parent: PosRef  # ("internal", sim) or ("top",)
    children: List[PosRef] = field(default_factory=list)


class SlotTree:
    """The blueprint of a node's Reconstruction Tree (see module docstring).

    Parameters
    ----------
    stand_ins:
        The child stand-ins.  They are sorted ascending at construction
        (Algorithm 3.5); the maximum becomes the heir.
    branching:
        Maximum number of children per internal position (paper: 2).
    """

    def __init__(self, stand_ins: Sequence[int], branching: int = 2):
        if branching < 2:
            raise ValueError(f"branching must be >= 2, got {branching}")
        ids = sorted(stand_ins)
        if len(set(ids)) != len(ids):
            dup = next(x for i, x in enumerate(ids) if i and ids[i - 1] == x)
            raise DuplicateNodeError(dup)
        self.branching = branching
        self._leaves: Dict[int, _Leaf] = {}
        self._internal_by_sim: Dict[int, _Internal] = {}
        self._root: Optional[_Pos] = None
        self._heir: Optional[int] = None
        if ids:
            self._heir = ids[-1]
            self._root = self._build(ids)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, ids: Sequence[int]) -> _Pos:
        if len(ids) == 1:
            leaf = _Leaf(ids[0])
            self._leaves[ids[0]] = leaf
            return leaf
        groups = _split_even(ids, self.branching)
        children = [self._build(g) for g in groups]
        sim = max(groups[0])  # BST separator: max of first subtree
        node = _Internal(sim, children)
        self._internal_by_sim[sim] = node
        return node

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._leaves)

    def __bool__(self) -> bool:
        return bool(self._leaves)

    def __contains__(self, stand_in: int) -> bool:
        return stand_in in self._leaves

    @property
    def heir(self) -> Optional[int]:
        """The heir stand-in (Algorithm 3.2 line 8; None when empty)."""
        return self._heir

    @property
    def stand_ins(self) -> List[int]:
        """Leaf stand-ins in left-to-right order."""
        out: List[int] = []
        if self._root is not None:
            _collect_leaves(self._root, out)
        return out

    @property
    def internal_sims(self) -> List[int]:
        """Simulators currently assigned to internal positions."""
        return sorted(self._internal_by_sim)

    def has_internal(self, stand_in: int) -> bool:
        """Does ``stand_in`` simulate an internal position of this will?"""
        return stand_in in self._internal_by_sim

    def depth(self) -> int:
        """Longest root-to-leaf edge count (0 for a single leaf)."""
        if self._root is None:
            raise EmptyStructureError("depth of empty slot tree")
        return _depth(self._root)

    def root_ref(self) -> PosRef:
        """Reference to the root position (``rv`` in Algorithm 3.6)."""
        if self._root is None:
            raise EmptyStructureError("root of empty slot tree")
        return _ref(self._root)

    def root_sim(self) -> int:
        """Stand-in answering for the root position."""
        if self._root is None:
            raise EmptyStructureError("root of empty slot tree")
        if isinstance(self._root, _Leaf):
            return self._root.stand_in
        return self._root.sim

    # ------------------------------------------------------------------
    # structural description (used to deploy the RT and to build portions)
    # ------------------------------------------------------------------
    def internal_specs(self) -> List[InternalSpec]:
        """All internal positions with parent/children references."""
        specs: List[InternalSpec] = []
        for sim in sorted(self._internal_by_sim):
            node = self._internal_by_sim[sim]
            parent = ("top",) if node.parent is None else ("internal", node.parent.sim)
            spec = InternalSpec(sim=sim, parent=parent)
            spec.children = [_ref(c) for c in node.children]
            specs.append(spec)
        return specs

    def leaf_parent_sim(self, stand_in: int) -> Optional[int]:
        """Simulator of the internal position directly above a leaf.

        ``None`` means the leaf *is* the root (single-slot will).
        """
        leaf = self._leaf(stand_in)
        return None if leaf.parent is None else leaf.parent.sim

    def attachment_sim(self, stand_in: int) -> Optional[int]:
        """The stand-in a leaf connects to in the *image* graph.

        This is the paper's ``nextparent`` rule in Algorithm 3.6 line 4: a
        leaf normally connects to its parent internal position's simulator,
        but when that simulator is the leaf itself (an image self-loop) it
        connects to the grandparent position instead.  ``None`` means the
        connection goes above the root of the SubRT (to the heir helper or
        to the deleted node's parent).
        """
        leaf = self._leaf(stand_in)
        pos = leaf.parent
        if pos is not None and pos.sim == stand_in:
            pos = pos.parent
        return None if pos is None else pos.sim

    def internal_parent_sim(self, stand_in: int) -> Optional[int]:
        """Simulator above ``stand_in``'s internal position (None = top)."""
        node = self._internal(stand_in)
        return None if node.parent is None else node.parent.sim

    def internal_children_refs(self, stand_in: int) -> List[PosRef]:
        """Children references of ``stand_in``'s internal position."""
        node = self._internal(stand_in)
        return [_ref(c) for c in node.children]

    def as_shape(self):
        """Nested-tuple rendering, for tests and debugging.

        Leaves render as their stand-in; internals as
        ``(sim, child, child, ...)``.
        """
        if self._root is None:
            return None
        return _shape(self._root)

    # ------------------------------------------------------------------
    # positional maintenance
    # ------------------------------------------------------------------
    def remove(self, stand_in: int) -> RemovalDelta:
        """Remove a dead leaf slot positionally (see module docstring)."""
        leaf = self._leaf(stand_in)
        del self._leaves[stand_in]
        parent = leaf.parent

        if parent is None:  # single-slot will
            self._root = None
            self._heir = None
            return RemovalDelta(emptied=True)

        parent.children.remove(leaf)
        touched: List[int] = []
        spliced_sim: Optional[int] = None
        freed: List[int] = []

        # The dead stand-in's own internal assignment (if any) is now vacant.
        vacant = self._internal_by_sim.pop(stand_in, None)

        if len(parent.children) == 1:
            # "short-circuit": splice the one-child internal position out.
            only = parent.children[0]
            self._splice(parent, only)
            spliced_sim = parent.sim
            if parent is vacant:
                vacant = None  # the vacant position itself was spliced away
            else:
                self._internal_by_sim.pop(parent.sim, None)
                freed.append(parent.sim)
            touched.append(parent.sim)  # it lost its internal assignment
            touched.extend(self._around(only))
        else:
            touched.extend(self._around(parent))

        reassigned: Optional[Tuple[int, int]] = None
        if vacant is not None:
            new_sim = self._pick_free(freed)
            vacant.sim = new_sim
            self._internal_by_sim[new_sim] = vacant
            if new_sim in freed:
                freed.remove(new_sim)
            reassigned = (stand_in, new_sim)
            touched.append(new_sim)
            touched.extend(self._around(vacant))

        new_heir: Optional[int] = None
        if stand_in == self._heir:
            new_heir = self._pick_free(freed)
            self._heir = new_heir
            touched.append(new_heir)

        return RemovalDelta(
            emptied=False,
            spliced_sim=spliced_sim,
            reassigned=reassigned,
            new_heir=new_heir,
            touched=tuple(dict.fromkeys(t for t in touched if t in self._leaves)),
        )

    def replace(self, old: int, new: int) -> ReplaceDelta:
        """Substitute stand-in ``old`` by ``new`` positionally.

        Used when a dead child's heir takes over its slot (Algorithm 3.3
        lines 3-5: "``hparent(h)`` replaces ``v`` by ``h`` in its will")
        and when a leaf will moves a slot to the inheriting node.
        """
        if new in self._leaves:
            raise DuplicateNodeError(new)
        leaf = self._leaf(old)
        del self._leaves[old]
        leaf.stand_in = new
        self._leaves[new] = leaf

        had_internal = old in self._internal_by_sim
        if had_internal:
            node = self._internal_by_sim.pop(old)
            node.sim = new
            self._internal_by_sim[new] = node

        was_heir = old == self._heir
        if was_heir:
            self._heir = new

        touched = [new]
        touched.extend(self._around(leaf))
        if had_internal:
            touched.extend(self._around(self._internal_by_sim[new]))
        return ReplaceDelta(
            was_heir=was_heir,
            had_internal=had_internal,
            touched=tuple(dict.fromkeys(t for t in touched if t in self._leaves)),
        )

    def add(self, stand_in: int) -> AddDelta:
        """Insert a new leaf slot positionally (the churn model's join).

        Placement rule: the new leaf pairs with a *shallowest* existing
        leaf under a fresh internal position whose simulator is the new
        stand-in itself — a fresh stand-in holds no internal assignment
        and is never the heir, so every slot-tree invariant survives with
        no re-keying.  For ``branching > 2`` an underfull internal
        position encountered first (level order) absorbs the leaf
        directly.  Attaching at minimum depth keeps the tree within one
        level of balanced, preserving the ``O(log d)`` depth Theorem 1.2
        leans on; the touched-portion delta stays O(1).
        """
        if stand_in in self._leaves:
            raise DuplicateNodeError(stand_in)
        leaf = _Leaf(stand_in)
        self._leaves[stand_in] = leaf

        if self._root is None:
            self._root = leaf
            self._heir = stand_in
            return AddDelta(became_heir=True, touched=(stand_in,))

        # Level-order scan: first spare internal slot (b > 2) or first
        # (= shallowest) leaf wins.
        queue: deque[_Pos] = deque([self._root])
        target: _Pos = self._root
        while queue:
            pos = queue.popleft()
            if isinstance(pos, _Leaf) or len(pos.children) < self.branching:
                target = pos
                break
            queue.extend(pos.children)

        touched: List[int] = [stand_in]
        if isinstance(target, _Internal):
            target.children.append(leaf)
            leaf.parent = target
            touched.extend(self._around(target))
            return AddDelta(
                touched=tuple(dict.fromkeys(t for t in touched if t in self._leaves))
            )

        grand = target.parent
        node = _Internal(stand_in, [target, leaf])
        node.parent = grand
        if grand is None:
            self._root = node
        else:
            grand.children[grand.children.index(target)] = node
        self._internal_by_sim[stand_in] = node
        touched.extend(self._around(node))
        return AddDelta(
            paired_with=target.stand_in,
            touched=tuple(dict.fromkeys(t for t in touched if t in self._leaves)),
        )

    def add_batch(self, stand_ins: Sequence[int]) -> AddBatchDelta:
        """Insert a wave of leaf slots, amortizing the portion recompute.

        Each joiner is placed by exactly the same rule as :meth:`add`, in
        order, so the resulting slot tree is *identical* to applying the
        same adds sequentially — the amortization is entirely in the
        reported ``touched`` set, which is the deduplicated union: a wave
        costs one portion retransmission per touched stand-in, not one
        per joiner (adds never remove leaves, so every intermediate
        touched stand-in is still live at the end of the wave).
        """
        ids = [int(s) for s in stand_ins]
        if len(set(ids)) != len(ids):
            dup = next(x for i, x in enumerate(ids) if x in ids[:i])
            raise DuplicateNodeError(dup)
        touched: List[int] = []
        for s in ids:
            touched.extend(self.add(s).touched)
        return AddBatchDelta(
            added=tuple(ids),
            touched=tuple(dict.fromkeys(t for t in touched if t in self._leaves)),
        )

    def set_heir(self, new_heir: int) -> Tuple[int, ...]:
        """Move heir-ness to another free stand-in (generalized-b only).

        Returns the touched stand-ins.  The new heir must not hold an
        internal assignment; the old heir keeps its leaf position.
        """
        if new_heir not in self._leaves:
            raise NodeNotFoundError(new_heir, "set_heir")
        if new_heir in self._internal_by_sim:
            raise InvariantViolationError("slot-tree-heir", "heir cannot hold an internal")
        old = self._heir
        self._heir = new_heir
        touched = tuple(t for t in (old, new_heir) if t is not None)
        return touched

    def exclude_from_assignment(self, busy: Set[int]) -> Tuple[int, ...]:
        """Re-assign internal positions away from ``busy`` stand-ins.

        Used by the generalized (branching > 2) tree at deployment time:
        stand-ins already simulating a helper elsewhere cannot take an
        internal position, so their assignments move to free stand-ins.
        If the heir is busy, heir-ness moves to a free stand-in as well.
        Raises when there are not enough free stand-ins (cannot happen for
        the paper's binary case, where ``busy`` is always empty).

        Returns the stand-ins whose portions changed.
        """
        touched: List[int] = []

        def free_pool() -> List[int]:
            return [
                s
                for s in sorted(self._leaves)
                if s != self._heir and s not in self._internal_by_sim and s not in busy
            ]

        if self._heir in busy:
            pool = free_pool()
            if not pool:
                raise InvariantViolationError(
                    "slot-tree-exclusion", "no free stand-in to take heir-ness"
                )
            touched.extend(self.set_heir(pool[0]))
        for sim in [s for s in self.internal_sims if s in busy]:
            pool = free_pool()
            if not pool:
                raise InvariantViolationError(
                    "slot-tree-exclusion", "no free stand-in for internal position"
                )
            node = self._internal_by_sim.pop(sim)
            node.sim = pool[0]
            self._internal_by_sim[pool[0]] = node
            touched.extend([sim, pool[0]])
            touched.extend(self._around(node))
        return tuple(dict.fromkeys(t for t in touched if t in self._leaves))

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Validate all slot-tree invariants; raise on violation."""
        if self._root is None:
            if self._leaves or self._internal_by_sim or self._heir is not None:
                raise InvariantViolationError("slot-tree-empty", "stale entries")
            return
        seen_leaves: List[int] = []
        _collect_leaves(self._root, seen_leaves)
        if sorted(seen_leaves) != sorted(self._leaves):
            raise InvariantViolationError("slot-tree-leaves", "leaf index mismatch")
        if self._heir not in self._leaves:
            raise InvariantViolationError("slot-tree-heir", f"heir {self._heir} not a leaf")
        if self._heir in self._internal_by_sim:
            raise InvariantViolationError("slot-tree-heir", "heir holds an internal position")
        internals = _collect_internals(self._root)
        if len(internals) != len(self._internal_by_sim):
            raise InvariantViolationError("slot-tree-internals", "index mismatch")
        for node in internals:
            if not 2 <= len(node.children) <= self.branching:
                raise InvariantViolationError(
                    "slot-tree-arity",
                    f"internal {node.sim} has {len(node.children)} children",
                )
            if node.sim not in self._leaves:
                raise InvariantViolationError(
                    "slot-tree-sim", f"internal sim {node.sim} is not a live stand-in"
                )
            if self._internal_by_sim.get(node.sim) is not node:
                raise InvariantViolationError("slot-tree-sim-index", str(node.sim))
            for child in node.children:
                if child.parent is not node:
                    raise InvariantViolationError("slot-tree-parent-link", str(node.sim))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _leaf(self, stand_in: int) -> _Leaf:
        try:
            return self._leaves[stand_in]
        except KeyError:
            raise NodeNotFoundError(stand_in, "slot tree leaf") from None

    def _internal(self, stand_in: int) -> _Internal:
        try:
            return self._internal_by_sim[stand_in]
        except KeyError:
            raise NodeNotFoundError(stand_in, "slot tree internal") from None

    def _splice(self, node: _Internal, only: _Pos) -> None:
        """Replace one-child internal ``node`` by its single child."""
        grand = node.parent
        only.parent = grand
        if grand is None:
            self._root = only
        else:
            grand.children[grand.children.index(node)] = only

    def _pick_free(self, freed: List[int]) -> int:
        """Pick a free (unassigned, non-heir) stand-in for a vacant role.

        For binary trees the freed simulator of the just-spliced internal is
        the unique candidate, which reproduces the paper's re-keying rule;
        for b > 2 we deterministically pick the smallest free stand-in.
        """
        if freed:
            return freed[0]
        pool = [
            s
            for s in sorted(self._leaves)
            if s != self._heir and s not in self._internal_by_sim
        ]
        if not pool:
            raise InvariantViolationError("slot-tree-pool", "no free stand-in")
        return pool[0]

    def _around(self, pos: _Pos) -> List[int]:
        """Stand-ins whose portions reference ``pos`` (O(1) of them)."""
        out: List[int] = []
        if isinstance(pos, _Leaf):
            out.append(pos.stand_in)
            if pos.parent is not None:
                out.append(pos.parent.sim)
        else:
            out.append(pos.sim)
            if pos.parent is not None:
                out.append(pos.parent.sim)
            for child in pos.children:
                out.append(child.stand_in if isinstance(child, _Leaf) else child.sim)
        return out

    def clone(self) -> "SlotTree":
        """Deep copy preserving positions (not re-sorted)."""
        other = SlotTree([], branching=self.branching)
        other._heir = self._heir
        if self._root is not None:
            other._root = _clone(self._root, other, None)
        return other

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SlotTree({self.as_shape()!r}, heir={self._heir})"


# ----------------------------------------------------------------------
# module helpers
# ----------------------------------------------------------------------
def _split_even(ids: Sequence[int], branching: int) -> List[Sequence[int]]:
    """Split ``ids`` into at most ``branching`` contiguous near-even groups.

    For b = 2 this is the classic ceil/floor split, so depth is
    ``ceil(log2 d)`` — the balance Theorem 1.2 relies on.
    """
    n = len(ids)
    k = min(branching, n)
    groups: List[Sequence[int]] = []
    start = 0
    for i in range(k):
        size = (n - start + (k - i - 1)) // (k - i)  # ceil of remaining / slots
        groups.append(ids[start : start + size])
        start += size
    return [g for g in groups if g]


def _collect_leaves(pos: _Pos, out: List[int]) -> None:
    if isinstance(pos, _Leaf):
        out.append(pos.stand_in)
    else:
        for child in pos.children:
            _collect_leaves(child, out)


def _collect_internals(pos: _Pos) -> List[_Internal]:
    if isinstance(pos, _Leaf):
        return []
    out = [pos]
    for child in pos.children:
        out.extend(_collect_internals(child))
    return out


def _depth(pos: _Pos) -> int:
    if isinstance(pos, _Leaf):
        return 0
    return 1 + max(_depth(c) for c in pos.children)


def _ref(pos: _Pos) -> PosRef:
    if isinstance(pos, _Leaf):
        return ("leaf", pos.stand_in)
    return ("internal", pos.sim)


def _shape(pos: _Pos):
    if isinstance(pos, _Leaf):
        return pos.stand_in
    return (pos.sim, *(_shape(c) for c in pos.children))


def _clone(pos: _Pos, into: SlotTree, parent: Optional[_Internal]) -> _Pos:
    if isinstance(pos, _Leaf):
        leaf = _Leaf(pos.stand_in, parent)
        into._leaves[pos.stand_in] = leaf
        return leaf
    node = _Internal(pos.sim, [])
    node.parent = parent
    into._internal_by_sim[pos.sim] = node
    node.children = [_clone(c, into, node) for c in pos.children]
    return node


def iter_positions(tree: SlotTree) -> Iterator[PosRef]:
    """Iterate all position references, preorder (exposed for tests)."""

    def walk(pos: _Pos) -> Iterator[PosRef]:
        yield _ref(pos)
        if isinstance(pos, _Internal):
            for child in pos.children:
                yield from walk(child)

    if tree._root is not None:
        yield from walk(tree._root)
