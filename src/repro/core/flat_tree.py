"""The Forgiving Tree engine on flat struct-of-arrays storage.

:class:`FlatForgivingTree` is a *faithful translation* of
:class:`~repro.core.forgiving_tree.ForgivingTree` onto :class:`~repro.core.flat.FlatCore`
and :class:`~repro.core.flat.FlatWills`: same healing logic, same orderings
(child lists, donor BFS, hid-ascending steals, sorted anchor scans), same
event logs, same synthesized message tallies.  The object engine stays the
readable reference; this engine is what the hot path runs, and the parity
wall in ``tests/test_flatcore.py`` asserts the two are structurally
identical event for event.

What the flat layout buys (the BENCH_churn ladder's flat per-event cost):

* ``alive`` is a zero-copy set view — no O(n) copy per round;
* ``max_degree_increase`` reads a maintained multiset — no O(n·m) scan;
* ``degree`` is a maintained counter — no O(m) edge scan;
* victim/attachment sampling is O(1) via :meth:`sample_alive`;
* nodes are array rows, so n = 10^6 fits in a few flat arrays instead of
  millions of Python objects — see :meth:`from_parents` for O(n) bulk
  construction without an adjacency dict.

Object views are materialized on demand (:meth:`will_of`,
:meth:`virtual_tree`, :meth:`render`), which is the thin-view contract: the
test wall, the healer catalog, the harness and the distributed drivers run
against the same API either way.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .errors import (
    DuplicateNodeError,
    InvariantViolationError,
    NodeNotFoundError,
    NotATreeError,
    SimulationOverError,
)
from .events import (
    EdgeAdded,
    EdgeRemoved,
    HealReport,
    HelperCreated,
    HelperDestroyed,
    HelperTransferred,
    LeafWillSent,
    NodeInserted,
    WillPortionSent,
    normalize_wave,
)
from .flat import NIL, AliveView, FlatCore, FlatWills
from .forgiving_tree import (
    WILL_REBUILD,
    WILL_SPLICE,
    TreeInput,
    _as_adjacency,
    _check_is_tree,
    _Tally,
)
from .slot_tree import SlotTree
from .state import HelperState, NodeState
from .virtual_tree import VirtualTree, VTHelper


class FlatForgivingTree:
    """Self-healing tree on flat storage (see module docstring).

    Drop-in API replacement for :class:`~repro.core.forgiving_tree.ForgivingTree`;
    the constructor signature, the report stream and every public query
    behave identically (``alive`` returns a zero-copy set *view* rather
    than a fresh ``set``, supporting the same set algebra).
    """

    def __init__(
        self,
        tree: TreeInput,
        root: Optional[int] = None,
        branching: int = 2,
        will_mode: str = WILL_SPLICE,
        strict: bool = False,
    ) -> None:
        adjacency = _as_adjacency(tree)
        if not adjacency:
            raise NotATreeError("empty tree")
        root_id = min(adjacency) if root is None else root
        if root_id not in adjacency:
            raise NodeNotFoundError(root_id, "root")
        _check_is_tree(adjacency)
        self._setup(root_id, branching, will_mode, strict)
        self.original_degree = {
            nid: len(neigh) for nid, neigh in adjacency.items()
        }
        self.initial_nodes: Set[int] = set(adjacency)
        self._ever: Set[int] = set(adjacency)  # ids may never be reused
        self._build(adjacency)

    def _setup(self, root_id: int, branching: int, will_mode: str, strict: bool) -> None:
        if will_mode not in (WILL_SPLICE, WILL_REBUILD):
            raise ValueError(f"unknown will_mode {will_mode!r}")
        if branching < 2:
            raise ValueError("branching must be >= 2")
        self.branching = branching
        self.will_mode = will_mode
        self.strict = strict
        self.root_id = root_id
        self._events: List[object] = []
        self._c = FlatCore(recorder=None)  # recorder attaches after the build
        self._w = FlatWills(branching=branching)
        self._tally = _Tally()
        self.rounds = 0

    @classmethod
    def from_parents(
        cls,
        parents: Sequence[int],
        branching: int = 2,
        will_mode: str = WILL_SPLICE,
        strict: bool = False,
    ) -> "FlatForgivingTree":
        """Bulk-build from a parent array (node i's parent; -1 at the root).

        O(n) with no adjacency dict — the constructor the n = 10^6 scaling
        ladder uses.  Produces exactly the structure the adjacency
        constructor would: per-parent children come out id-ascending, the
        BFS attach order matches ``_build``, and the wills are identical.
        """
        n = len(parents)
        if n == 0:
            raise NotATreeError("empty tree")
        root = -1
        count = [0] * n
        for i in range(n):
            p = parents[i]
            if p == -1:
                if root != -1:
                    raise NotATreeError("two roots in parent array")
                root = i
            elif 0 <= p < n:
                count[p] += 1
            else:
                raise NodeNotFoundError(p, "parent array")
        if root == -1:
            raise NotATreeError("no root in parent array")

        # Counting sort children by parent; filling in ascending child id
        # leaves each parent's children sorted ascending (Algorithm 3.5's
        # sort for free).
        offset = [0] * (n + 1)
        for i in range(n):
            offset[i + 1] = offset[i] + count[i]
        cursor = list(offset[:n])
        childarr = [0] * (n - 1) if n > 1 else []
        for i in range(n):
            p = parents[i]
            if p != -1:
                childarr[cursor[p]] = i
                cursor[p] += 1

        self = cls.__new__(cls)
        self._setup(root, branching, will_mode, strict)
        self.original_degree = {
            i: count[i] + (0 if i == root else 1) for i in range(n)
        }
        self.initial_nodes = set(range(n))
        self._ever = set(range(n))

        c, w = self._c, self._w
        c.reserve(n + max(16, n // 8))
        w.reserve(2 * n + 16)
        for i in range(n):
            c.add_real(i, original_degree=self.original_degree[i])
        c.set_root(c.real(root))
        queue = deque([root])
        while queue:
            nid = queue.popleft()
            parent_slot = c.real(nid)
            kids = childarr[offset[nid] : offset[nid + 1]]
            for kid in kids:
                c.attach(c.real(kid), parent_slot)
                queue.append(kid)
            w.build(nid, kids)
        # cycles unreachable from the root would leave nodes unattached
        for i in range(n):
            if i != root and c.parent[c.real(i)] == NIL:
                raise NotATreeError("parent array contains a cycle")
        c.recorder = self._events.append
        return self

    # ------------------------------------------------------------------
    # checkpointing (the soak service's snapshot surface)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Full engine state between events, checkpoint-codec ready.

        Taken *between* healing rounds (the per-event scratch —
        ``_events``, ``_tally`` — is reset at the top of every round, so
        it never needs to travel).  Everything whose *order* steers
        future heals serializes order-preserving through the core/wills
        snapshots; the engine-level id sets are membership-only and come
        out sorted.  :meth:`restore` inverts this exactly: a restored
        engine replays any event sequence to bit-identical
        :class:`HealReport` streams (asserted in ``tests/test_soak.py``).
        """
        from array import array

        od = self.original_degree
        return {
            "meta": {
                "branching": self.branching,
                "will_mode": self.will_mode,
                "strict": int(self.strict),
                "root_id": self.root_id,
                "rounds": self.rounds,
            },
            "core": self._c.snapshot_state(),
            "wills": self._w.snapshot_state(),
            "arrays": {
                "origdeg_k": array("q", od.keys()),
                "origdeg_v": array("q", od.values()),
                "initial": array("q", sorted(self.initial_nodes)),
                "ever": array("q", sorted(self._ever)),
            },
        }

    @classmethod
    def restore(cls, state: Dict[str, object]) -> "FlatForgivingTree":
        """Rebuild an engine from :meth:`snapshot_state` output."""
        meta = state["meta"]
        arrays = state["arrays"]
        self = cls.__new__(cls)
        self._setup(
            int(meta["root_id"]),
            int(meta["branching"]),
            str(meta["will_mode"]),
            bool(meta["strict"]),
        )
        self.rounds = int(meta["rounds"])
        self._c = FlatCore.restore_state(state["core"])
        self._w = FlatWills.restore_state(state["wills"])
        self.original_degree = dict(
            zip(arrays["origdeg_k"], arrays["origdeg_v"])
        )
        self.initial_nodes = set(arrays["initial"])
        self._ever = set(arrays["ever"])
        self._c.recorder = self._events.append
        return self

    def parent_state(self) -> Dict[str, list]:
        """The current *image graph* as metrics-tracker parent state.

        Shaped for :meth:`DynamicTreeMetrics.from_parents(parents, ids=,
        chords=) <repro.graphs.incremental.DynamicTreeMetrics.from_parents>`:
        a BFS spanning orientation of the healed overlay from the virtual
        root's owner, ids ascending, leftover (heal-cycle) edges as
        chords.  Lets the harness rebuild its diameter tracker next to a
        restored engine without materializing an adjacency dict first.
        """
        c = self._c
        ids = sorted(c._reals)
        index = {nid: i for i, nid in enumerate(ids)}
        adj: Dict[int, List[int]] = {nid: [] for nid in ids}
        for (u, v) in c._image:
            adj[u].append(v)
            adj[v].append(u)
        parents = [NIL] * len(ids)
        seen: Set[int] = set()
        chords: List[Tuple[int, int]] = []
        if ids:
            start = c.owner(c.root) if c.root != NIL else ids[0]
            seen.add(start)
            queue = deque([start])
            while queue:
                cur = queue.popleft()
                for nxt in sorted(adj[cur]):
                    if nxt not in seen:
                        seen.add(nxt)
                        parents[index[nxt]] = index[cur]
                        queue.append(nxt)
            tree = {
                (min(u, v), max(u, v))
                for u in ids
                for v in (ids[parents[index[u]]],)
                if parents[index[u]] != NIL
            }
            chords = sorted(e for e in c._image if e not in tree)
        return {"ids": ids, "parents": parents, "chords": chords}

    def to_object_engine(self) -> "ForgivingTree":
        """Materialize an object :class:`ForgivingTree` in the same state.

        The differential cross-validation oracle: the soak service
        restores a checkpoint, implants this object engine next to the
        flat one, and replays a window of events through both — the two
        report streams must match bit for bit before the soak continues
        (the same parity the ``tests/test_flatcore.py`` wall asserts from
        round zero, applied from an arbitrary mid-campaign state).
        """
        from .forgiving_tree import ForgivingTree

        obj = ForgivingTree.__new__(ForgivingTree)
        obj.branching = self.branching
        obj.will_mode = self.will_mode
        obj.strict = self.strict
        obj.root_id = self.root_id
        obj._events = []
        vt = self.virtual_tree()
        vt.recorder = obj._events.append
        obj._vt = vt
        obj._wills = {
            owner: self._w.to_slot_tree(owner) for owner in self._w._root
        }
        obj.original_degree = dict(self.original_degree)
        obj.initial_nodes = set(self.initial_nodes)
        obj._ever = set(self._ever)
        obj._tally = _Tally()
        obj.rounds = self.rounds
        return obj

    def _build(self, adjacency: Mapping[int, Sequence[int]]) -> None:
        c, w = self._c, self._w
        n = len(adjacency)
        c.reserve(n + max(16, n // 8))
        w.reserve(2 * n + 16)
        for nid in adjacency:
            c.add_real(nid, original_degree=self.original_degree[nid])
        c.set_root(c.real(self.root_id))
        seen = {self.root_id}
        queue = deque([self.root_id])
        while queue:
            nid = queue.popleft()
            parent_slot = c.real(nid)
            kids = sorted(k for k in adjacency[nid] if k not in seen)
            for kid in kids:
                seen.add(kid)
                c.attach(c.real(kid), parent_slot)
                queue.append(kid)
            w.build(nid, kids)
        c.recorder = self._events.append

    # ------------------------------------------------------------------
    # public queries
    # ------------------------------------------------------------------
    @property
    def alive(self) -> AliveView:
        """Ids of surviving nodes (zero-copy live set view)."""
        return self._c.alive_view()

    def __len__(self) -> int:
        return len(self._c)

    def __contains__(self, nid: int) -> bool:
        return nid in self._c

    def adjacency(self) -> Dict[int, Set[int]]:
        """Current healed overlay (image graph) adjacency."""
        return self._c.image_adjacency()

    def edges(self) -> Set[Tuple[int, int]]:
        """Current healed overlay edges (canonical pairs)."""
        return self._c.image_edges()

    def degree(self, nid: int) -> int:
        """Current degree of ``nid`` in the healed overlay — O(1)."""
        return self._c.image_degree(nid)

    def degree_increase(self, nid: int) -> int:
        """Current degree minus original degree (Theorem 1.1 quantity)."""
        return self.degree(nid) - self.original_degree[nid]

    def max_degree_increase(self) -> int:
        """``max_v degree(v, G_t) - degree(v, G_0)`` over survivors — O(1)."""
        return self._c.max_degree_increase()

    def sample_alive(self, rng) -> int:
        """Uniform surviving node id in O(1) (ladder-scale victim picks)."""
        return self._c.sample_alive(rng)

    def state_of(self, nid: int) -> NodeState:
        """Wait/Ready/Deployed snapshot for ``nid`` (Figure 3)."""
        if nid not in self._c:
            raise NodeNotFoundError(nid, "state_of")
        role = self._c.role_of(nid)
        if role == NIL:
            return NodeState(nid, HelperState.WAIT, False, False, 0)
        nkids = self._c.nchild[role]
        if nkids == 1:
            return NodeState(nid, HelperState.READY, True, True, 1)
        return NodeState(nid, HelperState.DEPLOYED, True, False, nkids)

    def will_of(self, nid: int) -> SlotTree:
        """A copy of ``nid``'s current will blueprint (object view)."""
        if not self._w.has(nid):
            raise KeyError(nid)
        return self._w.to_slot_tree(nid)

    def heir_of(self, nid: int) -> Optional[int]:
        """Current heir designated by ``nid`` (None for tree leaves)."""
        if not self._w.has(nid):
            raise KeyError(nid)
        return self._w.heir(nid)

    def virtual_tree(self) -> VirtualTree:
        """An object :class:`VirtualTree` snapshot of the flat structure.

        Unlike the object engine (which returns its live internal tree)
        this materializes a fresh view — same shape, same hids, same sims,
        same image counter.  Read it, do not mutate it.
        """
        c = self._c
        vt = VirtualTree()
        for nid in c._reals:
            vt.add_real(nid)
        nodes: Dict[int, object] = {}
        for slot in c.iter_slots():
            if c.is_real(slot):
                nodes[slot] = vt._reals[c.ident[slot]]
            else:
                helper = VTHelper(c.ident[slot], c.sim[slot])
                vt._helpers[helper.hid] = helper
                vt._role[helper.sim] = helper
                nodes[slot] = helper
        for slot in c.iter_slots():
            for child in c.children(slot):
                vt.attach(nodes[child], nodes[slot])
        if c.root != NIL:
            vt.set_root(nodes[c.root])
        vt._hid_counter = c._hid_counter
        # dict orders match the live engine: hids ascending, reals by age
        vt._helpers = dict(sorted(vt._helpers.items()))
        return vt

    def render(self) -> str:
        """ASCII view of the virtual tree (helpers bracketed)."""
        return self.virtual_tree().render()

    def image_edge_array(self):
        """Current overlay edges as an (m, 2) int64 numpy array.

        Optional-numpy export for vectorized analysis at ladder scale;
        falls back to a flat ``array('q')`` of 2m ints when numpy is
        unavailable.
        """
        flat_pairs = [x for e in self._c._image for x in e]
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy is in the image
            from array import array as _array

            return _array("q", flat_pairs)
        return np.array(flat_pairs, dtype=np.int64).reshape(-1, 2)

    def check(self) -> None:
        """Validate every invariant of the structure; raise on violation.

        Covers everything the object engine's checker covers, plus the
        flat-only bookkeeping (free lists, linked child lists, maintained
        counters) and the object-view builders themselves.
        """
        c, w = self._c, self._w
        c.check(branching=self.branching)
        self.virtual_tree().check(branching=self.branching)
        for nid, slot in c._reals.items():
            if c.inc[slot] != c.imgdeg[slot] - self.original_degree[nid]:
                raise InvariantViolationError(
                    "flat-origdeg", f"node {nid}: inc diverged from original_degree"
                )
        for nid in list(w._root):
            w.check(nid)
            real = c.real(nid)
            stand_ins = {c.owner(child) for child in c.children(real)}
            will_slots = set(w.stand_ins(nid))
            if stand_ins != will_slots:
                raise InvariantViolationError(
                    "will-slots",
                    f"node {nid}: will {sorted(will_slots)} vs VT {sorted(stand_ins)}",
                )
            for child in c.children(real):
                if c.is_helper(child):
                    if self.branching == 2 and c.nchild[child] != 1:
                        raise InvariantViolationError(
                            "I3-ready-heir-slot",
                            f"helper slot under {nid} has {c.nchild[child]} children",
                        )
                else:
                    role = c.role_of(c.ident[child])
                    if (
                        self.branching == 2
                        and role != NIL
                        and not (c.nchild[role] == 1 and c.head[role] == child)
                    ):
                        raise InvariantViolationError(
                            "I4-plain-child-role",
                            f"real child {c.ident[child]} of {nid} holds a non-vacuous role",
                        )

    # ------------------------------------------------------------------
    # the healing entry point
    # ------------------------------------------------------------------
    def delete(self, nid: int) -> HealReport:
        """Adversary deletes ``nid``; heal and report (Algorithm 3.1)."""
        c = self._c
        if not c._reals:
            raise SimulationOverError("all nodes already deleted")
        real = c.real(nid)
        c.begin_event()
        self._events = []
        c.recorder = self._events.append
        self._tally = _Tally()

        was_internal = c.nchild[real] > 0
        if was_internal:
            self._fix_node_deletion(real)
        else:
            self._fix_leaf_deletion(real)
        self.rounds += 1

        added = frozenset(e.key() for e in self._events if isinstance(e, EdgeAdded))
        removed = frozenset(e.key() for e in self._events if isinstance(e, EdgeRemoved))
        report = HealReport(
            deleted=nid,
            was_internal=was_internal,
            edges_added=added - removed,
            edges_removed=removed - added,
            events=tuple(self._events),
            messages_per_node=dict(self._tally.sent),
        )
        if self.strict:
            self.check()
        return report

    # ------------------------------------------------------------------
    # the insertion entry point (churn model, after "The Forgiving Graph")
    # ------------------------------------------------------------------
    def insert(self, nid: int, attach_to: int) -> HealReport:
        """A new node joins, attached to live ``attach_to`` (wave of one)."""
        return self.insert_batch([(nid, attach_to)])

    def insert_batch(self, joiners: Iterable[Tuple[int, int]]) -> HealReport:
        """A wave of nodes joins in one round, amortizing will rebuilds."""
        c, w = self._c, self._w
        wave = normalize_wave(joiners, known_ids=self._ever, alive=c)

        c.begin_event()
        self._events = []
        c.recorder = self._events.append
        self._tally = _Tally()

        groups: Dict[int, List[int]] = {}
        for nid, attach_to in wave:
            groups.setdefault(attach_to, []).append(nid)

        for attach_to, group in groups.items():
            parent = c.real(attach_to)
            for nid in group:
                self._tally.send(nid, 1)  # join request to the attachment point
            if c.nchild[parent] == 0 and self._leaf_will_holder(parent) is not None:
                # The attachment point stops being a tree leaf: it
                # retracts its deposited leaf will (once per wave).
                self._tally.send(attach_to, 1)
            for nid in group:
                self._events.append(NodeInserted(nid, attach_to))
                node = c.add_real(nid, original_degree=1)
                c.attach(node, parent)
                self._ever.add(nid)
                w.build(nid, [])
                self._tally.send(attach_to, 1)  # join ack (parent-link handshake)
                self.original_degree[nid] = 1
                self.original_degree[attach_to] += 1
                c.bump_original_degree(attach_to)
            delta = w.add_batch(attach_to, group)
            # One portion pass for the whole group: the union of touched
            # slots, plus the heir and the SubRT root (their portions
            # embed cross-refs) — each retransmitted exactly once.
            targets = set(delta.touched)
            heir = w.heir(attach_to)
            if heir is not None:
                targets.add(heir)
            targets.add(w.root_sim(attach_to))
            for t in sorted(s for s in targets if w.contains(attach_to, s)):
                self._events.append(WillPortionSent(attach_to, t))
                self._tally.send(attach_to, 1)
            for nid in group:
                # Each joiner is a tree leaf: it deposits its leaf will.
                self._events.append(LeafWillSent(nid, attach_to))
                self._tally.send(nid, 1)
        self.rounds += 1

        added = frozenset(e.key() for e in self._events if isinstance(e, EdgeAdded))
        report = HealReport(
            deleted=-1,
            was_internal=False,
            edges_added=added,
            edges_removed=frozenset(),
            events=tuple(self._events),
            messages_per_node=dict(self._tally.sent),
            inserted=wave[0][0] if len(wave) == 1 else None,
            attached_to=wave[0][1] if len(wave) == 1 else None,
            inserted_batch=tuple(wave),
        )
        if self.strict:
            self.check()
        return report

    def _leaf_will_holder(self, real: int) -> Optional[int]:
        """Where a tree leaf's leaf will is deposited (None: nowhere)."""
        c = self._c
        nid = c.ident[real]
        pos = c.parent[real]
        while pos != NIL and c.owner(pos) == nid:
            pos = c.parent[pos]
        if pos != NIL:
            return c.owner(pos)
        role = c.role_of(nid)
        if role != NIL:
            for child in c.children(role):
                if c.owner(child) != nid:
                    return c.owner(child)
        return None

    # ------------------------------------------------------------------
    # FixNodeDeletion (Algorithm 3.3 + makeRT 3.8 + MakeHelper 3.9)
    # ------------------------------------------------------------------
    def _fix_node_deletion(self, real: int) -> None:
        c, w = self._c, self._w
        v = c.ident[real]
        # Snapshot the will before discarding it (the object engine pops
        # the SlotTree object and keeps reading it; positions free here).
        will_stand_ins = w.stand_ins(v)
        specs = w.internal_specs(v)
        heir = w.heir(v)
        will_root_sim = w.root_sim(v) if will_stand_ins else None
        w.discard(v)

        # A vacuous ready heir directly above v (its only child is v itself)
        # is bookkeeping fiction equivalent to holding no role: drop it.
        role = c.role_of(v)
        if role != NIL and c.nchild[role] == 1 and c.head[role] == real:
            self._record_destroy(role)
            c.splice(role)
            role = NIL

        parent_pos = c.parent[real]

        # --- anchor resolution (makeRT): bypass ready-heir slots ---------
        anchors: Dict[int, int] = {}
        for child in c.children(real):
            stand_in = c.owner(child)
            if c.is_real(child):
                child_role = c.role_of(c.ident[child])
                if child_role != NIL and self.branching == 2:
                    # The binary protocol never reaches this (invariant I4).
                    raise InvariantViolationError(
                        "I4-plain-child-role",
                        f"child {c.ident[child]} of dying {v} holds a role",
                    )
                c.detach(child)
                anchors[stand_in] = child
            elif c.nchild[child] == 1:
                sub = c.head[child]
                c.detach(sub)
                c.detach(child)
                self._record_destroy(child)
                c.destroy_helper(child)  # frees its simulator (= stand_in)
                anchors[stand_in] = sub
                self._tally.send(stand_in, 2)  # bypass brokerage intros
            else:
                # Generalized-b only: a wide helper slot stays in place as
                # the anchor; its simulator remains busy simulating it and
                # is excluded from new duties by ``resolve_sim`` below.
                if self.branching == 2:
                    raise InvariantViolationError(
                        "I3-ready-heir-slot",
                        f"slot helper under dying {v} has {c.nchild[child]} children",
                    )
                c.detach(child)
                anchors[stand_in] = child
        if set(anchors) != set(will_stand_ins):
            raise InvariantViolationError(
                "will-slots",
                f"dying {v}: anchors {sorted(anchors)} vs will {sorted(will_stand_ins)}",
            )

        # Donors must avoid the dying node, the stand-ins with *pending
        # duties* in this deployment (the planned internal simulators and
        # the heir — other stand-ins are fair game), and — when the parent
        # is real — the parent and its stand-ins (a will may never list
        # its owner or a duplicate).
        assert heir is not None
        base_exclude = {v, heir} | {spec.sim for spec in specs}
        collision_set: Set[int] = set()
        if parent_pos != NIL and c.is_real(parent_pos):
            parent_nid = c.ident[parent_pos]
            collision_set.add(parent_nid)
            if w.has(parent_nid):
                collision_set |= set(w.stand_ins(parent_nid)) - {v}
            base_exclude |= collision_set

        # Helpers that must survive donor stealing while this repair runs.
        pinned = tuple(
            x
            for x in (parent_pos, role, *anchors.values())
            if x != NIL and c.is_helper(x)
        )

        # Bypassing slots may have destroyed v's own role (generalized-b:
        # a donor grant can make v simulate one of its own slot helpers).
        if role != NIL and c.role_of(v) == NIL:
            role = NIL
        # A wide slot still simulated by the dying node must move first.
        if (
            self.branching > 2
            and role != NIL
            and any(role == a for a in anchors.values())
        ):
            try:
                donor: Optional[int] = self._find_donor(
                    real, exclude=set(base_exclude), pinned=pinned
                )
            except InvariantViolationError as exc:
                if exc.invariant != "donor" or c.nchild[role] != 1:
                    raise
                # Simulator exhaustion: a one-child anchor helper can be
                # dropped in place, its child becoming the anchor.
                sub = c.head[role]
                c.detach(sub)
                for s, a in list(anchors.items()):
                    if a == role:
                        anchors[s] = sub
                self._record_destroy(role)
                c.destroy_helper(role)
                donor = None
            if donor is not None:
                old = c.transfer_role(role, donor)
                self._events.append(HelperTransferred(c.ident[role], old, donor))
                self._tally.send(donor, c.nchild[role] + 1)
            role = NIL

        # --- duty-sim resolution ------------------------------------------
        # The will plans each helper position's simulator.  In the binary
        # protocol every planned stand-in is guaranteed free; the
        # generalized tree substitutes a donor at deployment time when a
        # planned stand-in is still simulating elsewhere.
        used_donors: Set[int] = set()

        def steal_from_anchors(extra: Set[int] = frozenset()) -> Optional[int]:
            """Last-resort simulator source: a one-child helper anchor can
            be dropped in place (its child becomes the anchor), freeing its
            simulator.  Keeps the anchors map coherent."""
            for s in sorted(anchors):
                a = anchors[s]
                if (
                    c.is_helper(a)
                    and c.nchild[a] == 1
                    and c.sim[a] not in base_exclude
                    and c.sim[a] not in used_donors
                    and c.sim[a] not in extra
                ):
                    sub = c.head[a]
                    c.detach(sub)
                    anchors[s] = sub
                    freed = c.sim[a]
                    self._record_destroy(a)
                    c.destroy_helper(a)
                    self._tally.send(freed, 2)
                    return freed
            return None

        def find_duty_donor() -> int:
            try:
                return self._find_donor(
                    real, exclude=base_exclude | used_donors, pinned=pinned
                )
            except InvariantViolationError as exc:
                if exc.invariant != "donor":
                    raise
                stolen = steal_from_anchors()
                if stolen is None:
                    raise
                return stolen

        def rebind_parent() -> None:
            nonlocal parent_pos, pinned
            parent_pos = c.parent[real]
            pinned = tuple(
                x
                for x in (parent_pos, role, *anchors.values())
                if x != NIL and c.is_helper(x)
            )

        def free_busy_sim(planned: int) -> bool:
            """Endgame fallback: ``planned`` is stuck simulating a
            redundant one-child helper — bypass that helper so the
            planned simulator can take up its own duty (see the object
            engine for the full why)."""
            busy = c.role_of(planned)
            if busy == NIL or c.nchild[busy] != 1:
                return False
            if busy == parent_pos:
                if self._splice_helper(busy) is None:
                    return False
                rebind_parent()
                return True
            for s in sorted(anchors):
                if anchors[s] == busy:
                    sub = c.head[busy]
                    c.detach(sub)
                    anchors[s] = sub
                    self._record_destroy(busy)
                    c.destroy_helper(busy)
                    self._tally.send(planned, 2)
                    return True
            if busy in pinned:
                return False
            return self._splice_helper(busy) is not None

        def resolve_sim(planned: int) -> int:
            if (
                c.role_of(planned) == NIL
                and planned not in used_donors
                and planned not in collision_set
            ):
                return planned
            if self.branching == 2:
                raise InvariantViolationError(
                    "I4-plain-child-role", f"planned sim {planned} is busy"
                )
            if (
                planned not in used_donors
                and planned not in collision_set
                and free_busy_sim(planned)
            ):
                return planned
            donor = find_duty_donor()
            used_donors.add(donor)
            self._tally.send(planned, 1)  # redirects its duty to the donor
            return donor

        # --- build and wire the SubRT helpers (GenerateSubRT shape) ------
        new_helpers: Dict[int, int] = {}
        for spec in specs:
            sim = resolve_sim(spec.sim)
            helper = c.new_helper(sim)
            new_helpers[spec.sim] = helper  # keyed by *planned* sim
            self._events.append(HelperCreated(sim, c.ident[helper], ready_heir=False))
            self._tally.send(sim, 1)  # claims its role to neighbors
        for spec in specs:
            helper = new_helpers[spec.sim]
            for ref in spec.children:
                kind, key = ref
                node = anchors[key] if kind == "leaf" else new_helpers[key]
                c.attach(node, helper)

        def subrt_root() -> int:
            # Late-bound on purpose: donor stealing (steal_from_anchors)
            # may still replace a one-child anchor by its child between
            # here and the top attachment.
            return (
                new_helpers[will_root_sim]
                if new_helpers
                else anchors[will_stand_ins[0]]
            )

        # --- top attachment -----------------------------------------------
        if role != NIL:
            # v had helper duties: its heir inherits them, and the root of
            # SubRT(v) takes v's place below v's parent (MakeWill lines 9-12).
            role_exclusions = self._donor_exclusions(role)
            inheritor: Optional[int] = None
            if (
                c.role_of(heir) == NIL
                and heir not in used_donors
                and heir not in role_exclusions
            ):
                inheritor = heir
            elif (
                self.branching > 2
                and heir not in used_donors
                and heir not in role_exclusions
                and free_busy_sim(heir)
            ):
                inheritor = heir
            else:
                if self.branching == 2:
                    raise InvariantViolationError(
                        "I4-plain-child-role", f"heir {heir} cannot inherit from {v}"
                    )
                try:
                    inheritor = self._find_donor(
                        real,
                        exclude=base_exclude | used_donors | role_exclusions,
                        pinned=pinned,
                    )
                except InvariantViolationError as exc:
                    if exc.invariant != "donor":
                        raise
                    inheritor = steal_from_anchors(extra=role_exclusions)
                    # Simulator exhaustion (endgame): a one-child role can
                    # simply be short-circuited instead of inherited.
                    if inheritor is None:
                        if (
                            c.nchild[role] == 1
                            and self._splice_helper(role) is not None
                        ):
                            role = NIL
                        else:
                            raise
                if inheritor is not None:
                    used_donors.add(inheritor)
        if role != NIL:
            assert inheritor is not None
            old_sim = c.transfer_role(role, inheritor)
            self._events.append(HelperTransferred(c.ident[role], old_sim, inheritor))
            self._tally.send(inheritor, c.nchild[role] + 1)  # introduces itself
            rv = subrt_root()
            if parent_pos == NIL:
                # Generalized-b only: a donor-granted role on the root.
                if self.branching == 2:
                    raise InvariantViolationError("root-role", "root held a helper role")
                c.set_root(NIL)
                c.set_root(rv)
            else:
                if c.is_real(parent_pos) and self.branching == 2:
                    raise InvariantViolationError(
                        "I4-parent-kind", f"dying {v} holds a role but has a real parent"
                    )
                c.replace_child(parent_pos, real, rv)
                if c.is_real(parent_pos):
                    self._replace_slot_standin(
                        parent_pos, v, rv, exclude=base_exclude | used_donors
                    )
            # If the inherited helper occupies a slot in a real parent's
            # will, the stand-in there must follow the new simulator.
            self._notify_standin_change(role, v, inheritor)
        if role == NIL:
            # v had no helper duties: the heir interposes a fresh one-child
            # helper — the ready heir (MakeWill lines 13-16).
            try:
                ready_sim: Optional[int] = resolve_sim(heir)
            except InvariantViolationError as exc:
                if exc.invariant != "donor" or self.branching == 2:
                    raise
                # Simulator exhaustion (endgame): the ready heir is a
                # structural optimization, not a necessity — skip it and
                # attach the SubRT root directly.
                ready_sim = None
            rv = subrt_root()
            if ready_sim is None:
                if parent_pos == NIL:
                    c.set_root(NIL)
                    c.set_root(rv)
                else:
                    c.replace_child(parent_pos, real, rv)
                    if c.is_real(parent_pos):
                        self._replace_slot_standin(
                            parent_pos, v, rv, exclude=base_exclude | used_donors
                        )
                    else:
                        self._tally.send(c.owner(parent_pos), 1)
            else:
                ready = c.new_helper(ready_sim)
                self._events.append(
                    HelperCreated(ready_sim, c.ident[ready], ready_heir=True)
                )
                self._tally.send(ready_sim, 2)
                if parent_pos == NIL:
                    # v was the root: the ready heir becomes the virtual root.
                    c.set_root(NIL)  # real is still registered; re-root below
                    c.attach(rv, ready)
                    c.set_root(ready)
                else:
                    c.replace_child(parent_pos, real, ready)
                    c.attach(rv, ready)
                # The parent must treat the heir as its child (Algorithm 3.3
                # lines 3-6: "hparent(h) replaces v by h in SubRT(...)").
                if parent_pos != NIL and c.is_real(parent_pos):
                    self._replace_slot_standin(
                        parent_pos, v, ready, exclude=base_exclude | used_donors
                    )
                elif parent_pos != NIL:
                    # Helper parent: its simulator's hchildren field changes.
                    self._tally.send(c.owner(parent_pos), 1)

        c.remove_real(real)
        self._refresh_leaf_wills(anchors)

    # ------------------------------------------------------------------
    # FixLeafDeletion (Algorithm 3.4 + MakeLeafWill 3.7)
    # ------------------------------------------------------------------
    def _fix_leaf_deletion(self, real: int) -> None:
        c, w = self._c, self._w
        v = c.ident[real]
        if w.has(v):
            w.discard(v)
        role = c.role_of(v)
        parent_pos = c.parent[real]

        if parent_pos == NIL:
            # v is the virtual root and childless: the network empties.
            if role != NIL:
                raise InvariantViolationError("root-role", "childless root with a role")
            c.remove_real(real)
            return

        c.detach(real)

        if role == NIL:
            self._absorb_child_loss(parent_pos, lost_stand_in=v)
        elif role == parent_pos:
            # v's own helper sits directly above it (Algorithm 3.7's special
            # case).  Image-equivalent resolution: short-circuit it.
            remaining = c.nchild[role]
            if remaining == 0:
                # vacuous ready heir: vanish and cascade the slot loss.
                grand = c.detach(role)
                self._record_destroy(role)
                c.destroy_helper(role)
                if grand != NIL:
                    self._absorb_child_loss(grand, lost_stand_in=v)
            else:
                spliced = None
                if remaining == 1:
                    spliced = self._splice_helper(role)
                if spliced is None:
                    # branching > 2 only: the helper keeps its children but
                    # its simulator died; find a donor to take it over.
                    donor = self._find_donor(
                        role,
                        exclude={v} | self._donor_exclusions(role),
                        pinned=(role, parent_pos),
                    )
                    old = c.transfer_role(role, donor)
                    self._events.append(HelperTransferred(c.ident[role], old, donor))
                    self._tally.send(donor, c.nchild[role] + 1)
                    self._notify_standin_change(role, old, donor)
        else:
            # Non-adjacent helper duties: the leaf will (Algorithm 3.7) hands
            # them to the parent, who short-circuits its own helper first
            # (Algorithm 3.4 lines 7-16).
            freed: Optional[int] = None
            cascade_to = NIL
            cascade_standin = 0
            if c.is_real(parent_pos):
                if self.branching == 2:
                    raise InvariantViolationError(
                        "I4-leaf-parent",
                        f"leaf {v} holds a non-adjacent role under a real parent",
                    )
                # Generalized-b: a busy plain child died; the parent's will
                # just loses the slot and the role finds a donor below.
                self._absorb_child_loss(parent_pos, lost_stand_in=v)
            else:
                remaining = c.nchild[parent_pos]
                if remaining == 0:
                    cascade_to = c.detach(parent_pos)
                    freed = c.sim[parent_pos]
                    cascade_standin = freed
                    self._record_destroy(parent_pos)
                    c.destroy_helper(parent_pos)
                    if cascade_to != NIL and c.is_real(cascade_to):
                        # A real grandparent's slot loss is pure will
                        # bookkeeping (no splicing), so absorb it now (see
                        # the object engine for the endgame why).
                        self._absorb_child_loss(
                            cascade_to, lost_stand_in=cascade_standin
                        )
                        cascade_to = NIL
                elif remaining == 1:
                    # bypass(z): short-circuit the parent's helper, freeing
                    # its simulator to inherit the leaf will.
                    if self._splice_helper(parent_pos) is not None:
                        freed = c.sim[parent_pos]
            # Does anything real remain below the role?  (b > 2 endgame:
            # the dying leaf may have been the only real node under a
            # chain of helpers hanging off the role — the remaining
            # subtree routes nothing and vanishes instead of being
            # inherited; the role's own slot loss cascades upward.)
            doomed: List[int] = []
            stack: List[int] = [role]
            while stack:
                node = stack.pop()
                if c.is_real(node):
                    doomed.clear()
                    break
                doomed.append(node)  # parents precede their children
                stack.extend(c.children(node))
            if doomed:
                sim = c.sim[role]
                grand = c.detach(role)
                for helper in reversed(doomed):  # children first
                    if c.parent[helper] != NIL:
                        c.detach(helper)
                    self._record_destroy(helper)
                    c.destroy_helper(helper)
                c.remove_real(real)
                if grand != NIL:
                    self._absorb_child_loss(grand, lost_stand_in=sim)
                return
            if (
                freed is None
                or freed == v
                or c.role_of(freed) != NIL
                or self._standin_collision(role, freed)
            ):
                freed = self._find_donor(
                    role,
                    exclude={v} | self._donor_exclusions(role),
                    pinned=(role, parent_pos),
                )
            old = c.transfer_role(role, freed)
            self._events.append(HelperTransferred(c.ident[role], old, freed))
            self._tally.send(freed, c.nchild[role] + 1)
            self._notify_standin_change(role, old, freed)
            # Cascade only after the inheritance settled: the cascade may
            # legitimately splice the very helper just inherited, and the
            # donor search may already have absorbed the loss by stealing
            # (splicing) the cascade target.
            if (
                not c.is_real(parent_pos)
                and cascade_to != NIL
                and (c.is_real(cascade_to) or c.helper_alive(cascade_to))
            ):
                self._absorb_child_loss(cascade_to, lost_stand_in=cascade_standin)

        c.remove_real(real)

    # ------------------------------------------------------------------
    # cascading slot loss ("short-circuit" of redundant virtual nodes)
    # ------------------------------------------------------------------
    def _absorb_child_loss(self, node: int, lost_stand_in: int) -> None:
        """``node`` lost one child slot entirely (see the object engine)."""
        c = self._c
        if c.is_real(node):
            self._will_remove(c.ident[node], lost_stand_in)
            return
        remaining = c.nchild[node]
        if remaining == 0:
            grand = c.detach(node)
            sim = c.sim[node]
            self._record_destroy(node)
            c.destroy_helper(node)
            if grand != NIL:
                self._absorb_child_loss(grand, lost_stand_in=sim)
        elif remaining == 1:
            # Helpers never *gain* children, so a helper at one child was at
            # two: it is a redundant virtual node — short-circuit it.
            self._splice_helper(node)
        # else: still >= 2 children: nothing to do.

    # ------------------------------------------------------------------
    # will maintenance
    # ------------------------------------------------------------------
    def _will_remove(self, p: int, stand_in: int) -> None:
        if not self._w.has(p):
            raise KeyError(p)
        if self.will_mode == WILL_SPLICE:
            delta = self._w.remove(p, stand_in)
            for t in delta.touched:
                self._events.append(WillPortionSent(p, t))
                self._tally.send(p, 1)
        else:
            self._rebuild_will(p)
        if self._w.empty(p) and self._c.role_of(p) != NIL:
            # p just became a tree leaf with helper duties: deposit LeafWill.
            self._send_leaf_will(p)

    def _will_replace(self, p: int, old: int, new: int) -> None:
        if not self._w.has(p):
            raise KeyError(p)
        if self.will_mode == WILL_SPLICE:
            delta = self._w.replace(p, old, new)
            for t in delta.touched:
                self._events.append(WillPortionSent(p, t))
                self._tally.send(p, 1)
        else:
            self._rebuild_will(p)

    def _rebuild_will(self, p: int) -> None:
        """Literal Algorithm 3.4 behavior: regenerate and retransmit all."""
        c = self._c
        real = c.real(p)
        stand_ins = [c.owner(child) for child in c.children(real)]
        self._w.discard(p)
        self._w.build(p, stand_ins)
        for s in stand_ins:
            self._events.append(WillPortionSent(p, s))
            self._tally.send(p, 1)

    def _refresh_leaf_wills(self, anchors: Mapping[int, int]) -> None:
        """Children that are tree leaves re-deposit their leaf wills
        (Algorithms 3.3/3.4, trailing loop)."""
        c = self._c
        for stand_in in anchors:
            if stand_in not in c:
                continue
            real = c.real(stand_in)
            if c.nchild[real] == 0 and c.role_of(stand_in) != NIL:
                self._send_leaf_will(stand_in)

    def _send_leaf_will(self, nid: int) -> None:
        c = self._c
        parent = c.parent[c.real(nid)]
        if parent == NIL:
            return
        recipient = c.owner(parent)
        if recipient != nid:
            self._events.append(LeafWillSent(nid, recipient))
            self._tally.send(nid, 1)

    def _replace_slot_standin(
        self, parent: int, old: int, slot_node: int, exclude: Set[int]
    ) -> None:
        """Rename a slot of ``parent``'s will from ``old`` to the owner of
        its new occupant, resolving name collisions at use time."""
        c, w = self._c, self._w
        parent_nid = c.ident[parent]
        if not w.has(parent_nid):
            return
        new = c.owner(slot_node)
        if new == old:
            return
        collides = new == parent_nid or w.contains(parent_nid, new)
        if collides:
            if self.branching == 2:
                raise InvariantViolationError(
                    "will-slots", f"stand-in collision at {parent_nid}: {new}"
                )
            if c.is_helper(slot_node) and c.sim[slot_node] == new:
                donor = self._find_donor(parent, exclude=exclude | {new, parent_nid})
                old_o = c.transfer_role(slot_node, donor)
                self._events.append(HelperTransferred(c.ident[slot_node], old_o, donor))
                self._tally.send(donor, c.nchild[slot_node] + 1)
                new = donor
            else:
                other = c.role_of(new)
                if other == NIL or c.parent[other] != parent:
                    raise InvariantViolationError(
                        "will-slots",
                        f"unresolvable stand-in collision at {parent_nid}: {new}",
                    )
                donor = self._find_donor(parent, exclude=exclude | {new, parent_nid})
                old_o = c.transfer_role(other, donor)
                self._events.append(HelperTransferred(c.ident[other], old_o, donor))
                self._tally.send(donor, c.nchild[other] + 1)
                self._will_replace(parent_nid, new, donor)
        self._will_replace(parent_nid, old, new)

    def _donor_exclusions(self, helper: int) -> Set[int]:
        """Stand-ins a donor for ``helper`` must avoid (see object engine)."""
        c, w = self._c, self._w
        parent = c.parent[helper]
        if parent != NIL and c.is_real(parent):
            parent_nid = c.ident[parent]
            out = {parent_nid}
            if w.has(parent_nid):
                out |= set(w.stand_ins(parent_nid))
            return out
        return set()

    def _splice_helper(self, helper: int) -> Optional[int]:
        """Short-circuit a one-child helper with full will bookkeeping.

        Returns the moved-up child slot, or ``None`` when the splice must
        be skipped (generalized-b stand-in collision — the redundant
        helper is then simply kept, which is always legal).
        """
        c, w = self._c, self._w
        moved = c.head[helper]
        parent = c.parent[helper]
        sim = c.sim[helper]
        will_fix: Optional[Tuple[int, int, int]] = None
        if parent != NIL and c.is_real(parent):
            parent_nid = c.ident[parent]
            if w.has(parent_nid) and w.contains(parent_nid, sim):
                new_standin = c.owner(moved)
                if new_standin != sim and (
                    w.contains(parent_nid, new_standin) or new_standin == parent_nid
                ):
                    return None  # collision: keep the redundant helper
                if new_standin != sim:
                    will_fix = (parent_nid, sim, new_standin)
        self._record_destroy(helper)
        c.splice(helper)
        self._tally.send(sim, 2)
        if will_fix is not None:
            self._will_replace(*will_fix)
        return moved

    def _standin_collision(self, helper: int, candidate: int) -> bool:
        """Would renaming ``helper``'s will-slot stand-in to ``candidate``
        collide — with a sibling stand-in, or with the will's own owner?"""
        c, w = self._c, self._w
        parent = c.parent[helper]
        if parent == NIL or not c.is_real(parent):
            return False
        parent_nid = c.ident[parent]
        if candidate == parent_nid:
            return True  # a will may never list its owner as a stand-in
        if not w.has(parent_nid):
            return False
        return w.contains(parent_nid, candidate) and candidate != c.sim[helper]

    def _notify_standin_change(self, helper: int, old: int, new: int) -> None:
        """A helper's simulator changed: if the helper occupies a slot of a
        real parent's will, the will's stand-in must follow."""
        c = self._c
        parent = c.parent[helper]
        if parent != NIL and c.is_real(parent):
            parent_nid = c.ident[parent]
            if not self._w.has(parent_nid):
                raise KeyError(parent_nid)
            if self._w.contains(parent_nid, old):
                self._will_replace(parent_nid, old, new)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def _find_donor(
        self,
        start: int,
        exclude: Set[int],
        pinned: Tuple[int, ...] = (),
    ) -> int:
        """A live real node able to take on helper duties (object-engine
        search order: local BFS, global id-ascending scan, hid-ascending
        steal)."""
        c = self._c

        queue: deque = deque([start])
        seen: Set[int] = set()
        while queue:
            node = queue.popleft()
            if node in seen:
                continue
            seen.add(node)
            if (
                c.is_real(node)
                and c.ident[node] not in exclude
                and c.role[node] == NIL
            ):
                return c.ident[node]
            if c.parent[node] != NIL:
                queue.append(c.parent[node])
            queue.extend(c.children(node))

        for nid in sorted(c._reals):
            if nid not in exclude and c.role_of(nid) == NIL:
                return nid

        for helper in c.helper_slots():
            if c.nchild[helper] != 1 or c.sim[helper] in exclude:
                continue
            if helper in pinned:
                continue  # load-bearing for the ongoing repair
            parent = c.parent[helper]
            if parent != NIL and c.is_real(parent):
                if not self._w.has(c.ident[parent]):
                    continue  # slot of a node mid-deletion: leave it alone
            sim = c.sim[helper]
            if self._splice_helper(helper) is not None:
                return sim

        raise InvariantViolationError("donor", "no role-free node available")

    def _record_destroy(self, helper: int) -> None:
        self._events.append(
            HelperDestroyed(self._c.sim[helper], self._c.ident[helper])
        )
