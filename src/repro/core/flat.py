"""Flat struct-of-arrays storage for the Forgiving Tree hot path.

The object core (:mod:`repro.core.virtual_tree`, :mod:`repro.core.slot_tree`)
keeps one Python object per virtual-tree node and per will position.  That is
the right shape for reading the paper but the wrong shape for sustained-churn
campaigns: at n = 10^6 the object graph alone costs gigabytes and every hot
query (``alive``, ``max_degree_increase``, victim sampling) is O(n) per event,
which is where BENCH_churn's superlinear per-event cost came from.

This module stores the same two structures in preallocated parallel arrays
(``array('q')`` — C longs, no per-node objects):

``FlatCore`` — the virtual tree::

    slot:   0    1    2    ...          (int handle, recycled via free list)
    kind  [ R  | R  | H  | ... ]        free / real / helper
    ident [ nid| nid| hid| ... ]        real id or helper id
    sim   [ -1 | -1 | nid| ... ]        simulator (helpers only)
    parent[ .. | .. | .. | ... ]        parent slot or -1
    head/tail/next/prev/nchild          intrusive doubly-linked child lists
    role  [ .. | -1 | -- | ... ]        helper slot simulated by this real
    imgdeg/inc                          image degree & degree increase

``FlatWills`` — every node's will (SubRT blueprint) in one shared arena::

    pos:    0     1     2    ...        (int handle, per-arena free list)
    wkind [ L   | I   | L  | ... ]      free / leaf / internal
    wval  [ s_i | sim | s_i| ... ]      stand-in (leaf) or simulator (internal)
    wparent/whead/wtail/wnext/wprev/wnchild

Three contracts make the flat layer a drop-in replacement:

* **ids are never reused** at the API boundary: slots recycle, node ids do
  not (``FlatForgivingTree`` keeps the ``_ever`` set exactly like the object
  engine).  Virtual-tree slots freed during an event enter a *limbo* list
  and only rejoin the free list when the next event starts, so within one
  healing round slot equality is object identity — the engine's ``is``
  checks translate to ``==`` on ints without aliasing.
* **orderings are preserved**: child lists are doubly linked (insert-before
  and positional replace are O(1)), helper iteration is hid-ascending, and
  every will operation touches positions in the same order as the object
  :class:`~repro.core.slot_tree.SlotTree` — so event logs, message tallies
  and donor choices are bit-identical to the reference implementation
  (asserted by the object-vs-flat parity wall in ``tests/test_flatcore.py``).
* **hot queries are O(1)**: ``alive`` is a :class:`AliveView` (a live
  ``collections.abc.Set`` over the id map — no per-event set copy),
  ``max_degree_increase`` reads a maintained degree-increase multiset,
  uniform victim sampling indexes a compact alive list, and per-node image
  degree is a maintained counter instead of an O(m) edge scan.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Set as AbstractSet
from array import array
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .errors import (
    DuplicateNodeError,
    EmptyStructureError,
    InvariantViolationError,
    NodeNotFoundError,
)
from .events import EdgeAdded, EdgeRemoved, edge_key
from .slot_tree import (
    AddBatchDelta,
    AddDelta,
    InternalSpec,
    PosRef,
    RemovalDelta,
    ReplaceDelta,
    SlotTree,
    _Internal,
    _Leaf,
    _split_even,
)

NIL = -1

#: The 12 parallel columns of :class:`FlatCore`, in serialization order.
CORE_COLUMNS = (
    "kind", "ident", "sim", "parent", "head", "tail",
    "next", "prev", "nchild", "role", "imgdeg", "inc",
)

#: The 8 parallel columns of :class:`FlatWills`, in serialization order.
WILL_COLUMNS = (
    "wkind", "wval", "wparent", "whead",
    "wtail", "wnext", "wprev", "wnchild",
)

#: Virtual-tree slot kinds.
KIND_FREE = 0
KIND_REAL = 1
KIND_HELPER = 2

#: Will-arena position kinds.
W_FREE = 0
W_LEAF = 1
W_INTERNAL = 2


class AliveView(AbstractSet):
    """Zero-copy live view of the surviving node ids.

    The object engine's ``alive`` property returns ``set(self._reals)`` — an
    O(n) copy per call, paid on every churn event by the harness's liveness
    check and the adversary's victim pick.  This view supports the same set
    algebra (``==``, ``in``, ``<=``, ``|``, ``-``, ``sorted``) through
    :class:`collections.abc.Set` without materializing anything; binary
    operations return plain ``set`` objects.
    """

    __slots__ = ("_reals",)

    def __init__(self, reals: Dict[int, int]):
        self._reals = reals

    def __contains__(self, nid: object) -> bool:
        return nid in self._reals

    def __iter__(self) -> Iterator[int]:
        return iter(self._reals)

    def __len__(self) -> int:
        return len(self._reals)

    @classmethod
    def _from_iterable(cls, it) -> set:
        return set(it)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AliveView({set(self._reals)!r})"


class FlatCore:
    """The virtual tree on parallel arrays (see module docstring).

    Handles are integer *slots*; ``NIL`` (= -1) plays ``None``.  The public
    mutation API mirrors :class:`~repro.core.virtual_tree.VirtualTree`
    operation for operation, including the order of emitted image-edge
    events, so the engine port stays a line-by-line translation.
    """

    def __init__(self, recorder: Optional[Callable[[object], None]] = None):
        self.kind = array("q")
        self.ident = array("q")  # nid for reals, hid for helpers
        self.sim = array("q")  # helpers: simulator nid; reals: NIL
        self.parent = array("q")
        self.head = array("q")  # first child slot
        self.tail = array("q")  # last child slot
        self.next = array("q")  # next sibling slot
        self.prev = array("q")  # previous sibling slot
        self.nchild = array("q")
        self.role = array("q")  # reals: slot of the helper they simulate
        self.imgdeg = array("q")  # reals: degree in the image graph
        self.inc = array("q")  # reals: imgdeg - original degree

        self._reals: Dict[int, int] = {}  # nid -> slot
        self._helpers: Dict[int, int] = {}  # hid -> slot (hid-ascending order)
        self._image: Dict[Tuple[int, int], int] = {}  # canonical edge -> mult
        self._root = NIL
        self._hid_counter = 0
        self.recorder = recorder

        self._free: List[int] = []
        self._limbo: List[int] = []  # freed this event; recycled next event

        # Degree-increase multiset over alive reals: value -> count, plus a
        # lazily-repaired max (values are bounded by branching + 1, so the
        # repair scan is O(#distinct values) and rare).
        self._inc_count: Dict[int, int] = {}
        self._inc_max = 0
        self._inc_dirty = False

        # Compact alive list for O(1) uniform sampling (swap-pop removal).
        self._alive_list: List[int] = []
        self._alive_idx: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # arena management
    # ------------------------------------------------------------------
    def reserve(self, capacity: int) -> None:
        """Preallocate slot capacity (bulk zero-extend, for big builds)."""
        extra = capacity - len(self.kind)
        if extra <= 0:
            return
        zeros = array("q", bytes(8 * extra))
        for arr in (
            self.kind, self.ident, self.sim, self.parent, self.head,
            self.tail, self.next, self.prev, self.nchild, self.role,
            self.imgdeg, self.inc,
        ):
            arr.extend(zeros)
        # Newly minted slots are free, highest last so low slots pop first.
        self._free.extend(range(capacity - 1, len(self.kind) - extra - 1, -1))

    def begin_event(self) -> None:
        """Start a new healing round: recycle the previous round's slots.

        Quarantining frees for one event preserves within-event identity
        semantics (the engine compares slot handles taken at different
        points of one repair).
        """
        if self._limbo:
            self._free.extend(self._limbo)
            self._limbo.clear()

    def _alloc(self) -> int:
        if self._free:
            return self._free.pop()
        slot = len(self.kind)
        for arr in (
            self.kind, self.ident, self.sim, self.parent, self.head,
            self.tail, self.next, self.prev, self.nchild, self.role,
            self.imgdeg, self.inc,
        ):
            arr.append(0)
        return slot

    def _release(self, slot: int) -> None:
        self.kind[slot] = KIND_FREE
        self._limbo.append(slot)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def root(self) -> int:
        return self._root

    def alive_view(self) -> AliveView:
        return AliveView(self._reals)

    def __len__(self) -> int:
        return len(self._reals)

    def __contains__(self, nid: int) -> bool:
        return nid in self._reals

    def real(self, nid: int) -> int:
        try:
            return self._reals[nid]
        except KeyError:
            raise NodeNotFoundError(nid, "virtual tree") from None

    def is_real(self, slot: int) -> bool:
        return self.kind[slot] == KIND_REAL

    def is_helper(self, slot: int) -> bool:
        return self.kind[slot] == KIND_HELPER

    def owner(self, slot: int) -> int:
        """The real node answering for ``slot`` in the image graph."""
        return self.ident[slot] if self.kind[slot] == KIND_REAL else self.sim[slot]

    def role_of(self, nid: int) -> int:
        """Slot of the helper ``nid`` simulates, or NIL."""
        return self.role[self._reals[nid]]

    def helper_slots(self) -> List[int]:
        """All helper slots, hid-ascending (dict order: hids are monotone)."""
        return list(self._helpers.values())

    def helper_alive(self, slot: int) -> bool:
        return (
            self.kind[slot] == KIND_HELPER
            and self._helpers.get(self.ident[slot]) == slot
        )

    def children(self, slot: int) -> List[int]:
        """Child slots in order (a fresh list — safe to mutate under it)."""
        out: List[int] = []
        nxt = self.next
        c = self.head[slot]
        while c != NIL:
            out.append(c)
            c = nxt[c]
        return out

    def sample_alive(self, rng) -> int:
        """Uniform surviving node in O(1) (the ladder's victim picker)."""
        if not self._alive_list:
            raise EmptyStructureError("sample from an empty network")
        return self._alive_list[rng.randrange(len(self._alive_list))]

    # ------------------------------------------------------------------
    # image graph
    # ------------------------------------------------------------------
    def image_adjacency(self) -> Dict[int, Set[int]]:
        adj: Dict[int, Set[int]] = {nid: set() for nid in self._reals}
        for (u, v) in self._image:
            adj[u].add(v)
            adj[v].add(u)
        return adj

    def image_edges(self) -> Set[Tuple[int, int]]:
        return set(self._image)

    def image_degree(self, nid: int) -> int:
        if nid not in self._reals:
            raise NodeNotFoundError(nid, "image degree")
        return self.imgdeg[self._reals[nid]]

    def degree_increase(self, nid: int) -> int:
        return self.inc[self._reals[nid]]

    def max_degree_increase(self) -> int:
        """Max degree increase over survivors, O(1) amortized."""
        if not self._inc_count:
            return 0
        if self._inc_dirty:
            self._inc_max = max(self._inc_count)
            self._inc_dirty = False
        return self._inc_max

    def _inc_shift(self, slot: int, delta: int) -> None:
        """Move a live real's degree-increase value in the multiset."""
        old = self.inc[slot]
        new = old + delta
        self.inc[slot] = new
        self._inc_leave(old)
        self._inc_enter(new)

    def _inc_enter(self, val: int) -> None:
        count = self._inc_count
        if val in count:
            count[val] += 1
        elif count:
            count[val] = 1
            if not self._inc_dirty and val > self._inc_max:
                self._inc_max = val
        else:
            count[val] = 1
            self._inc_max = val
            self._inc_dirty = False

    def _inc_leave(self, val: int) -> None:
        count = self._inc_count
        c = count[val] - 1
        if c:
            count[val] = c
        else:
            del count[val]
            if val == self._inc_max:
                self._inc_dirty = True

    def bump_original_degree(self, nid: int) -> None:
        """The ideal-graph baseline of ``nid`` grew by one edge."""
        self._inc_shift(self._reals[nid], -1)

    def _image_add(self, a: int, b: int) -> None:
        u = self.ident[a] if self.kind[a] == KIND_REAL else self.sim[a]
        v = self.ident[b] if self.kind[b] == KIND_REAL else self.sim[b]
        if u == v:
            return
        key = (u, v) if u <= v else (v, u)
        mult = self._image.get(key, 0) + 1
        self._image[key] = mult
        if mult == 1:
            su, sv = self._reals[u], self._reals[v]
            self.imgdeg[su] += 1
            self.imgdeg[sv] += 1
            self._inc_shift(su, 1)
            self._inc_shift(sv, 1)
            if self.recorder is not None:
                self.recorder(EdgeAdded(*key))

    def _image_remove(self, a: int, b: int) -> None:
        u = self.ident[a] if self.kind[a] == KIND_REAL else self.sim[a]
        v = self.ident[b] if self.kind[b] == KIND_REAL else self.sim[b]
        if u == v:
            return
        key = (u, v) if u <= v else (v, u)
        mult = self._image.get(key, 0)
        if mult <= 0:
            raise InvariantViolationError("image-refcount", f"edge {key} not present")
        if mult == 1:
            del self._image[key]
            su, sv = self._reals[u], self._reals[v]
            self.imgdeg[su] -= 1
            self.imgdeg[sv] -= 1
            self._inc_shift(su, -1)
            self._inc_shift(sv, -1)
            if self.recorder is not None:
                self.recorder(EdgeRemoved(*key))
        else:
            self._image[key] = mult - 1

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_real(self, nid: int, original_degree: int = 0) -> int:
        if nid in self._reals:
            raise DuplicateNodeError(nid)
        slot = self._alloc()
        self.kind[slot] = KIND_REAL
        self.ident[slot] = nid
        self.sim[slot] = NIL
        self.parent[slot] = NIL
        self.head[slot] = NIL
        self.tail[slot] = NIL
        self.next[slot] = NIL
        self.prev[slot] = NIL
        self.nchild[slot] = 0
        self.role[slot] = NIL
        self.imgdeg[slot] = 0
        self.inc[slot] = -original_degree
        self._reals[nid] = slot
        self._inc_enter(-original_degree)
        self._alive_idx[nid] = len(self._alive_list)
        self._alive_list.append(nid)
        return slot

    def new_helper(self, sim: int) -> int:
        try:
            sim_slot = self._reals[sim]
        except KeyError:
            raise NodeNotFoundError(sim, "helper simulator") from None
        if self.role[sim_slot] != NIL:
            raise InvariantViolationError(
                "one-role-per-node", f"{sim} already simulates a helper"
            )
        self._hid_counter += 1
        slot = self._alloc()
        self.kind[slot] = KIND_HELPER
        self.ident[slot] = self._hid_counter
        self.sim[slot] = sim
        self.parent[slot] = NIL
        self.head[slot] = NIL
        self.tail[slot] = NIL
        self.next[slot] = NIL
        self.prev[slot] = NIL
        self.nchild[slot] = 0
        self.role[slot] = NIL
        self._helpers[self._hid_counter] = slot
        self.role[sim_slot] = slot
        return slot

    def set_root(self, slot: int) -> None:
        if slot != NIL and self.parent[slot] != NIL:
            raise InvariantViolationError("root", "root must have no parent")
        self._root = slot

    # ------------------------------------------------------------------
    # structural mutations (image bookkeeping is automatic)
    # ------------------------------------------------------------------
    def attach(self, child: int, parent: int, before: int = NIL) -> None:
        """Attach a detached subtree under ``parent``.

        ``before`` names an existing child to insert in front of; NIL
        appends (the common case).
        """
        if self.parent[child] != NIL:
            raise InvariantViolationError("attach", "child already attached")
        if before == NIL:
            last = self.tail[parent]
            if last == NIL:
                self.head[parent] = child
            else:
                self.next[last] = child
            self.prev[child] = last
            self.next[child] = NIL
            self.tail[parent] = child
        else:
            prv = self.prev[before]
            self.prev[child] = prv
            self.next[child] = before
            self.prev[before] = child
            if prv == NIL:
                self.head[parent] = child
            else:
                self.next[prv] = child
        self.nchild[parent] += 1
        self.parent[child] = parent
        self._image_add(child, parent)

    def detach(self, child: int) -> int:
        """Detach ``child`` from its parent; returns the old parent or NIL."""
        parent = self.parent[child]
        if parent == NIL:
            return NIL
        prv, nxt = self.prev[child], self.next[child]
        if prv == NIL:
            self.head[parent] = nxt
        else:
            self.next[prv] = nxt
        if nxt == NIL:
            self.tail[parent] = prv
        else:
            self.prev[nxt] = prv
        self.prev[child] = NIL
        self.next[child] = NIL
        self.nchild[parent] -= 1
        self.parent[child] = NIL
        self._image_remove(child, parent)
        return parent

    def replace_child(self, parent: int, old: int, new: int) -> None:
        """Substitute ``old`` by detached ``new`` at the same position."""
        if self.parent[new] != NIL:
            raise InvariantViolationError("replace_child", "replacement already attached")
        prv, nxt = self.prev[old], self.next[old]
        self.prev[new] = prv
        self.next[new] = nxt
        if prv == NIL:
            self.head[parent] = new
        else:
            self.next[prv] = new
        if nxt == NIL:
            self.tail[parent] = new
        else:
            self.prev[nxt] = new
        self.prev[old] = NIL
        self.next[old] = NIL
        self.parent[old] = NIL
        self.parent[new] = parent
        self._image_remove(old, parent)
        self._image_add(new, parent)

    def splice(self, helper: int) -> int:
        """Bypass a one-child helper: its child takes its place."""
        if self.nchild[helper] != 1:
            raise InvariantViolationError(
                "bypass-precondition", f"helper has {self.nchild[helper]} children"
            )
        child = self.head[helper]
        parent = self.parent[helper]
        self.detach(child)
        if parent != NIL:
            nxt = self.next[helper]
            self.detach(helper)
            self.attach(child, parent, before=nxt)
        else:
            if self._root == helper:
                self._root = child
        self.destroy_helper(helper)
        return child

    def transfer_role(self, helper: int, new_sim: int) -> int:
        """Change the simulator of ``helper``; returns the previous one."""
        if new_sim not in self._reals:
            raise NodeNotFoundError(new_sim, "transfer_role")
        new_slot = self._reals[new_sim]
        if self.role[new_slot] != NIL:
            raise InvariantViolationError(
                "one-role-per-node", f"{new_sim} already simulates a helper"
            )
        old_sim = self.sim[helper]
        incident = self.children(helper)
        if self.parent[helper] != NIL:
            incident.append(self.parent[helper])
        for other in incident:
            self._image_remove(helper, other)
        old_slot = self._reals.get(old_sim, NIL)
        if old_slot != NIL and self.role[old_slot] == helper:
            self.role[old_slot] = NIL
        self.sim[helper] = new_sim
        self.role[new_slot] = helper
        for other in incident:
            self._image_add(helper, other)
        return old_sim

    def destroy_helper(self, helper: int) -> None:
        """Remove a detached, childless helper from the structure."""
        if self.nchild[helper] or self.parent[helper] != NIL:
            raise InvariantViolationError("destroy-helper", "still attached")
        sim = self.sim[helper]
        sim_slot = self._reals.get(sim, NIL)
        if sim_slot != NIL and self.role[sim_slot] == helper:
            self.role[sim_slot] = NIL
        if self._root == helper:
            self._root = NIL
        del self._helpers[self.ident[helper]]
        self._release(helper)

    def remove_real(self, slot: int) -> None:
        """Remove a detached, childless, role-free real node."""
        if self.nchild[slot] or self.parent[slot] != NIL:
            raise InvariantViolationError("remove-real", "still attached")
        if self.role[slot] != NIL:
            raise InvariantViolationError("remove-real", "still simulating a helper")
        if self._root == slot:
            self._root = NIL
        nid = self.ident[slot]
        del self._reals[nid]
        self._inc_leave(self.inc[slot])
        idx = self._alive_idx.pop(nid)
        last = self._alive_list.pop()
        if last != nid:
            self._alive_list[idx] = last
            self._alive_idx[last] = idx
        self._release(slot)

    # ------------------------------------------------------------------
    # validation / inspection
    # ------------------------------------------------------------------
    def iter_slots(self) -> Iterator[int]:
        """Preorder traversal from the root (matches VirtualTree order)."""
        if self._root == NIL:
            return
        stack = [self._root]
        while stack:
            slot = stack.pop()
            yield slot
            stack.extend(reversed(self.children(slot)))

    def check(self, branching: int = 2) -> None:
        """Validate the virtual-tree invariants plus flat-only bookkeeping."""
        if self._root == NIL:
            if self._reals or self._helpers:
                raise InvariantViolationError("vt-empty", "nodes exist but no root")
            self._check_counters()
            return
        if self.parent[self._root] != NIL:
            raise InvariantViolationError("vt-root", "root has a parent")
        seen_real: Set[int] = set()
        seen_help: Set[int] = set()
        for slot in self.iter_slots():
            kids = self.children(slot)
            if len(kids) != self.nchild[slot]:
                raise InvariantViolationError("flat-nchild", f"slot {slot}")
            prev = NIL
            for child in kids:
                if self.parent[child] != slot:
                    raise InvariantViolationError("vt-parent-link", f"slot {slot}")
                if self.prev[child] != prev:
                    raise InvariantViolationError("flat-sib-links", f"slot {slot}")
                prev = child
            if self.tail[slot] != (kids[-1] if kids else NIL):
                raise InvariantViolationError("flat-tail", f"slot {slot}")
            if self.kind[slot] == KIND_REAL:
                nid = self.ident[slot]
                if nid in seen_real:
                    raise InvariantViolationError("vt-dup", f"real {nid}")
                seen_real.add(nid)
                if self._reals.get(nid) != slot:
                    raise InvariantViolationError("flat-real-index", str(nid))
            elif self.kind[slot] == KIND_HELPER:
                hid = self.ident[slot]
                if hid in seen_help:
                    raise InvariantViolationError("vt-dup", f"helper {hid}")
                seen_help.add(hid)
                if self.sim[slot] not in self._reals:
                    raise InvariantViolationError(
                        "vt-sim-alive", f"helper {hid} simulated by dead {self.sim[slot]}"
                    )
                if self.role[self._reals[self.sim[slot]]] != slot:
                    raise InvariantViolationError(
                        "vt-role-map", f"role map disagrees for sim {self.sim[slot]}"
                    )
                if not 1 <= self.nchild[slot] <= branching:
                    raise InvariantViolationError(
                        "vt-helper-arity",
                        f"helper {hid} has {self.nchild[slot]} children",
                    )
            else:
                raise InvariantViolationError("flat-free-reachable", f"slot {slot}")
        if seen_real != set(self._reals):
            raise InvariantViolationError(
                "vt-reachability", f"unreachable reals: {set(self._reals) - seen_real}"
            )
        if seen_help != set(self._helpers):
            raise InvariantViolationError(
                "vt-reachability", f"unreachable helpers: {set(self._helpers) - seen_help}"
            )
        # incremental image graph must match a from-scratch recomputation
        recomputed: Dict[Tuple[int, int], int] = {}
        for slot in self.iter_slots():
            for child in self.children(slot):
                u, v = self.owner(slot), self.owner(child)
                if u != v:
                    key = edge_key(u, v)
                    recomputed[key] = recomputed.get(key, 0) + 1
        if recomputed != self._image:
            raise InvariantViolationError("image-counter", "incremental image diverged")
        self._check_counters()

    def _check_counters(self) -> None:
        """Flat-only: degree counters, multiset, alive list, free lists."""
        degs: Dict[int, int] = {nid: 0 for nid in self._reals}
        for (u, v) in self._image:
            degs[u] += 1
            degs[v] += 1
        inc_recount: Dict[int, int] = {}
        for nid, slot in self._reals.items():
            if self.imgdeg[slot] != degs[nid]:
                raise InvariantViolationError(
                    "flat-imgdeg", f"node {nid}: {self.imgdeg[slot]} != {degs[nid]}"
                )
            val = self.inc[slot]
            inc_recount[val] = inc_recount.get(val, 0) + 1
        if inc_recount != self._inc_count:
            raise InvariantViolationError("flat-inc-multiset", "multiset diverged")
        if inc_recount and self.max_degree_increase() != max(inc_recount):
            raise InvariantViolationError("flat-inc-max", "stale maximum")
        if sorted(self._alive_list) != sorted(self._reals):
            raise InvariantViolationError("flat-alive-list", "alive list diverged")
        for nid, idx in self._alive_idx.items():
            if self._alive_list[idx] != nid:
                raise InvariantViolationError("flat-alive-idx", str(nid))
        used = set(self._reals.values()) | set(self._helpers.values())
        spare = set(self._free) | set(self._limbo)
        if used & spare:
            raise InvariantViolationError("flat-free-list", "live slot on free list")
        if len(spare) != len(self._free) + len(self._limbo):
            raise InvariantViolationError("flat-free-list", "duplicate free slot")
        for slot in spare:
            if self.kind[slot] != KIND_FREE:
                raise InvariantViolationError("flat-free-kind", str(slot))

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Full state as ``{"meta": {...}, "arrays": {name: array('q')}}``.

        Every sequence — including dict key/value columns — is an
        ``array('q')`` so the checkpoint codec can write raw bytes.  Dict
        columns keep *insertion order*: ``_reals`` iterates by node age
        and ``_helpers`` hid-ascending, and both orders are load-bearing
        for bit-identical replay (donor scans, helper steals).  The
        free/limbo lists are LIFO stacks whose order decides future slot
        assignment, so they serialize verbatim too.
        """
        arrays: Dict[str, array] = {
            name: array("q", getattr(self, name)) for name in CORE_COLUMNS
        }
        arrays["reals_k"] = array("q", self._reals.keys())
        arrays["reals_v"] = array("q", self._reals.values())
        arrays["helpers_k"] = array("q", self._helpers.keys())
        arrays["helpers_v"] = array("q", self._helpers.values())
        image = array("q")
        for (u, v), mult in self._image.items():
            image.append(u)
            image.append(v)
            image.append(mult)
        arrays["image"] = image
        arrays["free"] = array("q", self._free)
        arrays["limbo"] = array("q", self._limbo)
        arrays["inc_k"] = array("q", self._inc_count.keys())
        arrays["inc_v"] = array("q", self._inc_count.values())
        arrays["alive"] = array("q", self._alive_list)
        meta = {
            "root": self._root,
            "hid_counter": self._hid_counter,
            "inc_max": self._inc_max,
            "inc_dirty": int(self._inc_dirty),
        }
        return {"meta": meta, "arrays": arrays}

    @classmethod
    def restore_state(cls, state: Dict[str, object]) -> "FlatCore":
        """Rebuild a core from :meth:`snapshot_state` output (exact)."""
        meta = state["meta"]
        arrays = state["arrays"]
        self = cls(recorder=None)
        for name in CORE_COLUMNS:
            setattr(self, name, array("q", arrays[name]))
        self._reals = dict(zip(arrays["reals_k"], arrays["reals_v"]))
        self._helpers = dict(zip(arrays["helpers_k"], arrays["helpers_v"]))
        img = arrays["image"]
        self._image = {
            (img[i], img[i + 1]): img[i + 2] for i in range(0, len(img), 3)
        }
        self._free = list(arrays["free"])
        self._limbo = list(arrays["limbo"])
        self._inc_count = dict(zip(arrays["inc_k"], arrays["inc_v"]))
        self._alive_list = list(arrays["alive"])
        self._alive_idx = {nid: i for i, nid in enumerate(self._alive_list)}
        self._root = int(meta["root"])
        self._hid_counter = int(meta["hid_counter"])
        self._inc_max = int(meta["inc_max"])
        self._inc_dirty = bool(meta["inc_dirty"])
        return self


class FlatWills:
    """Every node's will (SubRT blueprint) in one shared flat arena.

    One :class:`~repro.core.slot_tree.SlotTree` per node is the object
    layout; here all wills share four parallel arrays plus global position
    indexes keyed by ``(owner, stand_in)``.  Operations take the owning
    node id first and mirror the SlotTree maintenance rules *exactly* —
    same placement, same re-keying, same deterministic pool ordering, same
    reported deltas (the dataclasses are reused verbatim).

    Positions free eagerly (the engine never holds position handles across
    operations, so no limbo list is needed here).
    """

    def __init__(self, branching: int = 2):
        if branching < 2:
            raise ValueError(f"branching must be >= 2, got {branching}")
        self.branching = branching
        self.wkind = array("q")
        self.wval = array("q")  # stand-in (leaf) or simulator (internal)
        self.wparent = array("q")
        self.whead = array("q")
        self.wtail = array("q")
        self.wnext = array("q")
        self.wprev = array("q")
        self.wnchild = array("q")
        self._free: List[int] = []

        self._root: Dict[int, int] = {}  # owner -> root pos (NIL when empty);
        #                                  key existence == will existence
        self._heir: Dict[int, int] = {}  # owner -> heir stand-in (NIL none)
        self._leafpos: Dict[Tuple[int, int], int] = {}
        self._intpos: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # arena management
    # ------------------------------------------------------------------
    def reserve(self, capacity: int) -> None:
        extra = capacity - len(self.wkind)
        if extra <= 0:
            return
        zeros = array("q", bytes(8 * extra))
        for arr in (
            self.wkind, self.wval, self.wparent, self.whead,
            self.wtail, self.wnext, self.wprev, self.wnchild,
        ):
            arr.extend(zeros)
        self._free.extend(range(capacity - 1, len(self.wkind) - extra - 1, -1))

    def _alloc(self) -> int:
        if self._free:
            return self._free.pop()
        pos = len(self.wkind)
        for arr in (
            self.wkind, self.wval, self.wparent, self.whead,
            self.wtail, self.wnext, self.wprev, self.wnchild,
        ):
            arr.append(0)
        return pos

    def _release(self, pos: int) -> None:
        self.wkind[pos] = W_FREE
        self._free.append(pos)

    def _mk_leaf(self, owner: int, stand_in: int, parent: int = NIL) -> int:
        pos = self._alloc()
        self.wkind[pos] = W_LEAF
        self.wval[pos] = stand_in
        self.wparent[pos] = parent
        self.whead[pos] = NIL
        self.wtail[pos] = NIL
        self.wnext[pos] = NIL
        self.wprev[pos] = NIL
        self.wnchild[pos] = 0
        self._leafpos[(owner, stand_in)] = pos
        return pos

    def _mk_internal(self, owner: int, sim: int, children: Sequence[int]) -> int:
        pos = self._alloc()
        self.wkind[pos] = W_INTERNAL
        self.wval[pos] = sim
        self.wparent[pos] = NIL
        self.wnext[pos] = NIL
        self.wprev[pos] = NIL
        self.wnchild[pos] = len(children)
        prev = NIL
        for child in children:
            self.wparent[child] = pos
            self.wprev[child] = prev
            if prev == NIL:
                self.whead[pos] = child
            else:
                self.wnext[prev] = child
            prev = child
        self.wnext[prev] = NIL
        self.wtail[pos] = prev
        self._intpos[(owner, sim)] = pos
        return pos

    def _children(self, pos: int) -> List[int]:
        out: List[int] = []
        nxt = self.wnext
        c = self.whead[pos]
        while c != NIL:
            out.append(c)
            c = nxt[c]
        return out

    def _unlink(self, parent: int, child: int) -> None:
        prv, nxt = self.wprev[child], self.wnext[child]
        if prv == NIL:
            self.whead[parent] = nxt
        else:
            self.wnext[prv] = nxt
        if nxt == NIL:
            self.wtail[parent] = prv
        else:
            self.wprev[nxt] = prv
        self.wprev[child] = NIL
        self.wnext[child] = NIL
        self.wparent[child] = NIL
        self.wnchild[parent] -= 1

    def _graft(self, owner: int, old: int, new: int) -> None:
        """Put ``new`` exactly where ``old`` sits (links + parent + root)."""
        grand = self.wparent[old]
        prv, nxt = self.wprev[old], self.wnext[old]
        self.wprev[new] = prv
        self.wnext[new] = nxt
        self.wparent[new] = grand
        if grand == NIL:
            self._root[owner] = new
        else:
            if prv == NIL:
                self.whead[grand] = new
            else:
                self.wnext[prv] = new
            if nxt == NIL:
                self.wtail[grand] = new
            else:
                self.wprev[nxt] = new
        self.wprev[old] = NIL
        self.wnext[old] = NIL
        self.wparent[old] = NIL

    # ------------------------------------------------------------------
    # construction / teardown
    # ------------------------------------------------------------------
    def build(self, owner: int, stand_ins: Sequence[int]) -> None:
        """Create ``owner``'s will (Algorithm 3.5 shape, same as SlotTree)."""
        if owner in self._root:
            raise DuplicateNodeError(owner)
        ids = sorted(stand_ins)
        if len(set(ids)) != len(ids):
            dup = next(x for i, x in enumerate(ids) if i and ids[i - 1] == x)
            raise DuplicateNodeError(dup)
        if not ids:
            self._root[owner] = NIL
            self._heir[owner] = NIL
            return
        self._heir[owner] = ids[-1]
        self._root[owner] = self._build(owner, ids)

    def _build(self, owner: int, ids: Sequence[int]) -> int:
        if len(ids) == 1:
            return self._mk_leaf(owner, ids[0])
        groups = _split_even(ids, self.branching)
        children = [self._build(owner, g) for g in groups]
        sim = max(groups[0])  # BST separator: max of first subtree
        return self._mk_internal(owner, sim, children)

    def discard(self, owner: int) -> None:
        """Drop ``owner``'s will entirely, freeing its positions."""
        root = self._root.pop(owner)
        self._heir.pop(owner)
        if root == NIL:
            return
        stack = [root]
        while stack:
            pos = stack.pop()
            if self.wkind[pos] == W_LEAF:
                del self._leafpos[(owner, self.wval[pos])]
            else:
                del self._intpos[(owner, self.wval[pos])]
                stack.extend(self._children(pos))
            self._release(pos)

    # ------------------------------------------------------------------
    # queries (SlotTree API, owner-first)
    # ------------------------------------------------------------------
    def has(self, owner: int) -> bool:
        """Does ``owner`` currently hold a will at all?"""
        return owner in self._root

    def empty(self, owner: int) -> bool:
        return self._root[owner] == NIL

    def size(self, owner: int) -> int:
        root = self._root[owner]
        return 0 if root == NIL else self._count_leaves(root)

    def _count_leaves(self, root: int) -> int:
        n = 0
        stack = [root]
        while stack:
            pos = stack.pop()
            if self.wkind[pos] == W_LEAF:
                n += 1
            else:
                stack.extend(self._children(pos))
        return n

    def contains(self, owner: int, stand_in: int) -> bool:
        return (owner, stand_in) in self._leafpos

    def heir(self, owner: int) -> Optional[int]:
        h = self._heir[owner]
        return None if h == NIL else h

    def stand_ins(self, owner: int) -> List[int]:
        """Leaf stand-ins, left to right."""
        root = self._root[owner]
        out: List[int] = []
        if root != NIL:
            self._collect_leaves(root, out)
        return out

    def _collect_leaves(self, pos: int, out: List[int]) -> None:
        if self.wkind[pos] == W_LEAF:
            out.append(self.wval[pos])
        else:
            c = self.whead[pos]
            while c != NIL:
                self._collect_leaves(c, out)
                c = self.wnext[c]

    def _collect_internals(self, owner: int) -> List[int]:
        root = self._root[owner]
        if root == NIL or self.wkind[root] == W_LEAF:
            return []
        out: List[int] = []
        stack = [root]
        while stack:
            pos = stack.pop()
            if self.wkind[pos] == W_INTERNAL:
                out.append(pos)
                stack.extend(self._children(pos))
        return out

    def internal_sims(self, owner: int) -> List[int]:
        return sorted(self.wval[p] for p in self._collect_internals(owner))

    def has_internal(self, owner: int, stand_in: int) -> bool:
        return (owner, stand_in) in self._intpos

    def root_sim(self, owner: int) -> int:
        root = self._root[owner]
        if root == NIL:
            raise EmptyStructureError("root of empty slot tree")
        return self.wval[root]

    def _ref(self, pos: int) -> PosRef:
        if self.wkind[pos] == W_LEAF:
            return ("leaf", self.wval[pos])
        return ("internal", self.wval[pos])

    def internal_specs(self, owner: int) -> List[InternalSpec]:
        """All internal positions with parent/children refs, sim-ascending."""
        specs: List[InternalSpec] = []
        for pos in sorted(self._collect_internals(owner), key=lambda p: self.wval[p]):
            parent = self.wparent[pos]
            spec = InternalSpec(
                sim=self.wval[pos],
                parent=("top",) if parent == NIL else ("internal", self.wval[parent]),
            )
            spec.children = [self._ref(c) for c in self._children(pos)]
            specs.append(spec)
        return specs

    # ------------------------------------------------------------------
    # positional maintenance (SlotTree ports)
    # ------------------------------------------------------------------
    def _leaf(self, owner: int, stand_in: int) -> int:
        try:
            return self._leafpos[(owner, stand_in)]
        except KeyError:
            raise NodeNotFoundError(stand_in, "slot tree leaf") from None

    def _around(self, pos: int) -> List[int]:
        """Stand-ins whose portions reference ``pos`` (O(1) of them)."""
        out = [self.wval[pos]]
        parent = self.wparent[pos]
        if parent != NIL:
            out.append(self.wval[parent])
        if self.wkind[pos] == W_INTERNAL:
            c = self.whead[pos]
            while c != NIL:
                out.append(self.wval[c])
                c = self.wnext[c]
        return out

    def _pick_free(self, owner: int, freed: List[int]) -> int:
        if freed:
            return freed[0]
        heir = self._heir[owner]
        pool = [
            s
            for s in sorted(self.stand_ins(owner))
            if s != heir and (owner, s) not in self._intpos
        ]
        if not pool:
            raise InvariantViolationError("slot-tree-pool", "no free stand-in")
        return pool[0]

    def _touched_filter(self, owner: int, touched: List[int]) -> Tuple[int, ...]:
        leafpos = self._leafpos
        return tuple(dict.fromkeys(t for t in touched if (owner, t) in leafpos))

    def remove(self, owner: int, stand_in: int) -> RemovalDelta:
        """Remove a dead leaf slot positionally (SlotTree.remove port)."""
        leaf = self._leaf(owner, stand_in)
        del self._leafpos[(owner, stand_in)]
        parent = self.wparent[leaf]

        if parent == NIL:  # single-slot will
            self._root[owner] = NIL
            self._heir[owner] = NIL
            self._release(leaf)
            return RemovalDelta(emptied=True)

        self._unlink(parent, leaf)
        self._release(leaf)
        touched: List[int] = []
        spliced_sim: Optional[int] = None
        freed: List[int] = []
        to_free: List[int] = []

        # The dead stand-in's own internal assignment (if any) is now vacant.
        vacant = self._intpos.pop((owner, stand_in), None)

        if self.wnchild[parent] == 1:
            # "short-circuit": splice the one-child internal position out.
            only = self.whead[parent]
            self._unlink(parent, only)
            self._graft(owner, parent, only)
            parent_sim = self.wval[parent]
            spliced_sim = parent_sim
            if vacant is not None and parent == vacant:
                vacant = None  # the vacant position itself was spliced away
            else:
                self._intpos.pop((owner, parent_sim), None)
                freed.append(parent_sim)
            to_free.append(parent)
            touched.append(parent_sim)  # it lost its internal assignment
            touched.extend(self._around(only))
        else:
            touched.extend(self._around(parent))

        reassigned: Optional[Tuple[int, int]] = None
        if vacant is not None:
            new_sim = self._pick_free(owner, freed)
            self.wval[vacant] = new_sim
            self._intpos[(owner, new_sim)] = vacant
            if new_sim in freed:
                freed.remove(new_sim)
            reassigned = (stand_in, new_sim)
            touched.append(new_sim)
            touched.extend(self._around(vacant))

        new_heir: Optional[int] = None
        if stand_in == self._heir[owner]:
            new_heir = self._pick_free(owner, freed)
            self._heir[owner] = new_heir
            touched.append(new_heir)

        for pos in to_free:
            self._release(pos)
        return RemovalDelta(
            emptied=False,
            spliced_sim=spliced_sim,
            reassigned=reassigned,
            new_heir=new_heir,
            touched=self._touched_filter(owner, touched),
        )

    def replace(self, owner: int, old: int, new: int) -> ReplaceDelta:
        """Substitute stand-in ``old`` by ``new`` positionally."""
        if (owner, new) in self._leafpos:
            raise DuplicateNodeError(new)
        leaf = self._leaf(owner, old)
        del self._leafpos[(owner, old)]
        self.wval[leaf] = new
        self._leafpos[(owner, new)] = leaf

        node = self._intpos.pop((owner, old), None)
        had_internal = node is not None
        if node is not None:
            self.wval[node] = new
            self._intpos[(owner, new)] = node

        was_heir = old == self._heir[owner]
        if was_heir:
            self._heir[owner] = new

        touched = [new]
        touched.extend(self._around(leaf))
        if node is not None:
            touched.extend(self._around(node))
        return ReplaceDelta(
            was_heir=was_heir,
            had_internal=had_internal,
            touched=self._touched_filter(owner, touched),
        )

    def add(self, owner: int, stand_in: int) -> AddDelta:
        """Insert a new leaf slot positionally (SlotTree.add port)."""
        if (owner, stand_in) in self._leafpos:
            raise DuplicateNodeError(stand_in)
        root = self._root[owner]
        leaf = self._mk_leaf(owner, stand_in)

        if root == NIL:
            self._root[owner] = leaf
            self._heir[owner] = stand_in
            return AddDelta(became_heir=True, touched=(stand_in,))

        # Level-order scan: first spare internal slot (b > 2) or first
        # (= shallowest) leaf wins.
        queue: deque = deque([root])
        target = root
        while queue:
            pos = queue.popleft()
            if self.wkind[pos] == W_LEAF or self.wnchild[pos] < self.branching:
                target = pos
                break
            queue.extend(self._children(pos))

        touched: List[int] = [stand_in]
        if self.wkind[target] == W_INTERNAL:
            last = self.wtail[target]
            self.wnext[last] = leaf
            self.wprev[leaf] = last
            self.wtail[target] = leaf
            self.wparent[leaf] = target
            self.wnchild[target] += 1
            touched.extend(self._around(target))
            return AddDelta(touched=self._touched_filter(owner, touched))

        node = self._alloc()
        self.wkind[node] = W_INTERNAL
        self.wval[node] = stand_in
        self.whead[node] = NIL
        self.wtail[node] = NIL
        self.wnchild[node] = 0
        self.wnext[node] = NIL
        self.wprev[node] = NIL
        self.wparent[node] = NIL
        self._graft(owner, target, node)  # node takes target's place
        self.whead[node] = target
        self.wtail[node] = leaf
        self.wnext[target] = leaf
        self.wprev[leaf] = target
        self.wparent[target] = node
        self.wparent[leaf] = node
        self.wnchild[node] = 2
        self._intpos[(owner, stand_in)] = node
        touched.extend(self._around(node))
        return AddDelta(
            paired_with=self.wval[target],
            touched=self._touched_filter(owner, touched),
        )

    def add_batch(self, owner: int, stand_ins: Sequence[int]) -> AddBatchDelta:
        """Insert a wave of leaf slots (SlotTree.add_batch port)."""
        ids = [int(s) for s in stand_ins]
        if len(set(ids)) != len(ids):
            dup = next(x for i, x in enumerate(ids) if x in ids[:i])
            raise DuplicateNodeError(dup)
        touched: List[int] = []
        for s in ids:
            touched.extend(self.add(owner, s).touched)
        return AddBatchDelta(
            added=tuple(ids),
            touched=self._touched_filter(owner, touched),
        )

    def set_heir(self, owner: int, new_heir: int) -> Tuple[int, ...]:
        """Move heir-ness to another free stand-in (generalized-b only)."""
        if (owner, new_heir) not in self._leafpos:
            raise NodeNotFoundError(new_heir, "set_heir")
        if (owner, new_heir) in self._intpos:
            raise InvariantViolationError("slot-tree-heir", "heir cannot hold an internal")
        old = self._heir[owner]
        self._heir[owner] = new_heir
        return tuple(t for t in (old, new_heir) if t != NIL)

    def exclude_from_assignment(self, owner: int, busy: Set[int]) -> Tuple[int, ...]:
        """Re-assign internal positions away from ``busy`` stand-ins."""
        touched: List[int] = []

        def free_pool() -> List[int]:
            heir = self._heir[owner]
            return [
                s
                for s in sorted(self.stand_ins(owner))
                if s != heir and (owner, s) not in self._intpos and s not in busy
            ]

        if self._heir[owner] in busy:
            pool = free_pool()
            if not pool:
                raise InvariantViolationError(
                    "slot-tree-exclusion", "no free stand-in to take heir-ness"
                )
            touched.extend(self.set_heir(owner, pool[0]))
        for sim in [s for s in self.internal_sims(owner) if s in busy]:
            pool = free_pool()
            if not pool:
                raise InvariantViolationError(
                    "slot-tree-exclusion", "no free stand-in for internal position"
                )
            node = self._intpos.pop((owner, sim))
            self.wval[node] = pool[0]
            self._intpos[(owner, pool[0])] = node
            touched.extend([sim, pool[0]])
            touched.extend(self._around(node))
        return self._touched_filter(owner, touched)

    # ------------------------------------------------------------------
    # object view / validation
    # ------------------------------------------------------------------
    def to_slot_tree(self, owner: int) -> SlotTree:
        """Materialize an object SlotTree preserving positions (the
        ``will_of`` thin-view contract — equivalent to SlotTree.clone)."""
        out = SlotTree([], branching=self.branching)
        heir = self._heir[owner]
        out._heir = None if heir == NIL else heir
        root = self._root[owner]
        if root != NIL:
            out._root = self._to_pos(root, out, None)
        return out

    def _to_pos(self, pos: int, into: SlotTree, parent: Optional[_Internal]):
        if self.wkind[pos] == W_LEAF:
            leaf = _Leaf(self.wval[pos], parent)
            into._leaves[self.wval[pos]] = leaf
            return leaf
        node = _Internal(self.wval[pos], [])
        node.parent = parent
        into._internal_by_sim[self.wval[pos]] = node
        node.children = [self._to_pos(c, into, node) for c in self._children(pos)]
        return node

    def check(self, owner: int) -> None:
        """Validate one will's invariants (SlotTree.check + flat links)."""
        root = self._root[owner]
        heir = self._heir[owner]
        my_leaves = {s for (o, s) in self._leafpos if o == owner}
        my_internals = {s for (o, s) in self._intpos if o == owner}
        if root == NIL:
            if my_leaves or my_internals or heir != NIL:
                raise InvariantViolationError("slot-tree-empty", "stale entries")
            return
        seen: List[int] = []
        self._collect_leaves(root, seen)
        if sorted(seen) != sorted(my_leaves):
            raise InvariantViolationError("slot-tree-leaves", "leaf index mismatch")
        if heir not in my_leaves:
            raise InvariantViolationError("slot-tree-heir", f"heir {heir} not a leaf")
        if heir in my_internals:
            raise InvariantViolationError("slot-tree-heir", "heir holds an internal position")
        internals = self._collect_internals(owner)
        if len(internals) != len(my_internals):
            raise InvariantViolationError("slot-tree-internals", "index mismatch")
        for pos in internals:
            sim = self.wval[pos]
            kids = self._children(pos)
            if len(kids) != self.wnchild[pos]:
                raise InvariantViolationError("flat-will-nchild", str(sim))
            if not 2 <= len(kids) <= self.branching:
                raise InvariantViolationError(
                    "slot-tree-arity", f"internal {sim} has {len(kids)} children"
                )
            if sim not in my_leaves:
                raise InvariantViolationError(
                    "slot-tree-sim", f"internal sim {sim} is not a live stand-in"
                )
            if self._intpos.get((owner, sim)) != pos:
                raise InvariantViolationError("slot-tree-sim-index", str(sim))
            prev = NIL
            for child in kids:
                if self.wparent[child] != pos:
                    raise InvariantViolationError("slot-tree-parent-link", str(sim))
                if self.wprev[child] != prev:
                    raise InvariantViolationError("flat-will-sib-links", str(sim))
                prev = child
            if self.wtail[pos] != prev:
                raise InvariantViolationError("flat-will-tail", str(sim))

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Full arena state (same ``meta``/``arrays`` shape as FlatCore).

        The ``_root`` map's key *existence* encodes will existence and its
        insertion order tracks will creation order; the free list is the
        LIFO allocation stack.  Both serialize verbatim so a restored
        arena hands out positions in the same sequence the unbroken run
        would have.
        """
        arrays: Dict[str, array] = {
            name: array("q", getattr(self, name)) for name in WILL_COLUMNS
        }
        arrays["free"] = array("q", self._free)
        arrays["root_k"] = array("q", self._root.keys())
        arrays["root_v"] = array("q", self._root.values())
        arrays["heir_k"] = array("q", self._heir.keys())
        arrays["heir_v"] = array("q", self._heir.values())
        leafpos = array("q")
        for (owner, stand_in), pos in self._leafpos.items():
            leafpos.append(owner)
            leafpos.append(stand_in)
            leafpos.append(pos)
        arrays["leafpos"] = leafpos
        intpos = array("q")
        for (owner, sim), pos in self._intpos.items():
            intpos.append(owner)
            intpos.append(sim)
            intpos.append(pos)
        arrays["intpos"] = intpos
        return {"meta": {"branching": self.branching}, "arrays": arrays}

    @classmethod
    def restore_state(cls, state: Dict[str, object]) -> "FlatWills":
        """Rebuild a will arena from :meth:`snapshot_state` output."""
        meta = state["meta"]
        arrays = state["arrays"]
        self = cls(branching=int(meta["branching"]))
        for name in WILL_COLUMNS:
            setattr(self, name, array("q", arrays[name]))
        self._free = list(arrays["free"])
        self._root = dict(zip(arrays["root_k"], arrays["root_v"]))
        self._heir = dict(zip(arrays["heir_k"], arrays["heir_v"]))
        lp = arrays["leafpos"]
        self._leafpos = {
            (lp[i], lp[i + 1]): lp[i + 2] for i in range(0, len(lp), 3)
        }
        ip = arrays["intpos"]
        self._intpos = {
            (ip[i], ip[i + 1]): ip[i + 2] for i in range(0, len(ip), 3)
        }
        return self
