"""The Forgiving Tree healing engine (sequential reference implementation).

This is the canonical implementation of the paper's algorithm, operating on
the explicit virtual tree (:mod:`repro.core.virtual_tree`).  It performs the
paper's healing steps — ``FixNodeDeletion`` / ``FixLeafDeletion`` with RT
deployment, ``bypass``, short-circuiting, heir inheritance, and leaf wills —
as structured mutations whose image graph is maintained incrementally.

The message-level distributed protocol in :mod:`repro.distributed` is a
refinement of this engine; integration tests assert both produce the same
image graph after every deletion.

Usage::

    from repro import ForgivingTree

    ft = ForgivingTree({0: [1, 2], 1: [3, 4], 2: [], 3: [], 4: []})
    report = ft.delete(1)          # adversary kills node 1
    ft.max_degree_increase()       # never exceeds 3 (Theorem 1.1)
    ft.adjacency()                 # the healed overlay

The engine accepts any tree given as an adjacency mapping, an edge list, or
a ``networkx`` graph.  ``branching`` generalizes the binary reconstruction
trees to the Section 4.2 tradeoff (degree increase ``b + 1``, depth
``log_b``); ``will_mode`` selects positional O(1) will maintenance
(``"splice"``, default, the paper's full-version behavior) or literal
regeneration (``"rebuild"``, Algorithm 3.4's reading) for the ablation
study.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from .errors import (
    InvariantViolationError,
    NodeNotFoundError,
    NotATreeError,
    SimulationOverError,
)
from .events import (
    EdgeAdded,
    EdgeRemoved,
    HealReport,
    HelperCreated,
    HelperDestroyed,
    HelperTransferred,
    LeafWillSent,
    NodeInserted,
    WillPortionSent,
    normalize_wave,
)
from .slot_tree import SlotTree
from .state import HelperState, NodeState
from .virtual_tree import VirtualTree, VTHelper, VTNode, VTReal

TreeInput = Union[Mapping[int, Iterable[int]], Iterable[Tuple[int, int]], object]

#: Will-maintenance modes.
WILL_SPLICE = "splice"
WILL_REBUILD = "rebuild"


class _Tally:
    """Per-round synthesized message accounting (mirrors the distributed
    layer's counting rules so Theorem 1.3 can be sanity-checked cheaply)."""

    def __init__(self) -> None:
        self.sent: Dict[int, int] = {}

    def send(self, node: int, count: int = 1) -> None:
        self.sent[node] = self.sent.get(node, 0) + count


class ForgivingTree:
    """Self-healing tree data structure (see module docstring).

    Parameters
    ----------
    tree:
        The initial tree: adjacency mapping ``{node: [neighbors...]}``, an
        iterable of edges, or a ``networkx.Graph``.
    root:
        Root node id; defaults to the smallest id (the paper roots the BFS
        tree arbitrarily).
    branching:
        Max children per helper node; 2 reproduces the paper, larger values
        give the Section 4.2 degree/diameter tradeoff (α = branching + 1).
    will_mode:
        ``"splice"`` (positional, O(1) portions per change — default) or
        ``"rebuild"`` (full regeneration, used by the ablation benchmark).
    strict:
        Run the full invariant checker after every deletion (slow; tests).
    """

    def __init__(
        self,
        tree: TreeInput,
        root: Optional[int] = None,
        branching: int = 2,
        will_mode: str = WILL_SPLICE,
        strict: bool = False,
    ) -> None:
        if will_mode not in (WILL_SPLICE, WILL_REBUILD):
            raise ValueError(f"unknown will_mode {will_mode!r}")
        if branching < 2:
            raise ValueError("branching must be >= 2")
        self.branching = branching
        self.will_mode = will_mode
        self.strict = strict

        adjacency = _as_adjacency(tree)
        if not adjacency:
            raise NotATreeError("empty tree")
        self.root_id = min(adjacency) if root is None else root
        if self.root_id not in adjacency:
            raise NodeNotFoundError(self.root_id, "root")
        _check_is_tree(adjacency)

        self._events: List[object] = []
        self._vt = VirtualTree(recorder=self._events.append)
        self._wills: Dict[int, SlotTree] = {}
        self.original_degree: Dict[int, int] = {
            nid: len(neigh) for nid, neigh in adjacency.items()
        }
        self.initial_nodes: Set[int] = set(adjacency)
        self._ever: Set[int] = set(adjacency)  # ids may never be reused
        self._tally = _Tally()
        self.rounds = 0
        self._build(adjacency)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, adjacency: Mapping[int, Sequence[int]]) -> None:
        vt = self._vt
        for nid in adjacency:
            vt.add_real(nid)
        root = vt.real(self.root_id)
        vt.set_root(root)
        seen = {self.root_id}
        queue = deque([self.root_id])
        while queue:
            nid = queue.popleft()
            parent = vt.real(nid)
            kids = sorted(k for k in adjacency[nid] if k not in seen)
            for kid in kids:
                seen.add(kid)
                vt.attach(vt.real(kid), parent)
                queue.append(kid)
            self._wills[nid] = SlotTree(kids, branching=self.branching)

    # ------------------------------------------------------------------
    # public queries
    # ------------------------------------------------------------------
    @property
    def alive(self) -> Set[int]:
        """Ids of surviving nodes."""
        return self._vt.alive

    def __len__(self) -> int:
        return len(self._vt)

    def __contains__(self, nid: int) -> bool:
        return nid in self._vt

    def adjacency(self) -> Dict[int, Set[int]]:
        """Current healed overlay (image graph) adjacency."""
        return self._vt.image_adjacency()

    def edges(self) -> Set[Tuple[int, int]]:
        """Current healed overlay edges (canonical pairs)."""
        return self._vt.image_edges()

    def degree(self, nid: int) -> int:
        """Current degree of ``nid`` in the healed overlay."""
        return self._vt.image_degree(nid)

    def degree_increase(self, nid: int) -> int:
        """Current degree minus original degree (Theorem 1.1 quantity)."""
        return self.degree(nid) - self.original_degree[nid]

    def max_degree_increase(self) -> int:
        """``max_v degree(v, G_t) - degree(v, G_0)`` over survivors."""
        if not self._vt:
            return 0
        return max(self.degree_increase(nid) for nid in self._vt.alive)

    def state_of(self, nid: int) -> NodeState:
        """Wait/Ready/Deployed snapshot for ``nid`` (Figure 3)."""
        if nid not in self._vt:
            raise NodeNotFoundError(nid, "state_of")
        role = self._vt.role_of(nid)
        if role is None:
            return NodeState(nid, HelperState.WAIT, False, False, 0)
        nkids = len(role.children)
        if nkids == 1:
            return NodeState(nid, HelperState.READY, True, True, 1)
        return NodeState(nid, HelperState.DEPLOYED, True, False, nkids)

    def will_of(self, nid: int) -> SlotTree:
        """A copy of ``nid``'s current will blueprint."""
        return self._wills[nid].clone()

    def heir_of(self, nid: int) -> Optional[int]:
        """Current heir designated by ``nid`` (None for tree leaves)."""
        return self._wills[nid].heir

    def virtual_tree(self) -> VirtualTree:
        """The underlying virtual tree (read it, do not mutate it)."""
        return self._vt

    def render(self) -> str:
        """ASCII view of the virtual tree (helpers bracketed)."""
        return self._vt.render()

    def check(self) -> None:
        """Validate every invariant of the structure; raise on violation."""
        self._vt.check(branching=self.branching)
        for nid, will in self._wills.items():
            will.check()
            real = self._vt.real(nid)
            stand_ins = {self._vt.owner(c) for c in real.children}
            if stand_ins != set(will.stand_ins):
                raise InvariantViolationError(
                    "will-slots",
                    f"node {nid}: will {sorted(will.stand_ins)} vs VT {sorted(stand_ins)}",
                )
            for child in real.children:
                if child.is_helper:
                    assert isinstance(child, VTHelper)
                    if self.branching == 2 and len(child.children) != 1:
                        raise InvariantViolationError(
                            "I3-ready-heir-slot",
                            f"helper slot under {nid} has {len(child.children)} children",
                        )
                else:
                    assert isinstance(child, VTReal)
                    role = self._vt.role_of(child.nid)
                    if (
                        self.branching == 2
                        and role is not None
                        and not (len(role.children) == 1 and role.children[0] is child)
                    ):
                        raise InvariantViolationError(
                            "I4-plain-child-role",
                            f"real child {child.nid} of {nid} holds a non-vacuous role",
                        )

    # ------------------------------------------------------------------
    # the healing entry point
    # ------------------------------------------------------------------
    def delete(self, nid: int) -> HealReport:
        """Adversary deletes ``nid``; heal and report (Algorithm 3.1)."""
        if not self._vt:
            raise SimulationOverError("all nodes already deleted")
        real = self._vt.real(nid)
        self._events = []
        self._vt.recorder = self._events.append
        self._tally = _Tally()

        was_internal = bool(real.children)
        if was_internal:
            self._fix_node_deletion(real)
        else:
            self._fix_leaf_deletion(real)
        self.rounds += 1

        added = frozenset(e.key() for e in self._events if isinstance(e, EdgeAdded))
        removed = frozenset(e.key() for e in self._events if isinstance(e, EdgeRemoved))
        report = HealReport(
            deleted=nid,
            was_internal=was_internal,
            edges_added=added - removed,
            edges_removed=removed - added,
            events=tuple(self._events),
            messages_per_node=dict(self._tally.sent),
        )
        if self.strict:
            self.check()
        return report

    # ------------------------------------------------------------------
    # the insertion entry point (churn model, after "The Forgiving Graph")
    # ------------------------------------------------------------------
    def insert(self, nid: int, attach_to: int) -> HealReport:
        """A new node joins the network, attached to live ``attach_to``.

        The joiner becomes a real leaf child of the attachment point's
        real position and a fresh slot of its will (see
        :meth:`SlotTree.add` for the placement rule): reconstruction
        trees deploy over it like over any original child, so the
        Theorem 1 degree/diameter machinery is preserved.  Following the
        Forgiving Graph's *ideal graph* convention, the demanded edge
        raises both endpoints' baseline degrees — degree *increase*
        keeps measuring only heal-induced edges.

        Node ids are never reused: inserting an id that ever existed
        raises :class:`DuplicateNodeError`.

        The synthesized message tally mirrors the distributed INSERT
        handshake exactly (request, optional leaf-will retraction, ack,
        O(1) will-portion refreshes, the joiner's leaf-will deposit) so
        the two runtimes can be cross-checked per insertion.  A single
        insert *is* a batch wave of one — see :meth:`insert_batch` for
        the one shared implementation of the join choreography.
        """
        return self.insert_batch([(nid, attach_to)])

    def insert_batch(self, joiners: Iterable[Tuple[int, int]]) -> HealReport:
        """A wave of nodes joins in one round, amortizing will rebuilds.

        ``joiners`` is an ordered sequence of ``(nid, attach_to)`` pairs.
        Every joiner is placed by exactly the same rule as :meth:`insert`
        (so the resulting structure is identical to applying the wave
        sequentially), but will maintenance is amortized per *attachment
        point*: the portions an attachment point's will must retransmit
        are computed once for the whole wave — one recomputation pass per
        touched stand-in, not one per joiner (:meth:`SlotTree.add_batch`).
        The synthesized message tally mirrors the distributed
        ``InsertBatch`` handshake exactly, per node.

        Wave semantics: attachment points must be alive *before* the wave
        (a joiner cannot attach to another joiner of the same wave), and
        ids are never reused.  The wave counts as a single round.
        """
        wave = normalize_wave(joiners, known_ids=self._ever, alive=self._vt)

        self._events = []
        self._vt.recorder = self._events.append
        self._tally = _Tally()

        groups: Dict[int, List[int]] = {}
        for nid, attach_to in wave:
            groups.setdefault(attach_to, []).append(nid)

        for attach_to, group in groups.items():
            parent = self._vt.real(attach_to)
            for nid in group:
                self._tally.send(nid, 1)  # join request to the attachment point
            if not parent.children and self._leaf_will_holder(parent) is not None:
                # The attachment point stops being a tree leaf: it
                # retracts its deposited leaf will (once per wave).
                self._tally.send(attach_to, 1)
            for nid in group:
                self._events.append(NodeInserted(nid, attach_to))
                node = self._vt.add_real(nid)
                self._vt.attach(node, parent)
                self._ever.add(nid)
                self._wills[nid] = SlotTree([], branching=self.branching)
                self._tally.send(attach_to, 1)  # join ack (parent-link handshake)
                self.original_degree[nid] = 1
                self.original_degree[attach_to] += 1
            will = self._wills[attach_to]
            delta = will.add_batch(group)
            # One portion pass for the whole group: the union of touched
            # slots, plus the heir and the SubRT root (their portions
            # embed cross-refs) — each retransmitted exactly once.
            targets = set(delta.touched)
            if will.heir is not None:
                targets.add(will.heir)
            targets.add(will.root_sim())
            for t in sorted(s for s in targets if s in will):
                self._events.append(WillPortionSent(attach_to, t))
                self._tally.send(attach_to, 1)
            for nid in group:
                # Each joiner is a tree leaf: it deposits its leaf will.
                self._events.append(LeafWillSent(nid, attach_to))
                self._tally.send(nid, 1)
        self.rounds += 1

        added = frozenset(e.key() for e in self._events if isinstance(e, EdgeAdded))
        report = HealReport(
            deleted=-1,
            was_internal=False,
            edges_added=added,
            edges_removed=frozenset(),
            events=tuple(self._events),
            messages_per_node=dict(self._tally.sent),
            inserted=wave[0][0] if len(wave) == 1 else None,
            attached_to=wave[0][1] if len(wave) == 1 else None,
            inserted_batch=tuple(wave),
        )
        if self.strict:
            self.check()
        return report

    def _leaf_will_holder(self, real: VTReal) -> Optional[int]:
        """Where a tree leaf's leaf will is deposited (None: nowhere).

        Mirrors the distributed holder rule: the owner of the nearest
        ancestor position answering as a *different* node, falling back
        to a surviving sibling under the node's own root helper.
        """
        vt = self._vt
        pos = real.parent
        while pos is not None and vt.owner(pos) == real.nid:
            pos = pos.parent
        if pos is not None:
            return vt.owner(pos)
        role = vt.role_of(real.nid)
        if role is not None:
            for child in role.children:
                if vt.owner(child) != real.nid:
                    return vt.owner(child)
        return None

    # ------------------------------------------------------------------
    # FixNodeDeletion (Algorithm 3.3 + makeRT 3.8 + MakeHelper 3.9)
    # ------------------------------------------------------------------
    def _fix_node_deletion(self, real: VTReal) -> None:
        vt = self._vt
        v = real.nid
        will = self._wills.pop(v)

        # A vacuous ready heir directly above v (its only child is v itself)
        # is bookkeeping fiction equivalent to holding no role: drop it.
        role = vt.role_of(v)
        if role is not None and len(role.children) == 1 and role.children[0] is real:
            self._record_destroy(role)
            vt.splice(role)
            role = None

        parent_pos = real.parent

        # --- anchor resolution (makeRT): bypass ready-heir slots ---------
        anchors: Dict[int, VTNode] = {}
        for child in list(real.children):
            stand_in = vt.owner(child)
            if child.is_real:
                assert isinstance(child, VTReal)
                child_role = vt.role_of(child.nid)
                if child_role is not None and self.branching == 2:
                    # The binary protocol never reaches this (invariant I4).
                    raise InvariantViolationError(
                        "I4-plain-child-role",
                        f"child {child.nid} of dying {v} holds a role",
                    )
                vt.detach(child)
                anchors[stand_in] = child
            elif len(child.children) == 1:
                assert isinstance(child, VTHelper)
                sub = child.children[0]
                vt.detach(sub)
                vt.detach(child)
                self._record_destroy(child)
                vt.destroy_helper(child)  # frees its simulator (= stand_in)
                anchors[stand_in] = sub
                self._tally.send(stand_in, 2)  # bypass brokerage intros
            else:
                # Generalized-b only: a wide helper slot stays in place as
                # the anchor; its simulator remains busy simulating it and
                # is excluded from new duties by ``resolve_sim`` below.
                if self.branching == 2:
                    raise InvariantViolationError(
                        "I3-ready-heir-slot",
                        f"slot helper under dying {v} has {len(child.children)} children",
                    )
                vt.detach(child)
                anchors[stand_in] = child
        if set(anchors) != set(will.stand_ins):
            raise InvariantViolationError(
                "will-slots", f"dying {v}: anchors {sorted(anchors)} vs will {sorted(will.stand_ins)}"
            )

        # Donors must avoid the dying node, the stand-ins with *pending
        # duties* in this deployment (the planned internal simulators and
        # the heir — other stand-ins are fair game), and — when the parent
        # is real — the parent and its stand-ins (a will may never list
        # its owner or a duplicate).
        specs = will.internal_specs()
        heir = will.heir
        assert heir is not None
        base_exclude = {v, heir} | {spec.sim for spec in specs}
        collision_set: Set[int] = set()
        if parent_pos is not None and parent_pos.is_real:
            assert isinstance(parent_pos, VTReal)
            collision_set.add(parent_pos.nid)
            parent_will = self._wills.get(parent_pos.nid)
            if parent_will is not None:
                collision_set |= set(parent_will.stand_ins) - {v}
            base_exclude |= collision_set

        # Helpers that must survive donor stealing while this repair runs.
        pinned = tuple(
            x
            for x in (parent_pos, role, *anchors.values())
            if x is not None and x.is_helper
        )

        # Bypassing slots may have destroyed v's own role (generalized-b:
        # a donor grant can make v simulate one of its own slot helpers).
        if role is not None and vt.role_of(v) is None:
            role = None
        # A wide slot still simulated by the dying node must move first.
        if (
            self.branching > 2
            and role is not None
            and any(role is a for a in anchors.values())
        ):
            try:
                donor = self._find_donor(
                    real, exclude=set(base_exclude), pinned=pinned
                )
            except InvariantViolationError as exc:
                if exc.invariant != "donor" or len(role.children) != 1:
                    raise
                # Simulator exhaustion: a one-child anchor helper can be
                # dropped in place, its child becoming the anchor.
                sub = role.children[0]
                vt.detach(sub)
                for s, a in list(anchors.items()):
                    if a is role:
                        anchors[s] = sub
                self._record_destroy(role)
                vt.destroy_helper(role)
                donor = None
            if donor is not None:
                old = vt.transfer_role(role, donor)
                self._events.append(HelperTransferred(role.hid, old, donor))
                self._tally.send(donor, len(role.children) + 1)
            role = None

        # --- duty-sim resolution ------------------------------------------
        # The will plans each helper position's simulator.  In the binary
        # protocol every planned stand-in is guaranteed free; the
        # generalized tree substitutes a donor at deployment time when a
        # planned stand-in is still simulating elsewhere.
        used_donors: Set[int] = set()

        def steal_from_anchors(extra: Set[int] = frozenset()) -> Optional[int]:
            """Last-resort simulator source: a one-child helper anchor can
            be dropped in place (its child becomes the anchor), freeing its
            simulator.  Keeps the anchors map coherent."""
            for s in sorted(anchors):
                a = anchors[s]
                if (
                    isinstance(a, VTHelper)
                    and len(a.children) == 1
                    and a.sim not in base_exclude
                    and a.sim not in used_donors
                    and a.sim not in extra
                ):
                    sub = a.children[0]
                    vt.detach(sub)
                    anchors[s] = sub
                    freed = a.sim
                    self._record_destroy(a)
                    vt.destroy_helper(a)
                    self._tally.send(freed, 2)
                    return freed
            return None

        def find_duty_donor() -> int:
            try:
                return self._find_donor(
                    real, exclude=base_exclude | used_donors, pinned=pinned
                )
            except InvariantViolationError as exc:
                if exc.invariant != "donor":
                    raise
                stolen = steal_from_anchors()
                if stolen is None:
                    raise
                return stolen

        def rebind_parent() -> None:
            nonlocal parent_pos, pinned
            parent_pos = real.parent
            pinned = tuple(
                x
                for x in (parent_pos, role, *anchors.values())
                if x is not None and x.is_helper
            )

        def free_busy_sim(planned: int) -> bool:
            """Endgame fallback: ``planned`` is stuck simulating a
            redundant one-child helper — bypass that helper so the
            planned simulator can take up its own duty.  Donor stealing
            can never free ``planned`` itself (pending duties are
            excluded from every donor search), so without this move the
            rebuild-mode b > 2 endgame exhausts donors when the only
            busy helper left is the one directly above the dying node
            (its single child being the dying node itself)."""
            busy = vt.role_of(planned)
            if busy is None or len(busy.children) != 1:
                return False
            if busy is parent_pos:
                if self._splice_helper(busy) is None:
                    return False
                rebind_parent()
                return True
            for s in sorted(anchors):
                if anchors[s] is busy:
                    sub = busy.children[0]
                    vt.detach(sub)
                    anchors[s] = sub
                    self._record_destroy(busy)
                    vt.destroy_helper(busy)
                    self._tally.send(planned, 2)
                    return True
            if any(busy is p for p in pinned):
                return False
            return self._splice_helper(busy) is not None

        def resolve_sim(planned: int) -> int:
            if (
                vt.role_of(planned) is None
                and planned not in used_donors
                and planned not in collision_set
            ):
                return planned
            if self.branching == 2:
                raise InvariantViolationError(
                    "I4-plain-child-role", f"planned sim {planned} is busy"
                )
            if (
                planned not in used_donors
                and planned not in collision_set
                and free_busy_sim(planned)
            ):
                return planned
            donor = find_duty_donor()
            used_donors.add(donor)
            self._tally.send(planned, 1)  # redirects its duty to the donor
            return donor

        # --- build and wire the SubRT helpers (GenerateSubRT shape) ------
        new_helpers: Dict[int, VTHelper] = {}
        for spec in specs:
            sim = resolve_sim(spec.sim)
            helper = vt.new_helper(sim)
            new_helpers[spec.sim] = helper  # keyed by *planned* sim
            self._events.append(HelperCreated(sim, helper.hid, ready_heir=False))
            self._tally.send(sim, 1)  # claims its role to neighbors
        for spec in specs:
            helper = new_helpers[spec.sim]
            for ref in spec.children:
                kind, key = ref
                node = anchors[key] if kind == "leaf" else new_helpers[key]
                vt.attach(node, helper)

        def subrt_root() -> VTNode:
            # Late-bound on purpose: donor stealing (steal_from_anchors)
            # may still replace a one-child anchor by its child — and
            # destroy the anchor helper — between here and the top
            # attachment.  A snapshot taken now could re-attach that
            # destroyed helper.
            return (
                new_helpers[will.root_sim()]
                if new_helpers
                else anchors[will.stand_ins[0]]
            )

        # --- top attachment -----------------------------------------------
        if role is not None:
            # v had helper duties: its heir inherits them, and the root of
            # SubRT(v) takes v's place below v's parent (MakeWill lines 9-12).
            role_exclusions = self._donor_exclusions(role)
            inheritor: Optional[int] = None
            if (
                vt.role_of(heir) is None
                and heir not in used_donors
                and heir not in role_exclusions
            ):
                inheritor = heir
            elif (
                self.branching > 2
                and heir not in used_donors
                and heir not in role_exclusions
                and free_busy_sim(heir)
            ):
                inheritor = heir
            else:
                if self.branching == 2:
                    raise InvariantViolationError(
                        "I4-plain-child-role", f"heir {heir} cannot inherit from {v}"
                    )
                try:
                    inheritor = self._find_donor(
                        real,
                        exclude=base_exclude | used_donors | role_exclusions,
                        pinned=pinned,
                    )
                except InvariantViolationError as exc:
                    if exc.invariant != "donor":
                        raise
                    inheritor = steal_from_anchors(extra=role_exclusions)
                    # Simulator exhaustion (endgame): a one-child role can
                    # simply be short-circuited instead of inherited.
                    if inheritor is None:
                        if (
                            len(role.children) == 1
                            and self._splice_helper(role) is not None
                        ):
                            role = None
                        else:
                            raise
                if inheritor is not None:
                    used_donors.add(inheritor)
        if role is not None:
            assert inheritor is not None
            old_sim = vt.transfer_role(role, inheritor)
            self._events.append(HelperTransferred(role.hid, old_sim, inheritor))
            self._tally.send(inheritor, len(role.children) + 1)  # introduces itself
            rv = subrt_root()
            if parent_pos is None:
                # Generalized-b only: a donor-granted role on the root.
                if self.branching == 2:
                    raise InvariantViolationError("root-role", "root held a helper role")
                vt.set_root(None)
                vt.set_root(rv)
            else:
                if parent_pos.is_real and self.branching == 2:
                    raise InvariantViolationError(
                        "I4-parent-kind", f"dying {v} holds a role but has a real parent"
                    )
                vt.replace_child(parent_pos, real, rv)
                if parent_pos.is_real:
                    assert isinstance(parent_pos, VTReal)
                    self._replace_slot_standin(
                        parent_pos, v, rv, exclude=base_exclude | used_donors
                    )
            # If the inherited helper occupies a slot in a real parent's
            # will, the stand-in there must follow the new simulator.
            self._notify_standin_change(role, v, inheritor)
        if role is None:
            # v had no helper duties: the heir interposes a fresh one-child
            # helper — the ready heir (MakeWill lines 13-16).
            try:
                ready_sim: Optional[int] = resolve_sim(heir)
            except InvariantViolationError as exc:
                if exc.invariant != "donor" or self.branching == 2:
                    raise
                # Simulator exhaustion (endgame): the ready heir is a
                # structural optimization, not a necessity — skip it and
                # attach the SubRT root directly.
                ready_sim = None
            rv = subrt_root()
            if ready_sim is None:
                if parent_pos is None:
                    vt.set_root(None)
                    vt.set_root(rv)
                else:
                    vt.replace_child(parent_pos, real, rv)
                    if parent_pos.is_real:
                        assert isinstance(parent_pos, VTReal)
                        self._replace_slot_standin(
                            parent_pos, v, rv, exclude=base_exclude | used_donors
                        )
                    else:
                        self._tally.send(vt.owner(parent_pos), 1)
            else:
                ready = vt.new_helper(ready_sim)
                self._events.append(HelperCreated(ready_sim, ready.hid, ready_heir=True))
                self._tally.send(ready_sim, 2)
                if parent_pos is None:
                    # v was the root: the ready heir becomes the virtual root.
                    vt.set_root(None)  # real is still registered; re-root below
                    vt.attach(rv, ready)
                    vt.set_root(ready)
                else:
                    vt.replace_child(parent_pos, real, ready)
                    vt.attach(rv, ready)
                # The parent must treat the heir as its child (Algorithm 3.3
                # lines 3-6: "hparent(h) replaces v by h in SubRT(...)").
                if parent_pos is not None and parent_pos.is_real:
                    assert isinstance(parent_pos, VTReal)
                    self._replace_slot_standin(
                        parent_pos, v, ready, exclude=base_exclude | used_donors
                    )
                elif parent_pos is not None:
                    # Helper parent: its simulator's hchildren field changes.
                    self._tally.send(vt.owner(parent_pos), 1)

        vt.remove_real(real)
        self._refresh_leaf_wills(anchors)

    # ------------------------------------------------------------------
    # FixLeafDeletion (Algorithm 3.4 + MakeLeafWill 3.7)
    # ------------------------------------------------------------------
    def _fix_leaf_deletion(self, real: VTReal) -> None:
        vt = self._vt
        v = real.nid
        self._wills.pop(v, None)
        role = vt.role_of(v)
        parent_pos = real.parent

        if parent_pos is None:
            # v is the virtual root and childless: the network empties.
            if role is not None:
                raise InvariantViolationError("root-role", "childless root with a role")
            vt.remove_real(real)
            return

        vt.detach(real)

        if role is None:
            self._absorb_child_loss(parent_pos, lost_stand_in=v)
        elif role is parent_pos:
            # v's own helper sits directly above it (Algorithm 3.7's special
            # case).  Image-equivalent resolution: short-circuit it.
            remaining = len(role.children)
            if remaining == 0:
                # vacuous ready heir: vanish and cascade the slot loss.
                grand = vt.detach(role)
                self._record_destroy(role)
                vt.destroy_helper(role)
                if grand is not None:
                    self._absorb_child_loss(grand, lost_stand_in=v)
            else:
                spliced = None
                if remaining == 1:
                    spliced = self._splice_helper(role)
                if spliced is None:
                    # branching > 2 only: the helper keeps its children but
                    # its simulator died; find a donor to take it over.
                    donor = self._find_donor(
                        role,
                        exclude={v} | self._donor_exclusions(role),
                        pinned=(role, parent_pos),
                    )
                    old = vt.transfer_role(role, donor)
                    self._events.append(HelperTransferred(role.hid, old, donor))
                    self._tally.send(donor, len(role.children) + 1)
                    self._notify_standin_change(role, old, donor)
        else:
            # Non-adjacent helper duties: the leaf will (Algorithm 3.7) hands
            # them to the parent, who short-circuits its own helper first
            # (Algorithm 3.4 lines 7-16).
            freed: Optional[int] = None
            cascade_to: Optional[VTNode] = None
            cascade_standin = 0
            if parent_pos.is_real:
                if self.branching == 2:
                    raise InvariantViolationError(
                        "I4-leaf-parent",
                        f"leaf {v} holds a non-adjacent role under a real parent",
                    )
                # Generalized-b: a busy plain child died; the parent's will
                # just loses the slot and the role finds a donor below.
                assert isinstance(parent_pos, VTReal)
                self._absorb_child_loss(parent_pos, lost_stand_in=v)
            else:
                assert isinstance(parent_pos, VTHelper)
                remaining = len(parent_pos.children)
                if remaining == 0:
                    cascade_to = vt.detach(parent_pos)
                    freed = parent_pos.sim
                    cascade_standin = freed
                    self._record_destroy(parent_pos)
                    vt.destroy_helper(parent_pos)
                    if cascade_to is not None and cascade_to.is_real:
                        # A real grandparent's slot loss is pure will
                        # bookkeeping (no splicing), so absorb it now:
                        # deferring would leave the dissolved slot's
                        # stand-in — the freed simulator itself — in the
                        # will, and the collision/donor checks below
                        # would reject every live candidate (spurious
                        # donor exhaustion in the b > 2 endgame).
                        self._absorb_child_loss(
                            cascade_to, lost_stand_in=cascade_standin
                        )
                        cascade_to = None
                elif remaining == 1:
                    # bypass(z): short-circuit the parent's helper, freeing
                    # its simulator to inherit the leaf will.
                    if self._splice_helper(parent_pos) is not None:
                        freed = parent_pos.sim
            # Does anything real remain below the role?  The dissolved
            # parent helper may have been the role's only child, or —
            # b > 2 endgame — the dying leaf may have been the only real
            # node under a whole chain of one-child helpers hanging off
            # the role.  Either way the remaining subtree routes nothing:
            # it vanishes instead of being inherited, and the role's own
            # slot loss cascades upward (the deferred cascade target, if
            # any, is inside the dissolved subtree and needs no visit).
            doomed: List[VTHelper] = []
            stack: List[VTNode] = [role]
            while stack:
                node = stack.pop()
                if node.is_real:
                    doomed.clear()
                    break
                assert isinstance(node, VTHelper)
                doomed.append(node)  # parents precede their children
                stack.extend(node.children)
            if doomed:
                sim = role.sim
                grand = vt.detach(role)
                for helper in reversed(doomed):  # children first
                    if helper.parent is not None:
                        vt.detach(helper)
                    self._record_destroy(helper)
                    vt.destroy_helper(helper)
                vt.remove_real(real)
                if grand is not None:
                    self._absorb_child_loss(grand, lost_stand_in=sim)
                return
            if (
                freed is None
                or freed == v
                or vt.role_of(freed) is not None
                or self._standin_collision(role, freed)
            ):
                freed = self._find_donor(
                    role,
                    exclude={v} | self._donor_exclusions(role),
                    pinned=(role, parent_pos),
                )
            old = vt.transfer_role(role, freed)
            self._events.append(HelperTransferred(role.hid, old, freed))
            self._tally.send(freed, len(role.children) + 1)
            self._notify_standin_change(role, old, freed)
            # Cascade only after the inheritance settled: the cascade may
            # legitimately splice the very helper just inherited.  The
            # donor search above may itself have stolen (spliced) the
            # cascade target to free a simulator — the slot loss is then
            # already absorbed and the helper must not be touched again.
            if (
                not parent_pos.is_real
                and cascade_to is not None
                and (cascade_to.is_real or vt.helper_alive(cascade_to))
            ):
                self._absorb_child_loss(cascade_to, lost_stand_in=cascade_standin)

        vt.remove_real(real)

    # ------------------------------------------------------------------
    # cascading slot loss ("short-circuit" of redundant virtual nodes)
    # ------------------------------------------------------------------
    def _absorb_child_loss(self, node: VTNode, lost_stand_in: int) -> None:
        """``node`` lost one child slot entirely.

        Real parents update their wills; helper parents left with a single
        child are redundant and short-circuited; helpers left childless
        vanish and the loss cascades upward.
        """
        vt = self._vt
        if node.is_real:
            assert isinstance(node, VTReal)
            self._will_remove(node.nid, lost_stand_in)
            return
        assert isinstance(node, VTHelper)
        remaining = len(node.children)
        if remaining == 0:
            grand = vt.detach(node)
            sim = node.sim
            self._record_destroy(node)
            vt.destroy_helper(node)
            if grand is not None:
                self._absorb_child_loss(grand, lost_stand_in=sim)
        elif remaining == 1:
            # Helpers never *gain* children, so a helper at one child was at
            # two: it is a redundant virtual node — short-circuit it.
            self._splice_helper(node)
        # else: still >= 2 children: nothing to do.

    # ------------------------------------------------------------------
    # will maintenance
    # ------------------------------------------------------------------
    def _will_remove(self, p: int, stand_in: int) -> None:
        will = self._wills[p]
        if self.will_mode == WILL_SPLICE:
            delta = will.remove(stand_in)
            for t in delta.touched:
                self._events.append(WillPortionSent(p, t))
                self._tally.send(p, 1)
        else:
            self._rebuild_will(p)
        if not self._wills[p] and self._vt.role_of(p) is not None:
            # p just became a tree leaf with helper duties: deposit LeafWill.
            self._send_leaf_will(p)

    def _will_replace(self, p: int, old: int, new: int) -> None:
        will = self._wills[p]
        if self.will_mode == WILL_SPLICE:
            delta = will.replace(old, new)
            for t in delta.touched:
                self._events.append(WillPortionSent(p, t))
                self._tally.send(p, 1)
        else:
            self._rebuild_will(p)

    def _rebuild_will(self, p: int) -> None:
        """Literal Algorithm 3.4 behavior: regenerate and retransmit all."""
        real = self._vt.real(p)
        stand_ins = [self._vt.owner(c) for c in real.children]
        self._wills[p] = SlotTree(stand_ins, branching=self.branching)
        for s in stand_ins:
            self._events.append(WillPortionSent(p, s))
            self._tally.send(p, 1)

    def _refresh_leaf_wills(self, anchors: Mapping[int, VTNode]) -> None:
        """Children that are tree leaves re-deposit their leaf wills
        (Algorithms 3.3/3.4, trailing loop)."""
        for stand_in in anchors:
            if stand_in not in self._vt:
                continue
            real = self._vt.real(stand_in)
            if not real.children and self._vt.role_of(stand_in) is not None:
                self._send_leaf_will(stand_in)

    def _send_leaf_will(self, nid: int) -> None:
        real = self._vt.real(nid)
        parent = real.parent
        if parent is None:
            return
        recipient = self._vt.owner(parent)
        if recipient != nid:
            self._events.append(LeafWillSent(nid, recipient))
            self._tally.send(nid, 1)

    def _replace_slot_standin(
        self, parent: VTReal, old: int, slot_node: VTNode, exclude: Set[int]
    ) -> None:
        """Rename a slot of ``parent``'s will from ``old`` to the owner of
        its new occupant, resolving name collisions at use time.

        Generalized-b only ever needs the resolution: a collision means the
        occupant's owner already answers for another slot of the same will
        (or is the will's owner itself), so either the occupant helper or
        the competing role is re-donated first.
        """
        vt = self._vt
        will = self._wills.get(parent.nid)
        if will is None:
            return
        new = vt.owner(slot_node)
        if new == old:
            return
        collides = new == parent.nid or new in will
        if collides:
            if self.branching == 2:
                raise InvariantViolationError(
                    "will-slots", f"stand-in collision at {parent.nid}: {new}"
                )
            if isinstance(slot_node, VTHelper) and slot_node.sim == new:
                donor = self._find_donor(parent, exclude=exclude | {new, parent.nid})
                old_o = vt.transfer_role(slot_node, donor)
                self._events.append(HelperTransferred(slot_node.hid, old_o, donor))
                self._tally.send(donor, len(slot_node.children) + 1)
                new = donor
            else:
                other = vt.role_of(new)
                if other is None or other.parent is not parent:
                    raise InvariantViolationError(
                        "will-slots",
                        f"unresolvable stand-in collision at {parent.nid}: {new}",
                    )
                donor = self._find_donor(parent, exclude=exclude | {new, parent.nid})
                old_o = vt.transfer_role(other, donor)
                self._events.append(HelperTransferred(other.hid, old_o, donor))
                self._tally.send(donor, len(other.children) + 1)
                self._will_replace(parent.nid, new, donor)
        self._will_replace(parent.nid, old, new)

    def _donor_exclusions(self, helper: VTHelper) -> Set[int]:
        """Stand-ins a donor for ``helper`` must avoid: if the helper is a
        will slot of a real parent, renaming the slot's stand-in to an
        existing sibling stand-in would collide — and the will's owner can
        never stand in for its own will."""
        parent = helper.parent
        if parent is not None and parent.is_real:
            assert isinstance(parent, VTReal)
            out = {parent.nid}
            will = self._wills.get(parent.nid)
            if will is not None:
                out |= set(will.stand_ins)
            return out
        return set()

    def _splice_helper(self, helper: VTHelper) -> Optional[VTNode]:
        """Short-circuit a one-child helper with full will bookkeeping.

        Returns the moved-up child, or ``None`` when the splice must be
        skipped (generalized-b: the moved-up occupant's owner would collide
        with a sibling stand-in of a real parent's will — the redundant
        helper is then simply kept, which is always legal).
        """
        vt = self._vt
        moved = helper.children[0]
        parent = helper.parent
        sim = helper.sim
        will_fix: Optional[Tuple[int, int, int]] = None
        if parent is not None and parent.is_real:
            assert isinstance(parent, VTReal)
            will = self._wills.get(parent.nid)
            if will is not None and sim in will:
                new_standin = vt.owner(moved)
                if new_standin != sim and (
                    new_standin in will or new_standin == parent.nid
                ):
                    return None  # collision: keep the redundant helper
                if new_standin != sim:
                    will_fix = (parent.nid, sim, new_standin)
        self._record_destroy(helper)
        vt.splice(helper)
        self._tally.send(sim, 2)
        if will_fix is not None:
            self._will_replace(*will_fix)
        return moved

    def _standin_collision(self, helper: VTHelper, candidate: int) -> bool:
        """Would renaming ``helper``'s will-slot stand-in to ``candidate``
        collide — with a sibling stand-in, or with the will's own owner?"""
        parent = helper.parent
        if parent is None or not parent.is_real:
            return False
        assert isinstance(parent, VTReal)
        if candidate == parent.nid:
            return True  # a will may never list its owner as a stand-in
        will = self._wills.get(parent.nid)
        if will is None:
            return False
        return candidate in will and candidate != helper.sim

    def _notify_standin_change(self, helper: VTHelper, old: int, new: int) -> None:
        """A helper's simulator changed: if the helper occupies a slot of a
        real parent's will, the will's stand-in must follow (the paper's
        "p detects this and sets its flags accordingly")."""
        parent = helper.parent
        if parent is not None and parent.is_real:
            assert isinstance(parent, VTReal)
            if old in self._wills[parent.nid]:
                self._will_replace(parent.nid, old, new)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def _find_donor(
        self,
        start: VTNode,
        exclude: Set[int],
        pinned: Tuple[VTNode, ...] = (),
    ) -> int:
        """A live real node able to take on helper duties.

        Only the generalized (branching > 2) tree ever needs this — the
        binary protocol's inheritance rules always free the right simulator
        locally, which the tests assert.  Search order:

        1. nearest role-free real by BFS from ``start`` (locality),
        2. any role-free real (global scan),
        3. *steal*: splice some one-child helper — always legal, it only
           shortens paths — and reuse its freed simulator.

        A counting argument makes the chain total: if every live real held
        a role and every helper had >= 2 children, the virtual tree would
        need more edges than a tree can have.
        """
        vt = self._vt

        queue: deque[VTNode] = deque([start])
        seen_nodes: Set[int] = set()
        while queue:
            node = queue.popleft()
            if id(node) in seen_nodes:
                continue
            seen_nodes.add(id(node))
            if (
                isinstance(node, VTReal)
                and node.nid not in exclude
                and vt.role_of(node.nid) is None
            ):
                return node.nid
            if node.parent is not None:
                queue.append(node.parent)
            queue.extend(node.children)

        for nid in sorted(vt.alive):
            if nid not in exclude and vt.role_of(nid) is None:
                return nid

        for helper in sorted(vt.helpers(), key=lambda h: h.hid):
            if len(helper.children) != 1 or helper.sim in exclude:
                continue
            if any(helper is p for p in pinned):
                continue  # load-bearing for the ongoing repair
            if helper.parent is not None and helper.parent.is_real:
                assert isinstance(helper.parent, VTReal)
                if helper.parent.nid not in self._wills:
                    continue  # slot of a node mid-deletion: leave it alone
            sim = helper.sim
            if self._splice_helper(helper) is not None:
                return sim

        raise InvariantViolationError("donor", "no role-free node available")

    def _record_destroy(self, helper: VTHelper) -> None:
        self._events.append(HelperDestroyed(helper.sim, helper.hid))


# ----------------------------------------------------------------------
# input normalization
# ----------------------------------------------------------------------
def _as_adjacency(tree: TreeInput) -> Dict[int, List[int]]:
    """Normalize tree input to a symmetric adjacency dict."""
    if hasattr(tree, "adj") and hasattr(tree, "nodes"):  # networkx.Graph
        return {int(n): sorted(int(m) for m in tree.adj[n]) for n in tree.nodes}
    if isinstance(tree, Mapping):
        adj: Dict[int, Set[int]] = {int(n): set() for n in tree}
        for n, neighbors in tree.items():
            for m in neighbors:
                adj.setdefault(int(n), set()).add(int(m))
                adj.setdefault(int(m), set()).add(int(n))
        return {n: sorted(s) for n, s in adj.items()}
    adj = {}
    for u, v in tree:  # type: ignore[union-attr]
        adj.setdefault(int(u), set()).add(int(v))
        adj.setdefault(int(v), set()).add(int(u))
    return {n: sorted(s) for n, s in adj.items()}


def _check_is_tree(adjacency: Mapping[int, Sequence[int]]) -> None:
    n = len(adjacency)
    m = sum(len(v) for v in adjacency.values()) // 2
    if m != n - 1:
        raise NotATreeError(f"{n} nodes but {m} edges")
    start = next(iter(adjacency))
    seen = {start}
    queue = deque([start])
    while queue:
        cur = queue.popleft()
        for nxt in adjacency[cur]:
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    if len(seen) != n:
        raise NotATreeError("graph is not connected")
