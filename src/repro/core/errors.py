"""Exception hierarchy for the Forgiving Tree reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Invariant violations carry enough context to debug a
failing healing step (they are raised eagerly by the engines, which check
their own bookkeeping after every mutation in ``strict`` mode).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class NodeNotFoundError(ReproError, KeyError):
    """A node id was not present (already deleted, or never existed)."""

    def __init__(self, nid: object, context: str = "") -> None:
        self.nid = nid
        self.context = context
        detail = f" ({context})" if context else ""
        super().__init__(f"node {nid!r} not found{detail}")


class DuplicateNodeError(ReproError, ValueError):
    """A node id was inserted twice into a structure requiring uniqueness."""

    def __init__(self, nid: object) -> None:
        self.nid = nid
        super().__init__(f"duplicate node id {nid!r}")


class NotATreeError(ReproError, ValueError):
    """The input graph was expected to be a tree (connected, acyclic)."""


class DisconnectedGraphError(ReproError, ValueError):
    """The input graph was expected to be connected."""


class EmptyStructureError(ReproError, ValueError):
    """An operation required a non-empty structure."""


class InvariantViolationError(ReproError, AssertionError):
    """A structural invariant of the data structure was violated.

    Raised by :mod:`repro.core.invariants` checkers and by the engines'
    internal self-checks.  Seeing this error means the *library* is wrong,
    not the caller.
    """

    def __init__(self, invariant: str, detail: str = "") -> None:
        self.invariant = invariant
        self.detail = detail
        msg = f"invariant {invariant} violated"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class ProtocolError(ReproError, RuntimeError):
    """The distributed protocol reached an inconsistent local state."""


class SimulationOverError(ReproError, RuntimeError):
    """No further deletions are possible (the network is empty)."""
