"""Invariant checkers for the Forgiving Tree.

These functions validate everything the paper guarantees (and the internal
bookkeeping those guarantees rest on).  They are used three ways:

* the engine's ``strict`` mode calls them after every deletion;
* unit tests call them at chosen checkpoints;
* property-based tests (hypothesis) fuzz random trees and deletion orders
  and call :func:`check_full` continuously.

``check_full`` raises :class:`~repro.core.errors.InvariantViolationError`
with the name of the violated invariant (I1-I6 from DESIGN.md, or the
theorem bound that failed).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Iterable, Set, Tuple

from .errors import InvariantViolationError
from .forgiving_tree import ForgivingTree
from .virtual_tree import VTHelper


def check_degree_bound(ft: ForgivingTree) -> None:
    """Theorem 1.1: no node's degree grows by more than branching + 1."""
    bound = ft.branching + 1
    for nid in ft.alive:
        inc = ft.degree_increase(nid)
        if inc > bound:
            raise InvariantViolationError(
                "thm1-degree", f"node {nid} degree increase {inc} > {bound}"
            )


def check_connectivity(ft: ForgivingTree) -> None:
    """The healed overlay stays connected while any node survives."""
    adjacency = ft.adjacency()
    if not adjacency:
        return
    start = next(iter(adjacency))
    seen = {start}
    queue = deque([start])
    while queue:
        cur = queue.popleft()
        for nxt in adjacency[cur]:
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    if len(seen) != len(adjacency):
        raise InvariantViolationError(
            "connectivity", f"{len(adjacency) - len(seen)} nodes unreachable"
        )


def check_acyclic_image(ft: ForgivingTree) -> bool:
    """The image graph may legitimately contain short cycles (Figure 5's
    (b, c, d) cycle); return whether it is currently a tree.  Not an
    invariant — exposed for the tests that verify cycles *can* occur."""
    adjacency = ft.adjacency()
    n = len(adjacency)
    m = sum(len(s) for s in adjacency.values()) // 2
    return m == n - 1


def check_helper_constraints(ft: ForgivingTree) -> None:
    """I1/I2: sims unique and alive; helper arity within [1, branching]."""
    vt = ft.virtual_tree()
    sims: Set[int] = set()
    for helper in vt.helpers():
        if helper.sim in sims:
            raise InvariantViolationError("I1-injective-sims", f"sim {helper.sim} reused")
        sims.add(helper.sim)
        if helper.sim not in vt:
            raise InvariantViolationError("I1-live-sims", f"sim {helper.sim} is dead")
        if not 1 <= len(helper.children) <= ft.branching:
            raise InvariantViolationError(
                "I2-helper-arity", f"helper has {len(helper.children)} children"
            )


def check_slot_invariants(ft: ForgivingTree) -> None:
    """I3/I4/I6 via the engine's own structural checker."""
    ft.check()


def diameter_bound(original_diameter: int, max_degree: int, branching: int = 2) -> int:
    """The Theorem 1.2 envelope we assert empirically.

    The proof bounds each original tree edge on a root path by a factor
    ``log ∆ + 1`` (the depth of a reconstruction tree plus its ready heir),
    and the diameter by twice the root-path height.  We use the concrete
    safe form ``(⌈log_b ∆⌉ + 2) · (D + 1) + 2`` which dominates the paper's
    ``O(D log ∆)`` constant-free statement for every graph we generate.
    """
    if max_degree <= 1:
        return max(original_diameter, 1) + 2
    log_delta = max(1, math.ceil(math.log(max_degree, branching)))
    return (log_delta + 2) * (original_diameter + 1) + 2


def check_diameter_bound(
    ft: ForgivingTree, original_diameter: int, max_degree: int
) -> None:
    """Theorem 1.2: healed diameter within the O(D log ∆) envelope."""
    adjacency = ft.adjacency()
    if len(adjacency) <= 1:
        return
    measured = _exact_diameter(adjacency)
    bound = diameter_bound(original_diameter, max_degree, ft.branching)
    if measured > bound:
        raise InvariantViolationError(
            "thm1-diameter", f"diameter {measured} > bound {bound}"
        )


def check_full(
    ft: ForgivingTree,
    original_diameter: int | None = None,
    max_degree: int | None = None,
) -> None:
    """Run every invariant (and the theorem bounds when context is given)."""
    ft.virtual_tree().check(branching=ft.branching)
    check_slot_invariants(ft)
    check_helper_constraints(ft)
    check_degree_bound(ft)
    check_connectivity(ft)
    if original_diameter is not None and max_degree is not None:
        check_diameter_bound(ft, original_diameter, max_degree)


#: Alias: "check all invariants" (used by the churn property tests).
check_all = check_full


def _exact_diameter(adjacency: Dict[int, Set[int]]) -> int:
    best = 0
    for source in adjacency:
        dist = _bfs(adjacency, source)
        if len(dist) != len(adjacency):
            raise InvariantViolationError("connectivity", "disconnected during diameter")
        best = max(best, max(dist.values()))
    return best


def _bfs(adjacency: Dict[int, Set[int]], source: int) -> Dict[int, int]:
    dist = {source: 0}
    queue = deque([source])
    while queue:
        cur = queue.popleft()
        for nxt in adjacency[cur]:
            if nxt not in dist:
                dist[nxt] = dist[cur] + 1
                queue.append(nxt)
    return dist
