"""The virtual tree: real nodes, helper nodes, and the image homomorphism.

The paper describes the healed network as "the homomorphic image of the tree
... under a graph homomorphism which fixes the actual nodes in the tree and
maps each virtual node to a distinct actual node which is simulating it"
(Section 3).  This module makes that object explicit:

* :class:`VTReal` — a live real node (a processor).
* :class:`VTHelper` — a helper ("virtual") node, simulated by exactly one
  live real node; each real node simulates at most one helper (this is what
  bounds the degree increase by 3: one ``hparent`` edge plus at most two
  ``hchildren`` edges).
* :class:`VirtualTree` — the rooted tree over those nodes, together with an
  *incrementally maintained* image graph: every virtual-tree edge ``(A, B)``
  contributes the edge ``(owner(A), owner(B))`` to the real network unless
  the owners coincide (self-loops vanish — that is the paper's
  "if ``hy`` is ``ly``'s parent" rule in Algorithm 3.6).

The healing engine (:mod:`repro.core.forgiving_tree`) performs all of the
paper's operations — RT deployment, ``bypass``, short-circuiting, heir and
leaf-will inheritance — as small structured mutations on this tree, and the
image graph falls out automatically.  Keeping the pre-image explicit is what
lets the test-suite check the paper's invariants directly.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple, Union

from .errors import (
    DuplicateNodeError,
    InvariantViolationError,
    NodeNotFoundError,
)
from .events import EdgeAdded, EdgeRemoved, edge_key


class VTNode:
    """Base class for virtual-tree nodes (do not instantiate directly)."""

    __slots__ = ("parent", "children")

    def __init__(self) -> None:
        self.parent: Optional[VTNode] = None
        self.children: List[VTNode] = []

    @property
    def is_real(self) -> bool:
        return isinstance(self, VTReal)

    @property
    def is_helper(self) -> bool:
        return isinstance(self, VTHelper)


class VTReal(VTNode):
    """A live real node."""

    __slots__ = ("nid",)

    def __init__(self, nid: int) -> None:
        super().__init__()
        self.nid = nid

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"R({self.nid})"


class VTHelper(VTNode):
    """A helper (virtual) node, simulated by real node ``sim``."""

    __slots__ = ("hid", "sim")

    def __init__(self, hid: int, sim: int) -> None:
        super().__init__()
        self.hid = hid
        self.sim = sim

    @property
    def is_ready_heir(self) -> bool:
        """A one-child helper is an heir "in ready state" (Figure 3)."""
        return len(self.children) == 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"H{self.hid}(sim={self.sim}, n={len(self.children)})"


def owner_of(node: VTNode) -> int:
    """The real node that answers for ``node`` in the image graph."""
    if isinstance(node, VTReal):
        return node.nid
    assert isinstance(node, VTHelper)
    return node.sim


class VirtualTree:
    """Rooted tree of real and helper nodes with an incremental image graph.

    Parameters
    ----------
    recorder:
        Optional callback receiving :class:`EdgeAdded` / :class:`EdgeRemoved`
        events as image edges appear and disappear (used by the engine to
        build :class:`~repro.core.events.HealReport`).
    """

    def __init__(self, recorder: Optional[Callable[[object], None]] = None):
        self._reals: Dict[int, VTReal] = {}
        self._helpers: Dict[int, VTHelper] = {}
        self._role: Dict[int, VTHelper] = {}  # real id -> the helper it simulates
        self._root: Optional[VTNode] = None
        self._image: Counter = Counter()  # canonical edge -> multiplicity
        self._hid_counter = 0
        self.recorder = recorder

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def root(self) -> Optional[VTNode]:
        return self._root

    @property
    def alive(self) -> Set[int]:
        """Ids of live real nodes."""
        return set(self._reals)

    def __len__(self) -> int:
        return len(self._reals)

    def __contains__(self, nid: int) -> bool:
        return nid in self._reals

    def real(self, nid: int) -> VTReal:
        try:
            return self._reals[nid]
        except KeyError:
            raise NodeNotFoundError(nid, "virtual tree") from None

    def role_of(self, nid: int) -> Optional[VTHelper]:
        """The helper ``nid`` currently simulates, if any (``ishelper``)."""
        return self._role.get(nid)

    def helpers(self) -> List[VTHelper]:
        return list(self._helpers.values())

    def helper_alive(self, helper: VTHelper) -> bool:
        """Is ``helper`` still part of the structure (not yet destroyed)?"""
        return self._helpers.get(helper.hid) is helper

    def owner(self, node: VTNode) -> int:
        return owner_of(node)

    # ------------------------------------------------------------------
    # image graph
    # ------------------------------------------------------------------
    def image_adjacency(self) -> Dict[int, Set[int]]:
        """Adjacency of the image (healed real network), tree edges only."""
        adj: Dict[int, Set[int]] = {nid: set() for nid in self._reals}
        for (u, v) in self._image:
            adj[u].add(v)
            adj[v].add(u)
        return adj

    def image_edges(self) -> Set[Tuple[int, int]]:
        return set(self._image)

    def image_degree(self, nid: int) -> int:
        if nid not in self._reals:
            raise NodeNotFoundError(nid, "image degree")
        return sum(1 for e in self._image if nid in e)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_real(self, nid: int) -> VTReal:
        """Register a new detached real node."""
        if nid in self._reals:
            raise DuplicateNodeError(nid)
        node = VTReal(nid)
        self._reals[nid] = node
        return node

    def new_helper(self, sim: int) -> VTHelper:
        """Create a fresh detached helper simulated by ``sim``."""
        if sim not in self._reals:
            raise NodeNotFoundError(sim, "helper simulator")
        if sim in self._role:
            raise InvariantViolationError(
                "one-role-per-node", f"{sim} already simulates {self._role[sim]!r}"
            )
        self._hid_counter += 1
        helper = VTHelper(self._hid_counter, sim)
        self._helpers[helper.hid] = helper
        self._role[sim] = helper
        return helper

    def set_root(self, node: Optional[VTNode]) -> None:
        if node is not None and node.parent is not None:
            raise InvariantViolationError("root", "root must have no parent")
        self._root = node

    # ------------------------------------------------------------------
    # structural mutations (image bookkeeping is automatic)
    # ------------------------------------------------------------------
    def attach(self, child: VTNode, parent: VTNode, index: Optional[int] = None) -> None:
        """Attach a detached subtree under ``parent``."""
        if child.parent is not None:
            raise InvariantViolationError("attach", "child already attached")
        if index is None:
            parent.children.append(child)
        else:
            parent.children.insert(index, child)
        child.parent = parent
        self._image_add(child, parent)

    def detach(self, child: VTNode) -> Optional[VTNode]:
        """Detach ``child`` from its parent; returns the old parent."""
        parent = child.parent
        if parent is None:
            return None
        parent.children.remove(child)
        child.parent = None
        self._image_remove(child, parent)
        return parent

    def replace_child(self, parent: VTNode, old: VTNode, new: VTNode) -> None:
        """Substitute ``old`` by detached ``new`` at the same position."""
        if new.parent is not None:
            raise InvariantViolationError("replace_child", "replacement already attached")
        idx = parent.children.index(old)
        parent.children[idx] = new
        old.parent = None
        new.parent = parent
        self._image_remove(old, parent)
        self._image_add(new, parent)

    def splice(self, helper: VTHelper) -> Optional[VTNode]:
        """Remove a one-child helper, connecting its child to its parent.

        This is the paper's ``bypass`` operation / the "short-circuit" of a
        redundant virtual node whose degree dropped from 3 to 2.  Returns
        the child that moved up.  The helper is destroyed.
        """
        if len(helper.children) != 1:
            raise InvariantViolationError(
                "bypass-precondition", f"helper has {len(helper.children)} children"
            )
        child = helper.children[0]
        parent = helper.parent
        self.detach(child)
        if parent is not None:
            idx = parent.children.index(helper)
            self.detach(helper)
            self.attach(child, parent, index=idx)
        else:
            if self._root is helper:
                self._root = child
        self.destroy_helper(helper)
        return child

    def transfer_role(self, helper: VTHelper, new_sim: int) -> int:
        """Change the simulator of ``helper`` (heir / leaf-will inheritance).

        Returns the previous simulator id.  The image edges incident to the
        helper are re-registered under the new owner.
        """
        if new_sim not in self._reals:
            raise NodeNotFoundError(new_sim, "transfer_role")
        if new_sim in self._role:
            raise InvariantViolationError(
                "one-role-per-node", f"{new_sim} already simulates a helper"
            )
        old_sim = helper.sim
        incident: List[VTNode] = list(helper.children)
        if helper.parent is not None:
            incident.append(helper.parent)
        for other in incident:
            self._image_remove(helper, other)
        if old_sim in self._role and self._role[old_sim] is helper:
            del self._role[old_sim]
        helper.sim = new_sim
        self._role[new_sim] = helper
        for other in incident:
            self._image_add(helper, other)
        return old_sim

    def destroy_helper(self, helper: VTHelper) -> None:
        """Remove a detached, childless helper from the structure."""
        if helper.children or helper.parent is not None:
            raise InvariantViolationError("destroy-helper", "still attached")
        sim = helper.sim
        if sim in self._role and self._role[sim] is helper:
            del self._role[sim]
        if self._root is helper:
            self._root = None
        del self._helpers[helper.hid]

    def remove_real(self, real: VTReal) -> None:
        """Remove a detached, childless, role-free real node."""
        if real.children or real.parent is not None:
            raise InvariantViolationError("remove-real", "still attached")
        if real.nid in self._role:
            raise InvariantViolationError("remove-real", "still simulating a helper")
        if self._root is real:
            self._root = None
        del self._reals[real.nid]

    # ------------------------------------------------------------------
    # image bookkeeping
    # ------------------------------------------------------------------
    def _image_add(self, a: VTNode, b: VTNode) -> None:
        u, v = owner_of(a), owner_of(b)
        if u == v:
            return
        key = edge_key(u, v)
        self._image[key] += 1
        if self._image[key] == 1 and self.recorder is not None:
            self.recorder(EdgeAdded(*key))

    def _image_remove(self, a: VTNode, b: VTNode) -> None:
        u, v = owner_of(a), owner_of(b)
        if u == v:
            return
        key = edge_key(u, v)
        count = self._image.get(key, 0)
        if count <= 0:
            raise InvariantViolationError("image-refcount", f"edge {key} not present")
        if count == 1:
            del self._image[key]
            if self.recorder is not None:
                self.recorder(EdgeRemoved(*key))
        else:
            self._image[key] = count - 1

    # ------------------------------------------------------------------
    # validation / inspection
    # ------------------------------------------------------------------
    def iter_nodes(self) -> Iterator[VTNode]:
        """Preorder traversal from the root."""
        if self._root is None:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def check(self, branching: int = 2) -> None:
        """Validate every virtual-tree invariant; raise on violation."""
        if self._root is None:
            if self._reals or self._helpers:
                raise InvariantViolationError("vt-empty", "nodes exist but no root")
            return
        if self._root.parent is not None:
            raise InvariantViolationError("vt-root", "root has a parent")
        seen_real: Set[int] = set()
        seen_help: Set[int] = set()
        for node in self.iter_nodes():
            for child in node.children:
                if child.parent is not node:
                    raise InvariantViolationError("vt-parent-link", repr(node))
            if isinstance(node, VTReal):
                if node.nid in seen_real:
                    raise InvariantViolationError("vt-dup", f"real {node.nid}")
                seen_real.add(node.nid)
            else:
                assert isinstance(node, VTHelper)
                if node.hid in seen_help:
                    raise InvariantViolationError("vt-dup", f"helper {node.hid}")
                seen_help.add(node.hid)
                if node.sim not in self._reals:
                    raise InvariantViolationError(
                        "vt-sim-alive", f"helper {node.hid} simulated by dead {node.sim}"
                    )
                if self._role.get(node.sim) is not node:
                    raise InvariantViolationError(
                        "vt-role-map", f"role map disagrees for sim {node.sim}"
                    )
                if not 1 <= len(node.children) <= branching:
                    raise InvariantViolationError(
                        "vt-helper-arity",
                        f"helper {node.hid} has {len(node.children)} children",
                    )
        if seen_real != set(self._reals):
            raise InvariantViolationError(
                "vt-reachability", f"unreachable reals: {set(self._reals) - seen_real}"
            )
        if seen_help != set(self._helpers):
            raise InvariantViolationError(
                "vt-reachability", f"unreachable helpers: {set(self._helpers) - seen_help}"
            )
        # image counter must match a from-scratch recomputation
        recomputed: Counter = Counter()
        for node in self.iter_nodes():
            for child in node.children:
                u, v = owner_of(node), owner_of(child)
                if u != v:
                    recomputed[edge_key(u, v)] += 1
        if recomputed != self._image:
            raise InvariantViolationError("image-counter", "incremental image diverged")

    def render(self) -> str:
        """ASCII rendering of the virtual tree (for examples and debugging).

        Real nodes render as their id; helpers as ``[sim]`` (deployed) or
        ``<sim>`` (ready heirs), mirroring Figure 1's circles vs rectangle.
        """
        lines: List[str] = []

        def walk(node: VTNode, prefix: str, last: bool) -> None:
            if isinstance(node, VTReal):
                label = str(node.nid)
            else:
                assert isinstance(node, VTHelper)
                label = f"<{node.sim}>" if node.is_ready_heir else f"[{node.sim}]"
            connector = "" if not prefix else ("`- " if last else "|- ")
            lines.append(prefix + connector + label)
            child_prefix = prefix + ("   " if last or not prefix else "|  ")
            for i, child in enumerate(node.children):
                walk(child, child_prefix, i == len(node.children) - 1)

        if self._root is None:
            return "(empty)"
        walk(self._root, "", True)
        return "\n".join(lines)


NodeKind = Union[VTReal, VTHelper]
