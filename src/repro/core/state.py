"""Node states with respect to helper duties (Figure 3 of the paper).

A node is **waiting** when it simulates no helper, **ready** when it
simulates a one-child helper (an heir holding an unexecuted inheritance —
``isreadyheir``), and **deployed** when it simulates a helper with two or
more children (``ishelper`` with full duties).

The paper's flags map onto these states as::

    WAIT      ishelper = False   isreadyheir = False
    READY     ishelper = True    isreadyheir = True
    DEPLOYED  ishelper = True    isreadyheir = False

Transitions (Figure 3): WAIT -> READY, WAIT -> DEPLOYED, READY -> DEPLOYED,
READY -> READY (an heir re-inheriting another ready role), DEPLOYED ->
DEPLOYED (leaf-will inheritance), and any state -> WAIT when a helper is
short-circuited.  The test-suite checks that only these transitions occur.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class HelperState(enum.Enum):
    """Wait / Ready / Deployed (Figure 3)."""

    WAIT = "wait"
    READY = "ready"
    DEPLOYED = "deployed"


#: Transitions allowed by the protocol (Figure 3, plus self-loops for
#: role-preserving bookkeeping and the short-circuit back edges).
ALLOWED_TRANSITIONS = frozenset(
    {
        (HelperState.WAIT, HelperState.WAIT),
        (HelperState.WAIT, HelperState.READY),
        (HelperState.WAIT, HelperState.DEPLOYED),
        (HelperState.READY, HelperState.READY),
        (HelperState.READY, HelperState.DEPLOYED),
        (HelperState.READY, HelperState.WAIT),
        (HelperState.DEPLOYED, HelperState.DEPLOYED),
        (HelperState.DEPLOYED, HelperState.WAIT),
        (HelperState.DEPLOYED, HelperState.READY),
    }
)


@dataclass(frozen=True)
class NodeState:
    """Snapshot of one node's Table-1 flags and helper links."""

    nid: int
    state: HelperState
    is_helper: bool
    is_ready_heir: bool
    helper_children: int

    @property
    def flags(self) -> str:
        return f"ishelper={self.is_helper} isreadyheir={self.is_ready_heir}"
