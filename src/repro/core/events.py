"""Event records produced while healing.

Every structural action taken by a healing engine is recorded as a small
immutable event.  The per-deletion :class:`HealReport` aggregates them and is
the unit the harness, the tests and the benchmarks consume: it says which
image edges appeared/disappeared, which helper roles moved, and how much
(simulated) communication the repair needed.

The sequential engine synthesizes message counts from the events using the
same accounting the distributed runtime measures for real, which lets tests
cross-check the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Container, FrozenSet, Iterable, List, Tuple

from .errors import DuplicateNodeError, NodeNotFoundError


def edge_key(u: int, v: int) -> Tuple[int, int]:
    """Canonical undirected edge representation (sorted pair)."""
    return (u, v) if u <= v else (v, u)


def normalize_wave(
    joiners: Iterable[Tuple[int, int]],
    known_ids: Container[int],
    alive: Container[int],
) -> List[Tuple[int, int]]:
    """Validate a batch insert wave *before* anything mutates.

    The wave rules every runtime shares: at least one joiner, no
    duplicate ids within the wave, ids never reused (``known_ids``),
    and every attachment point alive before the wave — in particular
    not itself a joiner of the same wave.  Raising here keeps
    ``insert_batch`` atomic: a rejected wave leaves no partial state.
    """
    wave = [(int(n), int(a)) for n, a in joiners]
    if not wave:
        raise ValueError("insert_batch needs at least one joiner")
    wave_ids = [n for n, _ in wave]
    if len(set(wave_ids)) != len(wave_ids):
        dup = next(x for i, x in enumerate(wave_ids) if x in wave_ids[:i])
        raise DuplicateNodeError(dup)
    for nid, attach_to in wave:
        if nid in known_ids:
            raise DuplicateNodeError(nid)
        if attach_to in wave_ids:
            raise NodeNotFoundError(
                attach_to, "insert_batch attach point joins in the same wave"
            )
        if attach_to not in alive:
            raise NodeNotFoundError(attach_to, "insert_batch attach point")
    return wave


@dataclass(frozen=True)
class EdgeAdded:
    """An image-graph edge appeared during a repair."""

    u: int
    v: int

    def key(self) -> Tuple[int, int]:
        return edge_key(self.u, self.v)


@dataclass(frozen=True)
class EdgeRemoved:
    """An image-graph edge disappeared (endpoint died or helper bypassed)."""

    u: int
    v: int

    def key(self) -> Tuple[int, int]:
        return edge_key(self.u, self.v)


@dataclass(frozen=True)
class NodeInserted:
    """A new real node joined the network, attached to a live node."""

    nid: int
    attached_to: int


@dataclass(frozen=True)
class HelperCreated:
    """A real node began simulating a fresh helper node."""

    sim: int
    helper_id: int
    ready_heir: bool


@dataclass(frozen=True)
class HelperDestroyed:
    """A helper node was destroyed (bypassed, spliced, or its region died)."""

    sim: int
    helper_id: int


@dataclass(frozen=True)
class HelperTransferred:
    """An existing helper changed simulator (heir/leaf-will inheritance)."""

    helper_id: int
    old_sim: int
    new_sim: int


@dataclass(frozen=True)
class WillPortionSent:
    """A node re-sent one will portion to one child stand-in."""

    owner: int
    recipient: int


@dataclass(frozen=True)
class LeafWillSent:
    """A tree leaf re-deposited its leaf will with its parent stand-in."""

    owner: int
    recipient: int


@dataclass
class HealReport:
    """Everything that happened during one churn round (delete or insert).

    Attributes
    ----------
    deleted:
        The real node removed by the adversary this round (``-1`` for an
        insertion round).
    was_internal:
        True if the node had child slots (an RT was deployed).
    edges_added / edges_removed:
        Image-graph edge deltas (canonical sorted pairs).
    events:
        The full ordered event log for the round.
    messages_per_node:
        Synthesized count of protocol messages each involved node sent
        (events attributed to their acting node).
    inserted:
        The node that joined this round (``None`` for a deletion round
        and for batch waves of more than one joiner).
    attached_to:
        The live node the inserted node attached to.
    inserted_batch:
        For a batch insert wave: the ``(joiner, attach_to)`` pairs applied
        this round, in order (empty otherwise).
    """

    deleted: int
    was_internal: bool = False
    edges_added: FrozenSet[Tuple[int, int]] = frozenset()
    edges_removed: FrozenSet[Tuple[int, int]] = frozenset()
    events: tuple = ()
    messages_per_node: dict = field(default_factory=dict)
    inserted: "int | None" = None
    attached_to: "int | None" = None
    inserted_batch: Tuple[Tuple[int, int], ...] = ()

    @property
    def is_insertion(self) -> bool:
        return self.inserted is not None or bool(self.inserted_batch)

    def net_edge_deltas(self) -> Tuple[FrozenSet[Tuple[int, int]], FrozenSet[Tuple[int, int]]]:
        """Net ``(added, removed)`` replayed from the chronological log.

        The summary sets are *disjointified* (``added - removed`` /
        ``removed - added``), so an edge that toggles an odd number of
        times inside one heal — removed, re-added, removed again —
        vanishes from both and the summary under-reports the net delta.
        Replaying the raw event order recovers it: an edge's net effect
        is decided by its first and last transition (first=removed says
        it existed before the round, last=removed says it is gone after,
        so R…R nets to removed; A…A nets to added; mixed ends cancel).

        Summary entries with no recorded edge events are trusted as-is —
        healers may append post-hoc bookkeeping outside the event log
        (e.g. :class:`~repro.baselines.forgiving.ForgivingTreeHealer`
        dropping a victim's surviving non-tree extras), and the
        baselines build reports from plain graph diffs with no events.
        """
        first: dict = {}
        last: dict = {}
        for event in self.events:
            if isinstance(event, (EdgeAdded, EdgeRemoved)):
                key = event.key()
                first.setdefault(key, event)
                last[key] = event
        added = {
            k
            for k in last
            if isinstance(first[k], EdgeAdded) and isinstance(last[k], EdgeAdded)
        }
        removed = {
            k
            for k in last
            if isinstance(first[k], EdgeRemoved) and isinstance(last[k], EdgeRemoved)
        }
        added |= {k for k in self.edges_added if k not in first}
        removed |= {k for k in self.edges_removed if k not in first}
        return frozenset(added), frozenset(removed)

    @property
    def total_messages(self) -> int:
        return sum(self.messages_per_node.values())

    @property
    def max_messages_per_node(self) -> int:
        if not self.messages_per_node:
            return 0
        return max(self.messages_per_node.values())

    def describe(self) -> str:
        """One-line human readable summary (used by examples)."""
        if len(self.inserted_batch) > 1:
            return (
                f"inserted wave of {len(self.inserted_batch)}: "
                f"+{len(self.edges_added)} edges, "
                f"{self.total_messages} msgs (max/node {self.max_messages_per_node})"
            )
        if self.is_insertion:
            return (
                f"inserted {self.inserted} under {self.attached_to}: "
                f"+{len(self.edges_added)} edges, "
                f"{self.total_messages} msgs (max/node {self.max_messages_per_node})"
            )
        kind = "internal" if self.was_internal else "leaf"
        return (
            f"deleted {self.deleted} ({kind}): +{len(self.edges_added)} edges, "
            f"-{len(self.edges_removed)} edges, "
            f"{self.total_messages} msgs (max/node {self.max_messages_per_node})"
        )
