"""Churn events: the Insert/Delete stream the churn model is played over.

The Delete and Repair game of the source paper (Model 2.1) only removes
nodes.  Its follow-up, *The Forgiving Graph* (Hayes, Saia, Trehan, PODC
2009), generalizes the adversary to interleaved **insertions and
deletions**: each round the adversary either deletes a node or inserts a
new node attached to a live one, and the healer must keep its guarantees
against the *ideal graph* (the graph with every demanded insertion applied
and no healing needed).  This module defines that event vocabulary; churn
adversaries (:mod:`repro.adversaries.churn`) produce streams of these
events and :func:`repro.harness.run_churn_campaign` consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union


@dataclass(frozen=True)
class Insert:
    """A new node ``nid`` joins, attached to live node ``attach_to``."""

    nid: int
    attach_to: int

    def describe(self) -> str:
        return f"insert {self.nid} under {self.attach_to}"


@dataclass(frozen=True)
class Delete:
    """The adversary deletes live node ``nid``."""

    nid: int

    def describe(self) -> str:
        return f"delete {self.nid}"


@dataclass(frozen=True)
class InsertWave:
    """A batch of joiners lands in a single round (amortized heal cost).

    ``joiners`` is an ordered tuple of ``(nid, attach_to)`` pairs; every
    attachment point must be alive *before* the wave (a joiner cannot
    attach to a same-wave joiner), matching the batch-insert semantics of
    the engines (:meth:`repro.core.forgiving_tree.ForgivingTree.insert_batch`).
    """

    joiners: Tuple[Tuple[int, int], ...]

    def describe(self) -> str:
        return f"insert wave of {len(self.joiners)}"


#: One round of the churn game.
ChurnEvent = Union[Insert, Delete, InsertWave]
