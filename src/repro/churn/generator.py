"""Workload generation for long-horizon soaks: diurnal churn with acts.

The recorded-trace tooling (:mod:`repro.churn.traces`) replays *finite*
event lists; a 500k-event soak wants an **unbounded, deterministic
stream** shaped like a real P2P network's day — the setting the paper
opens with.  A :class:`TraceGenerator` produces that stream from a
:class:`GeneratorConfig` alone:

* **Diurnal arrivals** — joins are a non-homogeneous Poisson process
  whose rate swings sinusoidally over a virtual day
  (``base_rate * (1 + amplitude * sin)``), the classic login curve.
* **Heavy-tail sessions** — every node draws a bounded-Pareto lifetime
  at join; deaths pop off a time-ordered heap, so most sessions are
  short while a fat tail stays for the whole campaign (the observed
  P2P session-length shape).
* **Acts** — scheduled scenario beats generalizing the 2007 Skype
  outage trace (:func:`~repro.churn.traces.synthetic_skype_outage`):
  an :class:`Outage` kills a fraction of the network in a burst and
  floods rejoins behind it; a :class:`FlashCrowd` lands a join storm
  as :class:`~repro.churn.InsertWave` batches.

Determinism is the contract that makes checkpoints work: the stream is
a pure function of the config (the generator never looks at the healed
graph — it tracks its own alive set), so a resumed campaign rebuilds
the generator and :meth:`~TraceGenerator.skip`\\ s to the checkpoint's
event index to see *exactly* the events the killed run would have seen.
:class:`GeneratorChurnAdversary` adapts the stream to the harness's
:class:`~repro.adversaries.churn.ChurnAdversary` interface.
"""

from __future__ import annotations

import heapq
import math
import random
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.errors import ReproError
from ..graphs.adjacency import Graph
from .events import ChurnEvent, Delete, Insert, InsertWave


@dataclass(frozen=True)
class FlashCrowd:
    """A join storm: ``joiners`` nodes land in waves of ``wave``.

    Triggered when the stream reaches event index ``at_event``; each
    wave is one :class:`~repro.churn.InsertWave` event (one amortized
    heal per attachment point), attachment points drawn uniformly from
    the survivors at emission time.
    """

    at_event: int
    joiners: int
    wave: int = 16

    def __post_init__(self) -> None:
        if self.joiners < 1 or self.wave < 1:
            raise ReproError("flash crowd needs joiners >= 1 and wave >= 1")


@dataclass(frozen=True)
class Outage:
    """A correlated failure: a burst of deletes, then a rejoin flood.

    ``fraction`` of the alive set (at trigger time) is killed in
    consecutive delete events; ``rejoin_fraction`` of the victims'
    count then rejoins as fresh nodes — the login storm that made the
    real 2007 outage self-sustaining.
    """

    at_event: int
    fraction: float = 0.3
    rejoin_fraction: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction < 1.0:
            raise ReproError("outage fraction must be in (0, 1)")
        if not 0.0 <= self.rejoin_fraction <= 2.0:
            raise ReproError("rejoin fraction must be in [0, 2]")


@dataclass(frozen=True)
class GeneratorConfig:
    """Everything a :class:`TraceGenerator` stream is a function of.

    Virtual time is measured in hours; ``base_rate`` is mean joins per
    hour at the diurnal midline — default None derives the *stationary*
    rate ``n0 / mean_lifetime``, so the population hovers around
    ``n0`` instead of collapsing toward an unrelated equilibrium
    (a soak's peak-RSS-stays-flat claim needs a stationary workload).
    Session lengths are bounded Pareto (``lifetime_shape`` alpha,
    support ``[lifetime_min, lifetime_max]`` hours).  ``min_alive`` is
    the survival floor: the generator forces joins rather than let the
    network shrink below it.
    """

    n0: int = 1000
    seed: int = 0
    base_rate: Optional[float] = None
    diurnal_amplitude: float = 0.6
    period_hours: float = 24.0
    lifetime_shape: float = 1.2
    lifetime_min: float = 0.05
    lifetime_max: float = 72.0
    min_alive: int = 8
    acts: Tuple[object, ...] = ()

    def __post_init__(self) -> None:
        if self.n0 < 2:
            raise ReproError("generator needs n0 >= 2")
        if self.base_rate is not None and self.base_rate <= 0:
            raise ReproError("base_rate must be positive (or None)")
        if self.period_hours <= 0:
            raise ReproError("period_hours must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ReproError("diurnal amplitude must be in [0, 1)")
        if not 0 < self.lifetime_min < self.lifetime_max:
            raise ReproError("need 0 < lifetime_min < lifetime_max")
        if self.lifetime_shape <= 0:
            raise ReproError("lifetime shape must be positive")
        if self.min_alive < 2:
            raise ReproError("min_alive must be >= 2")
        for act in self.acts:
            if not isinstance(act, (FlashCrowd, Outage)):
                raise ReproError(f"unknown act {act!r}")

    def mean_lifetime(self) -> float:
        """E[session length] of the bounded-Pareto draw, in hours."""
        a, lo, hi = self.lifetime_shape, self.lifetime_min, self.lifetime_max
        if a == 1.0:
            return lo * hi / (hi - lo) * math.log(hi / lo)
        return (
            (lo ** a) / (1.0 - (lo / hi) ** a)
            * (a / (a - 1.0))
            * (lo ** (1.0 - a) - hi ** (1.0 - a))
        )

    def stationary_rate(self) -> float:
        """Joins/hour balancing deaths at population ``n0`` (Little's
        law: alive* = rate * mean session length)."""
        return self.n0 / self.mean_lifetime()


class TraceGenerator:
    """The deterministic event stream (module docstring).

    :meth:`build_initial` returns the starting random recursive tree;
    :meth:`next` yields churn events forever (the stream never runs
    dry: the survival floor forces joins).  The stream is a pure
    function of the config — :meth:`skip` fast-forwards a fresh
    generator to any event index, the resume primitive.
    """

    def __init__(self, config: GeneratorConfig):
        self.config = config
        self.reset()

    def reset(self) -> None:
        cfg = self.config
        self._rng = random.Random(cfg.seed)
        self.t = 0.0
        self.emitted = 0
        self._next_id = cfg.n0
        # Alive set as swap-pop list + index map: O(1) insert, remove,
        # and uniform sample — the same layout the flat engine uses.
        # At n = 100k+, sorting the alive set per join would dominate
        # the whole soak.
        self._alive_list: List[int] = list(range(cfg.n0))
        self._alive_idx: Dict[int, int] = {
            nid: i for i, nid in enumerate(self._alive_list)
        }
        self._deaths: List[Tuple[float, int]] = []
        self._pending: deque = deque()  # queued act steps, FIFO
        self._acts = sorted(
            self.config.acts, key=lambda a: (a.at_event, repr(a))
        )
        self._initial = self._build_tree()
        for nid in range(cfg.n0):
            self._schedule_death(nid)

    # -- alive-set bookkeeping --------------------------------------------
    @property
    def alive_count(self) -> int:
        return len(self._alive_list)

    def _is_alive(self, nid: int) -> bool:
        return nid in self._alive_idx

    def _add_alive(self, nid: int) -> None:
        self._alive_idx[nid] = len(self._alive_list)
        self._alive_list.append(nid)

    def _remove_alive(self, nid: int) -> None:
        i = self._alive_idx.pop(nid)
        last = self._alive_list.pop()
        if last != nid:
            self._alive_list[i] = last
            self._alive_idx[last] = i

    # -- construction ------------------------------------------------------
    def _build_tree(self) -> Graph:
        """Random recursive tree over ``0..n0-1`` (node i attaches to a
        uniform earlier node) — the join process's own stationary shape."""
        graph: Dict[int, Set[int]] = {0: set()}
        for nid in range(1, self.config.n0):
            parent = self._rng.randrange(nid)
            graph[nid] = {parent}
            graph[parent].add(nid)
        return graph

    def build_initial(self) -> Graph:
        """The starting overlay (copy — callers mutate their graphs)."""
        return {k: set(v) for k, v in self._initial.items()}

    # -- the stochastic machinery -----------------------------------------
    def _rate(self) -> float:
        cfg = self.config
        base = (
            cfg.base_rate
            if cfg.base_rate is not None
            else cfg.stationary_rate()
        )
        swing = math.sin(2.0 * math.pi * self.t / cfg.period_hours)
        return base * (1.0 + cfg.diurnal_amplitude * swing)

    def _lifetime(self) -> float:
        """Bounded-Pareto session length (inverse-CDF draw)."""
        cfg = self.config
        a = cfg.lifetime_shape
        u = self._rng.random()
        ratio = (cfg.lifetime_min / cfg.lifetime_max) ** a
        return cfg.lifetime_min * (1.0 - u * (1.0 - ratio)) ** (-1.0 / a)

    def _schedule_death(self, nid: int) -> None:
        heapq.heappush(self._deaths, (self.t + self._lifetime(), nid))

    def _fresh_id(self) -> int:
        nid = self._next_id
        self._next_id += 1
        return nid

    def _attach_point(self) -> int:
        return self._alive_list[self._rng.randrange(len(self._alive_list))]

    def _join(self) -> Insert:
        attach = self._attach_point()
        nid = self._fresh_id()
        self._add_alive(nid)
        self._schedule_death(nid)
        return Insert(nid, attach)

    def _trigger_acts(self) -> None:
        while self._acts and self._acts[0].at_event <= self.emitted:
            act = self._acts.pop(0)
            if isinstance(act, Outage):
                alive = sorted(self._alive_list)
                k = min(
                    int(len(alive) * act.fraction),
                    len(alive) - self.config.min_alive,
                )
                victims = self._rng.sample(alive, max(k, 0))
                self._pending.extend(("del", v) for v in victims)
                rejoins = int(len(victims) * act.rejoin_fraction)
                self._pending.extend(("ins",) for _ in range(rejoins))
            else:
                assert isinstance(act, FlashCrowd)
                left = act.joiners
                while left > 0:
                    size = min(act.wave, left)
                    self._pending.append(("wave", size))
                    left -= size

    def _pop_pending(self) -> Optional[ChurnEvent]:
        while self._pending:
            step = self._pending.popleft()
            if step[0] == "del":
                nid = step[1]
                if not self._is_alive(nid):
                    continue  # a scheduled death beat the outage to it
                self._remove_alive(nid)
                return Delete(nid)
            if step[0] == "ins":
                return self._join()
            assert step[0] == "wave"
            # Attach points all drawn before any joiner lands: a wave
            # joiner may not attach to a same-wave joiner.
            attaches = [self._attach_point() for _ in range(step[1])]
            joiners = []
            for attach in attaches:
                nid = self._fresh_id()
                joiners.append((nid, attach))
                self._add_alive(nid)
                self._schedule_death(nid)
            return InsertWave(tuple(joiners))
        return None

    # -- the stream --------------------------------------------------------
    def next(self) -> ChurnEvent:
        """The next event (never raises — the stream is unbounded)."""
        self._trigger_acts()
        event = self._pop_pending()
        if event is None:
            event = self._steady_state()
        self.emitted += 1
        return event

    def _steady_state(self) -> ChurnEvent:
        # Drop already-dead heap entries (killed early by an outage).
        while self._deaths and not self._is_alive(self._deaths[0][1]):
            heapq.heappop(self._deaths)
        gap = self._rng.expovariate(self._rate())
        next_death = self._deaths[0][0] if self._deaths else math.inf
        if (
            next_death <= self.t + gap
            and len(self._alive_list) > self.config.min_alive
        ):
            when, nid = heapq.heappop(self._deaths)
            self.t = max(self.t, when)
            self._remove_alive(nid)
            return Delete(nid)
        self.t += gap
        return self._join()

    def skip(self, k: int) -> None:
        """Fast-forward ``k`` events (discarded) — the resume primitive.

        A fresh generator with the same config, skipped to event index
        ``e``, continues with exactly the events the original stream
        produced after ``e`` — no generator state ever needs
        serializing."""
        for _ in range(k):
            self.next()

    def __iter__(self):
        while True:
            yield self.next()


class GeneratorChurnAdversary:
    """:class:`TraceGenerator` as a harness adversary.

    The generator is omniscient-free: it never reads the healer (its
    own alive set is authoritative, and it built the initial overlay),
    which is exactly what makes the stream skippable on resume.
    ``reset()`` rewinds to the configured start — optionally to a
    checkpoint's event index via ``start_at``.
    """

    def __init__(self, generator: TraceGenerator, start_at: int = 0):
        self.generator = generator
        self.start_at = start_at
        self.name = "generator"

    def next_event(self, healer) -> ChurnEvent:
        return self.generator.next()

    def reset(self) -> None:
        self.generator.reset()
        if self.start_at:
            self.generator.skip(self.start_at)
