"""Recorded churn traces: load, save, and synthesize them.

A :class:`ChurnTrace` is a finite, fully specified event sequence — the
deterministic replay format used by
:class:`repro.adversaries.TraceReplayAdversary`.  Traces serialize to a
line-oriented text format (one event per line) so recorded campaigns can
be versioned next to the benchmarks that consume them::

    # comment lines and blanks are ignored
    ins <nid> <attach_to>
    del <nid>

:func:`synthetic_skype_outage` generates the motivating scenario of the
paper's introduction as a churn trace: a P2P overlay growing by joins,
then the August 2007-style outage wave in which a large fraction of the
network drops out in a burst, followed by a rejoin flood (the "login
storm" that made the real outage self-sustaining).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from ..core.errors import ReproError
from ..graphs.adjacency import Graph
from ..graphs.generators import two_level_star
from .events import ChurnEvent, Delete, Insert


@dataclass
class ChurnTrace:
    """A named, replayable sequence of churn events."""

    events: List[ChurnEvent] = field(default_factory=list)
    name: str = "trace"

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def n_inserts(self) -> int:
        return sum(1 for e in self.events if isinstance(e, Insert))

    @property
    def n_deletes(self) -> int:
        return sum(1 for e in self.events if isinstance(e, Delete))

    # -- serialization ----------------------------------------------------
    def to_lines(self) -> List[str]:
        out = [f"# churn trace: {self.name} "
               f"({self.n_inserts} inserts, {self.n_deletes} deletes)"]
        for event in self.events:
            if isinstance(event, Insert):
                out.append(f"ins {event.nid} {event.attach_to}")
            else:
                out.append(f"del {event.nid}")
        return out

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(self.to_lines()) + "\n")

    @classmethod
    def from_lines(cls, lines: Iterable[str], name: str = "trace") -> "ChurnTrace":
        events: List[ChurnEvent] = []
        for lineno, raw in enumerate(lines, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if parts[0] == "ins" and len(parts) == 3:
                events.append(Insert(int(parts[1]), int(parts[2])))
            elif parts[0] == "del" and len(parts) == 2:
                events.append(Delete(int(parts[1])))
            else:
                raise ReproError(f"bad trace line {lineno}: {line!r}")
        return cls(events=events, name=name)

    @classmethod
    def load(cls, path: str) -> "ChurnTrace":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_lines(fh, name=path)

    # -- validation -------------------------------------------------------
    def validate(self, initial_nodes: Iterable[int]) -> None:
        """Check the trace is replayable from ``initial_nodes``: every
        deletion kills a live node, every insertion uses a fresh id and a
        live attachment point, and the network never empties mid-trace."""
        alive: Set[int] = set(initial_nodes)
        ever: Set[int] = set(alive)
        for i, event in enumerate(self.events):
            if isinstance(event, Insert):
                if event.nid in ever:
                    raise ReproError(f"event {i}: id {event.nid} reused")
                if event.attach_to not in alive:
                    raise ReproError(
                        f"event {i}: attach point {event.attach_to} not alive"
                    )
                alive.add(event.nid)
                ever.add(event.nid)
            else:
                if event.nid not in alive:
                    raise ReproError(f"event {i}: victim {event.nid} not alive")
                alive.discard(event.nid)
            if not alive:
                raise ReproError(f"event {i}: network emptied mid-trace")


def synthetic_skype_outage(
    hubs: int = 8,
    leaves_per_hub: int = 12,
    join_wave: int = 30,
    outage_fraction: float = 0.4,
    rejoin_fraction: float = 0.75,
    seed: int = 2007,
) -> Tuple[Graph, ChurnTrace]:
    """The 2007 Skype-outage scenario as (initial overlay, churn trace).

    Three phases, mirroring the event's published post-mortems:

    1. **Steady growth** — ``join_wave`` peers join, preferring hubs
       (each joiner attaches to a random node, weighted by degree).
    2. **Outage wave** — ``outage_fraction`` of the network drops out in
       one burst, highest-degree first (the supernodes rebooted first).
    3. **Login storm** — ``rejoin_fraction`` of the lost population
       rejoins in a flood, attaching to random survivors.

    The trace is validated before returning, so replaying it against any
    healer is guaranteed well-formed.
    """
    overlay = two_level_star(hubs, leaves_per_hub)
    rng = random.Random(seed)
    events: List[ChurnEvent] = []
    degree: Dict[int, int] = {n: len(s) for n, s in overlay.items()}
    alive: Set[int] = set(overlay)
    next_id = max(overlay) + 1

    def weighted_pick() -> int:
        nodes = sorted(alive)
        weights = [degree[n] + 1 for n in nodes]
        return rng.choices(nodes, weights=weights, k=1)[0]

    def join(target: int) -> None:
        nonlocal next_id
        events.append(Insert(next_id, target))
        alive.add(next_id)
        degree[next_id] = 1
        degree[target] += 1
        next_id += 1

    # phase 1: steady growth
    for _ in range(join_wave):
        join(weighted_pick())

    # phase 2: the outage wave (hubs first)
    n_out = int(outage_fraction * len(alive))
    victims = sorted(alive, key=lambda x: (-degree[x], x))[:n_out]
    for v in victims:
        if len(alive) <= 2:
            break
        events.append(Delete(v))
        alive.discard(v)
        degree.pop(v, None)

    # phase 3: the login storm
    for _ in range(int(rejoin_fraction * n_out)):
        join(rng.choice(sorted(alive)))

    trace = ChurnTrace(events=events, name="synthetic-skype-outage")
    trace.validate(overlay)
    return overlay, trace
