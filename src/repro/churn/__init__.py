"""Churn subsystem: node insertions as first-class events.

The source paper's game only deletes nodes; real peer-to-peer networks
(the paper's motivating setting) also see joins.  This package carries
the event vocabulary and trace tooling of the extended game — the model
of *The Forgiving Graph* (PODC 2009):

* :class:`Insert` / :class:`Delete` — the two churn event kinds.
* :class:`ChurnTrace` — recorded event sequences with load/save and
  validation, replayable via
  :class:`repro.adversaries.TraceReplayAdversary`.
* :func:`synthetic_skype_outage` — the motivating 2007 outage scenario
  as a ready-made trace (used by ``examples/skype_outage.py``).
* :class:`TraceGenerator` — the unbounded deterministic stream for
  long-horizon soaks: diurnal arrival rates, bounded-Pareto session
  lengths, and scheduled :class:`FlashCrowd`/:class:`Outage` acts
  generalizing the skype trace; skippable to any event index, which is
  what makes checkpoint resume possible (:mod:`repro.soak`).

The engines consume these events natively:
:meth:`repro.core.forgiving_tree.ForgivingTree.insert` places a joiner
as a real leaf under its attachment point and a fresh slot of its will,
:meth:`repro.distributed.DistributedForgivingTree.insert` runs the same
join as a counted message handshake, and every baseline healer accepts
:meth:`~repro.baselines.base.Healer.insert`.  Campaigns over mixed
streams run through :func:`repro.harness.run_churn_campaign`.
"""

from .events import ChurnEvent, Delete, Insert, InsertWave
from .generator import (
    FlashCrowd,
    GeneratorChurnAdversary,
    GeneratorConfig,
    Outage,
    TraceGenerator,
)
from .traces import ChurnTrace, synthetic_skype_outage

__all__ = [
    "ChurnEvent",
    "ChurnTrace",
    "Delete",
    "FlashCrowd",
    "GeneratorChurnAdversary",
    "GeneratorConfig",
    "Insert",
    "InsertWave",
    "Outage",
    "TraceGenerator",
    "synthetic_skype_outage",
]
