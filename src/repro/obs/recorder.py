"""The flight recorder: a ring buffer of recent structured events.

Long campaigns cannot afford to journal every event — but when an
invariant or cross-validation fails after hours of churn, the question
is always "what just happened?".  The :class:`FlightRecorder` keeps the
last ``capacity`` structured events in O(capacity) memory; on failure
the transport mirror dumps the ring to JSONL and appends the covered
**event-id range** to the exception, so a failure in event 748 213 of a
soak bisects to a replayable window instead of a shrug.

Event ids are assigned monotonically at :meth:`record` time and never
reused; the dump names ``first_id..last_id`` plus how many earlier
events the ring already evicted.  Records are JSON-able by construction
(the caller passes only ints/floats/strings/lists).
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import deque
from typing import Deque, Optional, Tuple


class FlightRecorder:
    """Fixed-capacity ring of ``(event_id, kind, clock, payload)`` rows."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("recorder capacity must be >= 1")
        self.capacity = capacity
        self._ring: Deque[Tuple[int, str, float, dict]] = deque(
            maxlen=capacity
        )
        self.recorded = 0  # total ever recorded (>= len(ring))

    def record(self, kind: str, clock: float = 0.0, **payload) -> int:
        """Append one event; returns its id.  O(1), bounded memory."""
        eid = self.recorded
        self.recorded += 1
        self._ring.append((eid, kind, clock, payload))
        return eid

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def id_range(self) -> Optional[Tuple[int, int]]:
        """``(first, last)`` event ids currently held, or None if empty."""
        if not self._ring:
            return None
        return (self._ring[0][0], self._ring[-1][0])

    def dump(self, path: Optional[str] = None, label: str = "flight") -> str:
        """Write the ring to JSONL (one event per line, a header first).

        Default path: ``<tempdir>/<label>-<first>-<last>.jsonl``.
        Returns the path written.
        """
        rng = self.id_range
        first, last = rng if rng is not None else (0, -1)
        if path is None:
            path = os.path.join(
                tempfile.gettempdir(), f"{label}-{first}-{last}.jsonl"
            )
        with open(path, "w") as fh:
            fh.write(
                json.dumps(
                    {
                        "recorder": label,
                        "capacity": self.capacity,
                        "recorded_total": self.recorded,
                        "evicted": self.recorded - len(self._ring),
                        "first_id": first,
                        "last_id": last,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
            for eid, kind, clock, payload in self._ring:
                fh.write(
                    json.dumps(
                        {"id": eid, "kind": kind, "clock": clock, **payload},
                        sort_keys=True,
                        default=str,
                    )
                    + "\n"
                )
        return path

    def bisection_note(self, path: str) -> str:
        """The one-line pointer appended to a failure's message."""
        rng = self.id_range
        if rng is None:
            return f" [flight recorder: empty; dumped to {path}]"
        return (
            f" [flight recorder: events {rng[0]}..{rng[1]} "
            f"({len(self._ring)} of {self.recorded} recorded) "
            f"dumped to {path}]"
        )
