"""The ``obs=`` harness knob: spec, live state, and campaign summary.

Mirrors the ``metrics=``/``transport=`` pattern: campaigns take
``obs=None`` (off, the default — every hook collapses to a no-op),
a mode string, or an :class:`ObsSpec`:

* ``"metrics"`` — the streaming :class:`~repro.obs.metrics.MetricsRegistry`
  only (counters/gauges/histograms, O(1) memory).
* ``"trace"`` — metrics + the causal :class:`~repro.obs.trace.Tracer`
  (requires an async transport: the spans are the kernel's heals).
* ``"profile"`` — metrics + per-phase wall/virtual timers.
* ``"audit"`` — metrics + the guarantee auditor (requires an async
  transport with ``record_log``: the harness runs the per-heal
  certificates of :mod:`repro.audit` post-quiescence and raises on any
  violation, with a small flight recorder armed for the dump).
* ``"full"`` — everything, plus a 4096-event flight recorder.

The resolved spec becomes an :class:`ObsState` (the live instruments the
mirror and kernel write into) and finally an :class:`ObsSummary` on
:attr:`CampaignResult.obs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from .metrics import MetricsRegistry
from .profile import PhaseProfiler
from .recorder import FlightRecorder
from .trace import NO_TRACE, Tracer

#: ``obs=`` mode strings accepted by the campaign runners.
OBS_MODES = ("none", "metrics", "trace", "profile", "audit", "full")


@dataclass
class ObsSpec:
    """Configuration of a campaign's observability stack.

    ``trace_path``/``trace_jsonl_path`` export the trace at campaign end
    (Chrome trace-event JSON / JSONL); without a path the tracer stays
    in memory on :attr:`ObsSummary.tracer` for programmatic export.
    ``recorder`` is the flight-recorder ring capacity (0 = off);
    ``recorder_dir`` overrides where failure dumps land (default: the
    system temp dir).
    """

    trace: bool = False
    trace_path: Optional[str] = None
    trace_jsonl_path: Optional[str] = None
    metrics: bool = True
    profile: bool = False
    audit: bool = False
    audit_strict: bool = True
    recorder: int = 0
    recorder_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.recorder < 0:
            raise ValueError("recorder capacity must be >= 0")
        if (self.trace_path or self.trace_jsonl_path) and not self.trace:
            raise ValueError("trace_path given but trace=False")


ObsInput = Union[None, str, ObsSpec]


def resolve_obs(obs: ObsInput) -> Optional[ObsSpec]:
    """Normalize the ``obs=`` knob into a spec (or None = off)."""
    if obs is None or obs == "none":
        return None
    if isinstance(obs, ObsSpec):
        return obs
    if obs == "metrics":
        return ObsSpec()
    if obs == "trace":
        return ObsSpec(trace=True)
    if obs == "profile":
        return ObsSpec(profile=True)
    if obs == "audit":
        return ObsSpec(audit=True, recorder=512)
    if obs == "full":
        return ObsSpec(trace=True, profile=True, audit=True, recorder=4096)
    raise ValueError(f"unknown obs {obs!r} (one of {OBS_MODES} or an ObsSpec)")


class ObsState:
    """The live instruments a campaign threads through its components."""

    def __init__(self, spec: ObsSpec):
        self.spec = spec
        self.tracer: Union[Tracer, "NO_TRACE.__class__"] = (
            Tracer() if spec.trace else NO_TRACE
        )
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if spec.metrics else None
        )
        self.profiler: Optional[PhaseProfiler] = (
            PhaseProfiler() if spec.profile else None
        )
        self.recorder: Optional[FlightRecorder] = (
            FlightRecorder(spec.recorder) if spec.recorder else None
        )

    def finish(self) -> "ObsSummary":
        """Close out the campaign: validate spans, export, summarize."""
        trace_path = None
        jsonl_path = None
        tracer: Optional[Tracer] = None
        trace_events = 0
        if self.spec.trace:
            assert isinstance(self.tracer, Tracer)
            tracer = self.tracer
            tracer.check_closed()
            trace_events = tracer.n_records
            if self.spec.trace_path:
                tracer.export_chrome(self.spec.trace_path)
                trace_path = self.spec.trace_path
            if self.spec.trace_jsonl_path:
                tracer.export_jsonl(self.spec.trace_jsonl_path)
                jsonl_path = self.spec.trace_jsonl_path
        return ObsSummary(
            spec=self.spec,
            metrics=self.metrics.snapshot() if self.metrics else {},
            profile=(
                self.profiler.deterministic_summary() if self.profiler else {}
            ),
            timing=self.profiler.timing_summary() if self.profiler else {},
            trace_events=trace_events,
            trace_path=trace_path,
            trace_jsonl_path=jsonl_path,
            recorder_events=self.recorder.recorded if self.recorder else 0,
            tracer=tracer,
        )


@dataclass
class ObsSummary:
    """What the observability stack saw, on :attr:`CampaignResult.obs`.

    ``tracer`` is the live :class:`Tracer` (when tracing was on) for
    programmatic export/inspection after the campaign; everything else
    is plain JSON-able data.

    Split by determinism: :meth:`deterministic` (metrics, profile call
    counts/virtual times, trace/recorder event counts) is a pure function
    of the campaign seed and is asserted byte-identical across same-seed
    runs; ``timing`` holds the wall-clock half of the profile and is the
    only machine-dependent field.
    """

    spec: ObsSpec
    metrics: Dict[str, object] = field(default_factory=dict)
    profile: Dict[str, Dict[str, float]] = field(default_factory=dict)
    timing: Dict[str, Dict[str, float]] = field(default_factory=dict)
    trace_events: int = 0
    trace_path: Optional[str] = None
    trace_jsonl_path: Optional[str] = None
    recorder_events: int = 0
    tracer: Optional[Tracer] = None

    def deterministic(self) -> Dict[str, object]:
        """The seed-deterministic summary as a JSON-able dict.

        Two same-seed campaigns must serialize this identically
        (``json.dumps(..., sort_keys=True)`` byte-for-byte); ``timing``
        and the file paths are deliberately absent."""
        return {
            "metrics": self.metrics,
            "profile": self.profile,
            "trace_events": self.trace_events,
            "recorder_events": self.recorder_events,
        }
