"""Streaming telemetry: sinks, sampled tracing, incremental metrics.

Everything in :mod:`repro.obs` so far accumulates in memory and exports
at campaign end — the right shape for bounded experiments, the wrong
one for soaks that run hundreds of thousands of events over hours.
This module is the streaming half: instruments flush *incrementally*
through a :class:`TelemetrySink`, so memory stays O(window) no matter
how long the campaign runs.

* :class:`JsonlSink` — append-one-JSON-object-per-line with size-based
  rotation (``telemetry.jsonl`` -> ``telemetry.jsonl.1`` -> ...).
* :class:`MemorySink` — keep records in a list (tests, small runs).
* :class:`WindowedSink` — aggregate numeric record fields per window
  and forward one summary record per (kind, window) on :meth:`roll`.
* :class:`MetricsStreamer` — periodic :class:`MetricsRegistry` flushes:
  each one carries the cumulative snapshot plus the counter/histogram
  deltas since the previous flush.
* :class:`SamplingTracer` — the :class:`~repro.obs.trace.Tracer` for
  unbounded campaigns: head-samples one heal in ``sample_every``,
  force-keeps heals flagged by the caller (SLO breaches), streams each
  kept heal's complete span tree to the sink when its root closes, and
  purges closed spans so resident span memory is bounded by the number
  of heals *in flight*, not the campaign length.

The record dialect is exactly :meth:`Tracer.export_jsonl`'s (field
names from :data:`~repro.obs.trace.JSONL_KEYS`), so downstream tooling
— ``benchmarks/validate_trace.py --jsonl``, grep, jq — reads batch and
streamed traces identically; :func:`validate_trace_jsonl` is the
well-formedness check for that dialect.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry
from .trace import (
    CONTROL_TRACK,
    JSONL_KEYS,
    PID_PROTOCOL,
    Tracer,
    record_to_dict,
)


class TelemetrySink:
    """The sink protocol: structured records in, storage format out.

    ``emit(kind, record)`` takes a JSON-able dict; ``kind`` is the
    stream name (``"trace"``, ``"metrics"``, ``"window"``, ``"alert"``,
    ...) so one sink can multiplex every instrument.  Subclasses
    override both methods; the base class is also usable directly as a
    null sink (drops everything, counts it).
    """

    def __init__(self) -> None:
        self.emitted = 0

    def emit(self, kind: str, record: dict) -> None:
        self.emitted += 1

    def close(self) -> None:
        pass

    def __enter__(self) -> "TelemetrySink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MemorySink(TelemetrySink):
    """Keeps every ``(kind, record)`` in a list — tests and small runs."""

    def __init__(self) -> None:
        super().__init__()
        self.records: List[Tuple[str, dict]] = []

    def emit(self, kind: str, record: dict) -> None:
        super().emit(kind, record)
        self.records.append((kind, record))

    def by_kind(self, kind: str) -> List[dict]:
        return [r for k, r in self.records if k == kind]


class JsonlSink(TelemetrySink):
    """Append records as JSONL, rotating when the file gets big.

    Each line is ``{"kind": ..., **record}`` with sorted keys and fixed
    separators, so same-seed campaigns produce byte-identical telemetry
    (as long as the records themselves are deterministic).  When the
    active file would exceed ``max_bytes`` it is renamed to
    ``<path>.1``, ``<path>.2``, ... (ascending = older is *lower*) and
    a fresh file is started; :attr:`paths` lists every file written, in
    chronological order, active file last.
    """

    def __init__(self, path: str, max_bytes: int = 64 * 1024 * 1024):
        super().__init__()
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.path = path
        self.max_bytes = max_bytes
        self.rotations = 0
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh = open(path, "w")
        self._size = 0

    @property
    def paths(self) -> List[str]:
        return [
            f"{self.path}.{i}" for i in range(1, self.rotations + 1)
        ] + [self.path]

    def emit(self, kind: str, record: dict) -> None:
        super().emit(kind, record)
        line = (
            json.dumps(
                {"kind": kind, **record},
                sort_keys=True,
                separators=(",", ":"),
                default=str,
            )
            + "\n"
        )
        if self._size and self._size + len(line) > self.max_bytes:
            self._rotate()
        self._fh.write(line)
        self._size += len(line)

    def _rotate(self) -> None:
        self._fh.close()
        self.rotations += 1
        os.replace(self.path, f"{self.path}.{self.rotations}")
        self._fh = open(self.path, "w")
        self._size = 0

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class WindowedSink(TelemetrySink):
    """Aggregate numeric record fields per window; forward summaries.

    Between :meth:`roll` calls, every numeric field of every emitted
    record folds into O(1)-memory per-(kind, field) aggregates
    (count/sum/min/max).  ``roll(label)`` emits one ``"window"`` record
    per kind to the downstream sink (alphabetical kind order, stable)
    and resets.  The full-fidelity records themselves are *not*
    forwarded — pair with a :class:`JsonlSink` on the side when both
    views are wanted.
    """

    def __init__(self, downstream: Optional[TelemetrySink] = None):
        super().__init__()
        self.downstream = downstream if downstream is not None else MemorySink()
        # (kind, field) -> [count, total, min, max]
        self._agg: Dict[Tuple[str, str], List[float]] = {}
        self._counts: Dict[str, int] = {}
        self.windows = 0

    def emit(self, kind: str, record: dict) -> None:
        super().emit(kind, record)
        self._counts[kind] = self._counts.get(kind, 0) + 1
        for field, value in record.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            acc = self._agg.get((kind, field))
            if acc is None:
                self._agg[(kind, field)] = [1, value, value, value]
            else:
                acc[0] += 1
                acc[1] += value
                if value < acc[2]:
                    acc[2] = value
                if value > acc[3]:
                    acc[3] = value

    def roll(self, label: object = None) -> List[dict]:
        """Close the window: one summary record per kind, then reset."""
        out: List[dict] = []
        for kind in sorted(self._counts):
            fields: Dict[str, dict] = {}
            for (k, field), (cnt, total, lo, hi) in sorted(self._agg.items()):
                if k != kind:
                    continue
                fields[field] = {
                    "count": cnt,
                    "mean": total / cnt,
                    "min": lo,
                    "max": hi,
                }
            summary = {
                "window": self.windows,
                "label": label,
                "of_kind": kind,
                "records": self._counts[kind],
                "fields": fields,
            }
            self.downstream.emit("window", summary)
            out.append(summary)
        self._agg.clear()
        self._counts.clear()
        self.windows += 1
        return out

    def close(self) -> None:
        self.downstream.close()


class MetricsStreamer:
    """Flush a :class:`MetricsRegistry` through a sink, with deltas.

    Each :meth:`flush` emits one ``"metrics"`` record holding the
    cumulative snapshot plus, for every integer-valued counter and every
    histogram, the delta since the previous flush — the window view a
    dashboard plots without re-deriving it.  O(registry) per flush,
    O(1) extra memory between flushes (just the previous scalar values).
    """

    def __init__(self, registry: MetricsRegistry, sink: TelemetrySink):
        self.registry = registry
        self.sink = sink
        self.flushes = 0
        self._prev: Dict[str, object] = {}

    def flush(self, label: object = None) -> dict:
        snapshot = self.registry.snapshot()
        delta: Dict[str, object] = {}
        for name, value in snapshot.items():
            if isinstance(value, int):
                delta[name] = value - int(self._prev.get(name, 0))
                self._prev[name] = value
            elif isinstance(value, dict) and "count" in value:
                prev = self._prev.get(name, {"count": 0, "total": 0.0})
                delta[name] = {
                    "count": value["count"] - prev["count"],
                    "total": value.get("total", 0.0) - prev["total"],
                }
                self._prev[name] = {
                    "count": value["count"],
                    "total": value.get("total", 0.0),
                }
        record = {
            "seq": self.flushes,
            "label": label,
            "cumulative": snapshot,
            "delta": delta,
        }
        self.sink.emit("metrics", record)
        self.flushes += 1
        return record


class SamplingTracer(Tracer):
    """Head-sampling, sink-streaming tracer with bounded span memory.

    The sampling unit is the **heal**: a parentless span opened on the
    protocol pid (:data:`~repro.obs.trace.PID_PROTOCOL`) roots a heal's
    span tree, and the keep/drop decision is made once, at that root
    (*head* sampling), so a kept heal is always complete — root, layer
    sub-spans, per-message delivery instants — and a dropped one costs
    only the well-formedness bookkeeping.  Every ``sample_every``-th
    root is kept; :meth:`force_keep` arms keeping the next ``n`` roots
    unconditionally, which is how the SLO watchdog pins the heals around
    a breach into the trace.

    Kept records buffer per root and flush to the sink (kind
    ``"trace"``, :meth:`~repro.obs.trace.Tracer.export_jsonl` dialect)
    when the root closes; the closed subtree is then purged from the
    in-memory span table, so resident spans are bounded by the heals in
    flight.  Control-plane records (any pid other than
    :data:`~repro.obs.trace.PID_PROTOCOL`) stream through immediately —
    lease transitions and driver marks are cheap and always wanted.
    """

    def __init__(
        self,
        sink: TelemetrySink,
        sample_every: int = 100,
        max_spans: int = 100_000,
    ):
        super().__init__(max_spans=max_spans)
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sink = sink
        self.sample_every = sample_every
        self.roots_seen = 0
        self.roots_kept = 0
        self.roots_dropped = 0
        self.flushed_records = 0
        self._seen_records = 0
        self._forced = 0
        self._root_of: Dict[int, int] = {}  # sid -> its heal root sid
        self._members: Dict[int, List[int]] = {}  # root -> subtree sids
        self._buffers: Dict[int, List[dict]] = {}  # kept root -> records
        self._tid_root: Dict[Tuple[int, int], int] = {}  # track -> open root

    # -- sampling control --------------------------------------------------
    def force_keep(self, n: int = 1) -> None:
        """Arm unconditional keeping of the next ``n`` heal roots."""
        if n < 0:
            raise ValueError("n must be >= 0")
        self._forced += n

    @property
    def n_records(self) -> int:
        return self._seen_records

    # -- interception ------------------------------------------------------
    def _take(self) -> tuple:
        """Pop the record the base class just appended."""
        self._seen_records += 1
        return self._records.pop()

    def _stream(self, rec: tuple) -> None:
        self.sink.emit("trace", record_to_dict(rec))
        self.flushed_records += 1

    def begin(self, name, cat, ts, track, args=None, parent=None) -> int:
        sid = super().begin(name, cat, ts, track, args=args, parent=parent)
        rec = self._take()
        if track[0] != PID_PROTOCOL:
            self._stream(rec)
            return sid
        if parent is None:
            self.roots_seen += 1
            keep = self._forced > 0 or (
                (self.roots_seen - 1) % self.sample_every == 0
            )
            if self._forced:
                self._forced -= 1
            root = sid
            self._members[root] = [sid]
            if keep:
                self.roots_kept += 1
                self._buffers[root] = [record_to_dict(rec)]
            else:
                self.roots_dropped += 1
            self._tid_root[track] = root
        else:
            root = self._root_of.get(parent, parent)
            self._members.setdefault(root, []).append(sid)
            if root in self._buffers:
                self._buffers[root].append(record_to_dict(rec))
        self._root_of[sid] = root
        return sid

    def end(self, sid, ts, args=None) -> None:
        span = self._spans.get(sid)
        super().end(sid, ts, args=args)
        rec = self._take()
        if span is None or span.pid != PID_PROTOCOL:
            self._stream(rec)
            return
        root = self._root_of.get(sid, sid)
        buffer = self._buffers.get(root)
        if buffer is not None:
            buffer.append(record_to_dict(rec))
        if sid == root:
            if buffer is not None:
                for out in self._buffers.pop(root):
                    self.sink.emit("trace", out)
                    self.flushed_records += 1
            self._purge(root)

    def instant(self, name, cat, ts, track=CONTROL_TRACK, args=None) -> None:
        super().instant(name, cat, ts, track=track, args=args)
        rec = self._take()
        if track[0] != PID_PROTOCOL:
            self._stream(rec)
            return
        root = self._tid_root.get(track)
        if root is not None and root in self._buffers:
            self._buffers[root].append(record_to_dict(rec))

    def counter(self, name, ts, values, track=(PID_PROTOCOL, 0)) -> None:
        super().counter(name, ts, values, track=track)
        rec = self._take()
        if track[0] != PID_PROTOCOL:
            self._stream(rec)
            return
        root = self._tid_root.get(track)
        if root is not None and root in self._buffers:
            self._buffers[root].append(record_to_dict(rec))

    def meta(self, name, value, track) -> None:
        super().meta(name, value, track)
        self._stream(self._take())

    # -- memory bound ------------------------------------------------------
    def _purge(self, root: int) -> None:
        """Drop a closed heal's subtree from the in-memory span table."""
        for member in self._members.pop(root, []):
            self._spans.pop(member, None)
            self._root_of.pop(member, None)
        for track, open_root in list(self._tid_root.items()):
            if open_root == root:
                del self._tid_root[track]


def validate_trace_jsonl(text: str) -> int:
    """Validate a JSONL trace (batch export or streamed sink output).

    Accepts both dialects: raw :meth:`Tracer.export_jsonl` lines and
    :class:`JsonlSink` lines (``kind == "trace"`` carrying the same
    fields; other kinds — metrics, windows, alerts — are counted but
    only checked for JSON well-formedness).  Trace records must carry
    the exact field set of their phase (:data:`JSONL_KEYS`), every E
    must close a B it has seen with a non-earlier timestamp, and no
    span may be left open.  Returns the total line count; raises
    ``ValueError`` naming the offending line on any violation.
    """
    open_spans: Dict[int, float] = {}
    count = 0
    for i, line in enumerate(text.splitlines()):
        if not line.strip():
            continue
        count += 1
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {i}: not JSON ({exc})") from None
        if not isinstance(rec, dict):
            raise ValueError(f"line {i}: not a JSON object")
        kind = rec.pop("kind", "trace")
        if kind != "trace":
            continue
        ph = rec.get("ph")
        if ph not in JSONL_KEYS:
            raise ValueError(f"line {i}: unknown phase {ph!r}")
        expected = set(JSONL_KEYS[ph])
        if set(rec) != expected:
            raise ValueError(
                f"line {i}: fields {sorted(rec)} != expected "
                f"{sorted(expected)} for phase {ph!r}"
            )
        if ph == "B":
            open_spans[rec["sid"]] = rec["ts"]
        elif ph == "E":
            sid = rec["sid"]
            if sid not in open_spans:
                raise ValueError(f"line {i}: E for unopened span {sid}")
            if rec["ts"] < open_spans.pop(sid):
                raise ValueError(
                    f"line {i}: span {sid} closes before it opens"
                )
    if open_spans:
        raise ValueError(
            f"spans never closed: {sorted(open_spans)[:6]}"
        )
    return count
