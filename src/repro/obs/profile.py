"""Per-phase profiling hooks for the hot paths.

A :class:`PhaseProfiler` accumulates wall-clock nanoseconds (and,
where the caller has one, virtual-time durations) per named phase:
message-handler dispatch by message type (the portion walks and RT
rebuilds run inside those handlers), lease grant cascades, footprint
extraction, barrier drains, the sequential oracle's heals.  Turned on
via the harness ``obs=`` knob (``ObsSpec(profile=True)``); when off the
components hold ``profiler=None`` and the hot paths skip the timing
calls behind a single ``is None`` test, so disabled overhead is one
pointer comparison.

Wall timings are *reported only in the profile summary* — never in the
exported trace, which must stay a deterministic function of the seed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List


class PhaseProfiler:
    """Accumulates ``phase -> (calls, wall ns, virtual time)``."""

    __slots__ = ("_calls", "_wall_ns", "_virtual")

    def __init__(self) -> None:
        self._calls: Dict[str, int] = {}
        self._wall_ns: Dict[str, int] = {}
        self._virtual: Dict[str, float] = {}

    # -- recording ---------------------------------------------------------
    def add(self, phase: str, wall_ns: int) -> None:
        """Credit one timed call to ``phase`` (the inlined hot-path form:
        callers bracket the work with ``perf_counter_ns`` themselves)."""
        self._calls[phase] = self._calls.get(phase, 0) + 1
        self._wall_ns[phase] = self._wall_ns.get(phase, 0) + wall_ns

    def add_virtual(self, phase: str, dt: float) -> None:
        """Credit virtual-time duration to ``phase`` (kernel clock units)."""
        self._virtual[phase] = self._virtual.get(phase, 0.0) + dt

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Coarse-phase timing for non-hot-path callers."""
        t0 = time.perf_counter_ns()
        try:
            yield
        finally:
            self.add(name, time.perf_counter_ns() - t0)

    # -- output ------------------------------------------------------------
    def summary(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {calls, wall_s, us_per_call[, virtual]}}``, every
        phase that recorded anything, keys sorted for stable output."""
        phases = sorted(
            set(self._calls) | set(self._virtual)
        )
        out: Dict[str, Dict[str, float]] = {}
        for p in phases:
            calls = self._calls.get(p, 0)
            ns = self._wall_ns.get(p, 0)
            entry: Dict[str, float] = {
                "calls": calls,
                "wall_s": ns / 1e9,
                "us_per_call": (ns / calls / 1e3) if calls else 0.0,
            }
            if p in self._virtual:
                entry["virtual"] = self._virtual[p]
            out[p] = entry
        return out

    def top(self, k: int = 10) -> List[str]:
        """The ``k`` costliest phases by wall time, formatted."""
        ranked = sorted(
            self._wall_ns.items(), key=lambda kv: kv[1], reverse=True
        )[:k]
        return [
            f"{p}: {ns / 1e6:.2f}ms / {self._calls.get(p, 0)} calls"
            for p, ns in ranked
        ]

    def __len__(self) -> int:
        return len(set(self._calls) | set(self._virtual))
