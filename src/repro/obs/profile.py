"""Per-phase profiling hooks for the hot paths.

A :class:`PhaseProfiler` accumulates wall-clock nanoseconds (and,
where the caller has one, virtual-time durations) per named phase:
message-handler dispatch by message type (the portion walks and RT
rebuilds run inside those handlers), lease grant cascades, footprint
extraction, barrier drains, the sequential oracle's heals.  Turned on
via the harness ``obs=`` knob (``ObsSpec(profile=True)``); when off the
components hold ``profiler=None`` and the hot paths skip the timing
calls behind a single ``is None`` test, so disabled overhead is one
pointer comparison.

Wall timings are *reported only in the profile summary* — never in the
exported trace, which must stay a deterministic function of the seed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List


class PhaseProfiler:
    """Accumulates ``phase -> (calls, wall ns, virtual time)``."""

    __slots__ = ("_calls", "_wall_ns", "_virtual")

    def __init__(self) -> None:
        self._calls: Dict[str, int] = {}
        self._wall_ns: Dict[str, int] = {}
        self._virtual: Dict[str, float] = {}

    # -- recording ---------------------------------------------------------
    def add(self, phase: str, wall_ns: int) -> None:
        """Credit one timed call to ``phase`` (the inlined hot-path form:
        callers bracket the work with ``perf_counter_ns`` themselves)."""
        self._calls[phase] = self._calls.get(phase, 0) + 1
        self._wall_ns[phase] = self._wall_ns.get(phase, 0) + wall_ns

    def add_virtual(self, phase: str, dt: float) -> None:
        """Credit virtual-time duration to ``phase`` (kernel clock units)."""
        self._virtual[phase] = self._virtual.get(phase, 0.0) + dt

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Coarse-phase timing for non-hot-path callers."""
        t0 = time.perf_counter_ns()
        try:
            yield
        finally:
            self.add(name, time.perf_counter_ns() - t0)

    # -- output ------------------------------------------------------------
    def deterministic_summary(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {calls[, virtual]}}`` — the seed-deterministic half.

        Call counts and virtual-time durations are pure functions of the
        campaign seed; two same-seed runs produce byte-identical output
        here.  Wall-clock quantities live in :meth:`timing_summary` so a
        soak summary diff only shows real behavioral drift."""
        phases = sorted(set(self._calls) | set(self._virtual))
        out: Dict[str, Dict[str, float]] = {}
        for p in phases:
            entry: Dict[str, float] = {"calls": self._calls.get(p, 0)}
            if p in self._virtual:
                entry["virtual"] = self._virtual[p]
            out[p] = entry
        return out

    def timing_summary(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {wall_s, us_per_call}}`` — the wall-clock half.

        Machine- and load-dependent; kept apart from
        :meth:`deterministic_summary` so determinism assertions and
        summary diffs never trip over nanoseconds."""
        phases = sorted(set(self._calls) | set(self._virtual))
        out: Dict[str, Dict[str, float]] = {}
        for p in phases:
            calls = self._calls.get(p, 0)
            ns = self._wall_ns.get(p, 0)
            out[p] = {
                "wall_s": ns / 1e9,
                "us_per_call": (ns / calls / 1e3) if calls else 0.0,
            }
        return out

    def summary(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {calls, wall_s, us_per_call[, virtual]}}``, every
        phase that recorded anything, keys sorted for stable output.

        The merged view; prefer :meth:`deterministic_summary` /
        :meth:`timing_summary` where the split matters."""
        det = self.deterministic_summary()
        tim = self.timing_summary()
        out: Dict[str, Dict[str, float]] = {}
        for p in det:
            entry = dict(det[p])
            entry["wall_s"] = tim[p]["wall_s"]
            entry["us_per_call"] = tim[p]["us_per_call"]
            if "virtual" in entry:  # keep the historical key order
                virtual = entry.pop("virtual")
                entry["virtual"] = virtual
            out[p] = entry
        return out

    def top(self, k: int = 10) -> List[str]:
        """The ``k`` costliest phases by wall time, formatted."""
        ranked = sorted(
            self._wall_ns.items(), key=lambda kv: kv[1], reverse=True
        )[:k]
        return [
            f"{p}: {ns / 1e6:.2f}ms / {self._calls.get(p, 0)} calls"
            for p, ns in ranked
        ]

    def __len__(self) -> int:
        return len(set(self._calls) | set(self._virtual))
