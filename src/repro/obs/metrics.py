"""Streaming metrics registry: counters, gauges, histograms.

One named bag of O(1)-memory instruments shared by the harness, the
transport mirror, the simnet kernel, and the lease layer:

* :class:`Counter` — monotone event tallies (events mirrored, barriers,
  lease grants/escalations, messages delivered).
* :class:`Gauge` — last-value-wins instantaneous readings with the peak
  tracked (in-flight heals, queue depth, current stretch).
* :class:`~repro.obs.histogram.LogHistogram` — streaming distributions
  (heal latency, lease waits, per-round message counts).

Every instrument is O(1) per update and bounded memory, so a
billion-event campaign's metrics cost does not grow with the event
count.  :meth:`MetricsRegistry.snapshot` renders the whole registry as a
deterministic JSON-able dict (names sorted); :meth:`MetricsRegistry.merge`
folds a shard's registry into another (the parallel-sweep primitive).
"""

from __future__ import annotations

from typing import Dict, Optional

from .histogram import DEFAULT_GROWTH, LogHistogram


class Counter:
    """A monotone tally."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge:
    """Last-written value, with the peak remembered."""

    __slots__ = ("value", "peak")

    def __init__(self) -> None:
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)
        if self.value > self.peak:
            self.peak = self.value


class MetricsRegistry:
    """Create-or-get named instruments (see module docstring)."""

    def __init__(self, growth: float = DEFAULT_GROWTH):
        self.growth = growth
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, LogHistogram] = {}

    # -- instruments -------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            self._check_fresh(name, self._counters)
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            self._check_fresh(name, self._gauges)
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> LogHistogram:
        h = self._histograms.get(name)
        if h is None:
            self._check_fresh(name, self._histograms)
            h = self._histograms[name] = LogHistogram(growth=self.growth)
        return h

    def _check_fresh(self, name: str, own: dict) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own and name in kind:
                raise ValueError(
                    f"metric {name!r} already registered as another type"
                )

    # -- output ------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Deterministic JSON-able view of every instrument."""
        out: Dict[str, object] = {}
        for name in sorted(self._counters):
            out[name] = self._counters[name].value
        for name in sorted(self._gauges):
            g = self._gauges[name]
            out[name] = {"value": g.value, "peak": g.peak}
        for name in sorted(self._histograms):
            out[name] = self._histograms[name].to_dict()
        return out

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in, instrument by instrument."""
        for name, c in other._counters.items():
            self.counter(name).inc(c.value)
        for name, g in other._gauges.items():
            mine = self.gauge(name)
            mine.set(g.value)
            mine.peak = max(mine.peak, g.peak)
        for name, h in other._histograms.items():
            self.histogram(name).merge(h)

    def get(self, name: str) -> Optional[object]:
        """Look up an instrument without creating it."""
        return (
            self._counters.get(name)
            or self._gauges.get(name)
            or self._histograms.get(name)
        )

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)
