"""obs — the observability substrate: tracing, metrics, profiling,
flight recording.

One package every layer feeds instead of growing its own telemetry:

* :mod:`repro.obs.trace` — causal spans over virtual time (heal ->
  layer -> per-message delivery; lease transitions as span events),
  exported as deterministic Chrome-trace JSON (Perfetto-loadable) or
  JSONL.
* :mod:`repro.obs.histogram` / :mod:`repro.obs.metrics` — streaming
  O(1)-memory counters, gauges, and log-bucketed mergeable histograms
  (the one percentile implementation in the repo).
* :mod:`repro.obs.profile` — per-phase wall/virtual-time timers on the
  hot paths.
* :mod:`repro.obs.recorder` — a ring buffer of recent structured events,
  dumped to JSONL with an event-id range on any invariant failure.

Wired into campaigns through the ``obs=`` knob on
:func:`~repro.harness.run_campaign` / ``run_churn_campaign`` — see
``docs/OBSERVABILITY.md``.
"""

from .histogram import DEFAULT_GROWTH, LogHistogram
from .metrics import Counter, Gauge, MetricsRegistry
from .profile import PhaseProfiler
from .recorder import FlightRecorder
from .spec import OBS_MODES, ObsInput, ObsSpec, ObsState, ObsSummary, resolve_obs
from .trace import (
    CONTROL_TRACK,
    NO_TRACE,
    PID_CONTROL,
    PID_PROTOCOL,
    NullTracer,
    Span,
    SpanError,
    Tracer,
    validate_chrome_trace,
)

__all__ = [
    "CONTROL_TRACK",
    "DEFAULT_GROWTH",
    "NO_TRACE",
    "OBS_MODES",
    "PID_CONTROL",
    "PID_PROTOCOL",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "LogHistogram",
    "MetricsRegistry",
    "NullTracer",
    "ObsInput",
    "ObsSpec",
    "ObsState",
    "ObsSummary",
    "PhaseProfiler",
    "Span",
    "SpanError",
    "Tracer",
    "resolve_obs",
    "validate_chrome_trace",
]
