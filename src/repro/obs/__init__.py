"""obs — the observability substrate: tracing, metrics, profiling,
flight recording.

One package every layer feeds instead of growing its own telemetry:

* :mod:`repro.obs.trace` — causal spans over virtual time (heal ->
  layer -> per-message delivery; lease transitions as span events),
  exported as deterministic Chrome-trace JSON (Perfetto-loadable) or
  JSONL.
* :mod:`repro.obs.histogram` / :mod:`repro.obs.metrics` — streaming
  O(1)-memory counters, gauges, and log-bucketed mergeable histograms
  (the one percentile implementation in the repo).
* :mod:`repro.obs.profile` — per-phase wall/virtual-time timers on the
  hot paths.
* :mod:`repro.obs.recorder` — a ring buffer of recent structured events,
  dumped to JSONL with an event-id range on any invariant failure.
* :mod:`repro.obs.stream` — the streaming half: telemetry sinks
  (rotating JSONL, windowed aggregation), incremental metrics flushes,
  and the head-sampling :class:`~repro.obs.stream.SamplingTracer` whose
  span memory is bounded by heals in flight, not campaign length.
* :mod:`repro.obs.slo` — declarative SLO budgets evaluated per window,
  escalating breaches into alerts, a flight-recorder dump, and forced
  trace sampling.

The typed event-log decoder (:func:`decode_log` / :func:`decode_record`
/ :class:`LogRecord`) is re-exported here from
:mod:`repro.audit.schema` — consumers of ``AsyncNetwork.event_log``
should use it instead of indexing tuple positions; the full trace-query
and certificate machinery lives in :mod:`repro.audit`.

Wired into campaigns through the ``obs=`` knob on
:func:`~repro.harness.run_campaign` / ``run_churn_campaign`` — see
``docs/OBSERVABILITY.md``; the soak service (:mod:`repro.soak`) drives
the streaming half over checkpointed long-horizon campaigns.
"""

from ..audit.schema import LogRecord, decode_log, decode_record
from .histogram import DEFAULT_GROWTH, LogHistogram
from .metrics import Counter, Gauge, MetricsRegistry
from .profile import PhaseProfiler
from .recorder import FlightRecorder
from .slo import (
    SLO_OPS,
    SloAlert,
    SloSpec,
    SloWatchdog,
    default_slos,
    fault_slos,
)
from .spec import OBS_MODES, ObsInput, ObsSpec, ObsState, ObsSummary, resolve_obs
from .stream import (
    JsonlSink,
    MemorySink,
    MetricsStreamer,
    SamplingTracer,
    TelemetrySink,
    WindowedSink,
    validate_trace_jsonl,
)
from .trace import (
    CONTROL_TRACK,
    DEFAULT_MAX_SPANS,
    JSONL_KEYS,
    NO_TRACE,
    PID_CONTROL,
    PID_PROTOCOL,
    NullTracer,
    Span,
    SpanError,
    Tracer,
    record_to_dict,
    validate_chrome_trace,
)

__all__ = [
    "CONTROL_TRACK",
    "DEFAULT_GROWTH",
    "DEFAULT_MAX_SPANS",
    "JSONL_KEYS",
    "NO_TRACE",
    "OBS_MODES",
    "PID_CONTROL",
    "PID_PROTOCOL",
    "SLO_OPS",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "JsonlSink",
    "LogHistogram",
    "LogRecord",
    "MemorySink",
    "MetricsRegistry",
    "MetricsStreamer",
    "NullTracer",
    "ObsInput",
    "ObsSpec",
    "ObsState",
    "ObsSummary",
    "PhaseProfiler",
    "SamplingTracer",
    "SloAlert",
    "SloSpec",
    "SloWatchdog",
    "Span",
    "SpanError",
    "TelemetrySink",
    "Tracer",
    "WindowedSink",
    "decode_log",
    "decode_record",
    "default_slos",
    "fault_slos",
    "record_to_dict",
    "resolve_obs",
    "validate_trace_jsonl",
    "validate_chrome_trace",
]
