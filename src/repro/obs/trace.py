"""Causal heal tracing: spans over virtual time, Perfetto-loadable.

The :class:`Tracer` is the flight-data view of a campaign: the simnet
kernel feeds it **spans** — one per heal (churn event), one per causal
delivery layer inside each heal, an instant event per delivered message
— and the lease/handoff layer feeds admission decisions (grant, defer,
resume, escalate) as instant events on a control track.  Span timestamps
are *virtual time* (the discrete-event clock), never wall time, so the
exported trace is a pure function of the campaign seed: the determinism
tests pin byte-identical exports across runs.

Track model (Chrome trace-event ``pid``/``tid``):

* ``pid 0`` — protocol traffic; each heal gets its own ``tid`` (the
  kernel heal id), holding the nested ``heal:* -> layer-d`` spans and
  the per-message delivery instants.
* ``pid 1, tid 0`` — the control plane: lease/handoff transitions and
  driver-level injection marks, on one shared timeline.

Exports:

* :meth:`Tracer.export_chrome` — Chrome trace-event JSON (open the file
  in https://ui.perfetto.dev, see ``docs/OBSERVABILITY.md``).  The JSON
  is rendered with sorted keys and fixed separators; same seed -> byte
  identical.
* :meth:`Tracer.export_jsonl` — one JSON object per raw record, the
  grep/stream-friendly form.

Well-formedness is enforced, not hoped for: ending an unknown or
already-closed span raises :class:`SpanError`, and
:meth:`Tracer.check_closed` (called by the harness when a campaign
finishes) raises if any span never closed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.errors import ReproError

#: Virtual-time unit -> exported microseconds (1 vt = 1 ms on screen):
#: latency models draw O(1)-unit delays, so heals render at readable ms
#: scale in Perfetto.
TIME_SCALE_US = 1000.0

#: The two fixed trace processes (chrome ``pid``).
PID_PROTOCOL = 0
PID_CONTROL = 1

#: The control plane's single thread.
CONTROL_TRACK = (PID_CONTROL, 0)

#: In-memory span-count ceiling (see :class:`Tracer` ``max_spans``).
#: Generous for bounded campaigns; long-horizon soaks must stream
#: through :class:`~repro.obs.stream.SamplingTracer` instead.
DEFAULT_MAX_SPANS = 1_000_000

#: JSONL field names per raw-record kind, shared by
#: :meth:`Tracer.export_jsonl` and the streaming sinks
#: (:mod:`repro.obs.stream`), which emit the same record dialect
#: incrementally.
JSONL_KEYS = {
    "B": ("ph", "ts", "pid", "tid", "sid", "name", "cat", "args", "parent"),
    "E": ("ph", "ts", "pid", "tid", "sid", "args"),
    "I": ("ph", "ts", "pid", "tid", "name", "cat", "args"),
    "C": ("ph", "ts", "pid", "tid", "name", "values"),
    "M": ("ph", "pid", "tid", "name", "value"),
}


def record_to_dict(rec: tuple) -> dict:
    """One raw tracer record as its JSONL dict (stable field names)."""
    return dict(zip(JSONL_KEYS[rec[0]], rec))


class SpanError(ReproError):
    """A malformed span operation (unknown id, double close, ...)."""


@dataclass
class Span:
    """One closed (or still open) span, for programmatic inspection."""

    sid: int
    name: str
    cat: str
    pid: int
    tid: int
    t0: float
    t1: Optional[float] = None
    parent: Optional[int] = None
    args: Optional[dict] = None


class NullTracer:
    """The disabled tracer: every hook is a no-op, ``enabled`` is False
    so hot paths can skip argument construction with one attribute test.
    """

    enabled = False

    def begin(self, name, cat, ts, track, args=None, parent=None) -> int:
        return -1

    def end(self, sid, ts, args=None) -> None:
        pass

    def instant(self, name, cat, ts, track=CONTROL_TRACK, args=None) -> None:
        pass

    def counter(self, name, ts, values, track=(PID_PROTOCOL, 0)) -> None:
        pass

    def meta(self, name, value, track) -> None:
        pass

    def check_closed(self) -> None:
        pass


#: The shared no-op singleton every component defaults to.
NO_TRACE = NullTracer()


class Tracer:
    """Records spans/instants/counters over virtual time (module doc)."""

    enabled = True

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        if max_spans <= 0:
            raise ValueError("max_spans must be positive")
        self.max_spans = max_spans
        self._records: List[tuple] = []
        self._next_sid = 0
        self._open: Dict[int, Span] = {}
        self._spans: Dict[int, Span] = {}

    # -- recording ---------------------------------------------------------
    def begin(
        self,
        name: str,
        cat: str,
        ts: float,
        track: Tuple[int, int],
        args: Optional[dict] = None,
        parent: Optional[int] = None,
    ) -> int:
        """Open a span; returns its id (pass to :meth:`end`).

        ``parent`` links the span into the causal tree (a layer span's
        parent is its heal span); the link is exported in ``args`` and
        drives the well-formedness checks.
        """
        if parent is not None and parent not in self._spans:
            raise SpanError(f"span {name!r}: unknown parent {parent}")
        if len(self._spans) >= self.max_spans:
            raise SpanError(
                f"tracer holds {len(self._spans)} spans (max_spans="
                f"{self.max_spans}); a campaign this long must stream "
                f"instead of accumulating — use repro.obs.SamplingTracer("
                f"sample_every=k, sink=JsonlSink(path)) to head-sample "
                f"heals and flush spans incrementally, or raise max_spans "
                f"if you really want them all in memory"
            )
        sid = self._next_sid
        self._next_sid += 1
        span = Span(
            sid=sid, name=name, cat=cat, pid=track[0], tid=track[1],
            t0=ts, parent=parent, args=args,
        )
        self._open[sid] = span
        self._spans[sid] = span
        self._records.append(("B", ts, track[0], track[1], sid, name, cat,
                              args, parent))
        return sid

    def end(self, sid: int, ts: float, args: Optional[dict] = None) -> None:
        """Close a span — exactly once, or :class:`SpanError`."""
        span = self._open.pop(sid, None)
        if span is None:
            if sid in self._spans:
                raise SpanError(f"span {sid} already closed")
            raise SpanError(f"end of unknown span {sid}")
        if ts < span.t0:
            raise SpanError(
                f"span {sid} ({span.name}) closes at {ts} before opening "
                f"at {span.t0}"
            )
        span.t1 = ts
        if args:
            span.args = {**(span.args or {}), **args}
        self._records.append(("E", ts, span.pid, span.tid, sid, args))

    def instant(
        self,
        name: str,
        cat: str,
        ts: float,
        track: Tuple[int, int] = CONTROL_TRACK,
        args: Optional[dict] = None,
    ) -> None:
        """A zero-duration event (message delivery, lease transition)."""
        self._records.append(("I", ts, track[0], track[1], name, cat, args))

    def counter(
        self,
        name: str,
        ts: float,
        values: Dict[str, float],
        track: Tuple[int, int] = (PID_PROTOCOL, 0),
    ) -> None:
        """A counter-track sample (in-flight heals, queue depth)."""
        self._records.append(("C", ts, track[0], track[1], name, dict(values)))

    def meta(self, name: str, value: str, track: Tuple[int, int]) -> None:
        """Name a process/thread (``process_name``/``thread_name``)."""
        self._records.append(("M", track[0], track[1], name, value))

    # -- inspection --------------------------------------------------------
    @property
    def spans(self) -> Dict[int, Span]:
        """Every span ever begun, by id (open spans have ``t1 None``)."""
        return dict(self._spans)

    @property
    def n_records(self) -> int:
        return len(self._records)

    def open_spans(self) -> List[Span]:
        return list(self._open.values())

    def check_closed(self) -> None:
        """Raise :class:`SpanError` if any span never closed."""
        if self._open:
            stuck = [(s.sid, s.name) for s in self._open.values()][:6]
            raise SpanError(f"spans never closed: {stuck}")

    def span_children(self) -> Dict[Optional[int], List[int]]:
        """The parent -> children index of the span tree."""
        tree: Dict[Optional[int], List[int]] = {}
        for sid, span in self._spans.items():
            tree.setdefault(span.parent, []).append(sid)
        return tree

    # -- export ------------------------------------------------------------
    def chrome_events(self) -> List[dict]:
        """The records as Chrome trace-event dicts (recording order)."""
        out: List[dict] = []
        for rec in self._records:
            kind = rec[0]
            if kind == "M":
                _, pid, tid, name, value = rec
                out.append({
                    "ph": "M", "pid": pid, "tid": tid, "name": name,
                    "args": {"name": value},
                })
                continue
            ts = round(rec[1] * TIME_SCALE_US, 3)
            if kind == "B":
                _, _, pid, tid, sid, name, cat, args, parent = rec
                ev = {"ph": "B", "ts": ts, "pid": pid, "tid": tid,
                      "name": name, "cat": cat}
                merged = dict(args or {})
                merged["sid"] = sid
                if parent is not None:
                    merged["parent"] = parent
                ev["args"] = merged
            elif kind == "E":
                _, _, pid, tid, sid, args = rec
                ev = {"ph": "E", "ts": ts, "pid": pid, "tid": tid,
                      "args": {**(args or {}), "sid": sid}}
            elif kind == "I":
                _, _, pid, tid, name, cat, args = rec
                ev = {"ph": "i", "s": "t", "ts": ts, "pid": pid, "tid": tid,
                      "name": name, "cat": cat, "args": args or {}}
            else:
                assert kind == "C"
                _, _, pid, tid, name, values = rec
                ev = {"ph": "C", "ts": ts, "pid": pid, "tid": tid,
                      "name": name, "args": values}
            out.append(ev)
        return out

    def export_chrome(self, path: Optional[str] = None) -> str:
        """Render (and optionally write) the Chrome trace-event JSON.

        Deterministic byte-for-byte: sorted keys, fixed separators,
        virtual timestamps only.
        """
        doc = {
            "displayTimeUnit": "ms",
            "traceEvents": self.chrome_events(),
        }
        text = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text)
        return text

    def export_jsonl(self, path: Optional[str] = None) -> str:
        """One JSON object per raw record — the streaming/grep form."""
        lines = [
            json.dumps(record_to_dict(rec), sort_keys=True,
                       separators=(",", ":"))
            for rec in self._records
        ]
        text = "\n".join(lines) + ("\n" if lines else "")
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text)
        return text


def validate_chrome_trace(doc: dict) -> int:
    """Validate a Chrome trace-event document; returns the event count.

    Checks the JSON-object form Perfetto's legacy importer accepts:
    ``traceEvents`` holding events whose ``ph``/``pid``/``tid``/``ts``/
    ``name`` fields are well-typed, with B/E spans properly nested per
    ``(pid, tid)`` and timestamps non-decreasing within each nest.
    Raises ``ValueError`` with the offending event on any violation.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a Chrome trace: no traceEvents key")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents is not a list")
    stacks: Dict[Tuple[int, int], List[dict]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in ("B", "E", "X", "i", "I", "C", "M", "b", "e", "n"):
            raise ValueError(f"event {i}: unknown phase {ph!r}")
        if not isinstance(ev.get("pid"), int) or not isinstance(
            ev.get("tid"), int
        ):
            raise ValueError(f"event {i}: pid/tid must be ints")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)):
                raise ValueError(f"event {i}: ts must be a number")
        if ph in ("B", "X", "i", "I", "C", "M") and not isinstance(
            ev.get("name"), str
        ):
            raise ValueError(f"event {i}: missing name")
        if "args" in ev and not isinstance(ev["args"], dict):
            raise ValueError(f"event {i}: args must be an object")
        if ph == "B":
            stacks.setdefault((ev["pid"], ev["tid"]), []).append(ev)
        elif ph == "E":
            stack = stacks.get((ev["pid"], ev["tid"]))
            if not stack:
                raise ValueError(f"event {i}: E without matching B")
            opener = stack.pop()
            if ev["ts"] < opener["ts"]:
                raise ValueError(
                    f"event {i}: span ends at {ev['ts']} before its B "
                    f"at {opener['ts']}"
                )
    unclosed = [(track, len(stack)) for track, stack in stacks.items() if stack]
    if unclosed:
        raise ValueError(f"unclosed B/E spans on tracks {unclosed[:4]}")
    return len(events)
