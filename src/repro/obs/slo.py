"""Declarative SLO watchdogs over windowed campaign telemetry.

A soak is only as good as the alarm that wakes you: the point of
running 500k events overnight is a *structured, replayable* record of
the first window where an invariant budget was blown — not a log line
scrolled out of the terminal.  An :class:`SloSpec` names one budget as
data (a dotted metric path into the window record, a comparison, a
threshold); the :class:`SloWatchdog` evaluates every spec against every
window record the soak service produces and, on breach:

* emits an :class:`SloAlert` (JSON-able; the service writes it to the
  telemetry sink under kind ``"alert"``),
* dumps the campaign's :class:`~repro.obs.recorder.FlightRecorder`
  ring **once** (first breach only — the ring covers the events leading
  into the breach; later dumps would cover later, less interesting
  windows), naming a replayable event-id window, and
* arms the :class:`~repro.obs.stream.SamplingTracer` (when one is
  attached) to force-keep the next heals, pinning the post-breach
  behavior into the trace regardless of the sampling rate.

The paper's guarantees make natural budgets — degree increase is a
*theorem* (≤ 3 for binary wills), so its spec breaching means a bug,
not load; :func:`default_slos` encodes those plus the operational
floors (heal p99 message cost, diameter stretch, lease escalation
rate, events/sec throughput).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import List, Optional, Sequence, Tuple

from .recorder import FlightRecorder

#: Comparison operators an :class:`SloSpec` may use: the observed value
#: must satisfy ``observed OP threshold`` or the window breaches.
SLO_OPS = {
    "<=": lambda v, t: v <= t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    ">": lambda v, t: v > t,
}


@dataclass(frozen=True)
class SloSpec:
    """One budget: ``metric OP threshold`` must hold every window.

    ``metric`` is a dotted path into the window record
    (``"peak_degree_increase"``, ``"messages.p99"``,
    ``"op.events_per_sec"``); windows where the path is absent are
    skipped, so one default spec set serves campaigns with and without
    leases attached.  ``min_events`` skips windows too small to judge
    (a 3-event tail window's p99 is noise).
    """

    name: str
    metric: str
    op: str
    threshold: float
    min_events: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in SLO_OPS:
            raise ValueError(
                f"slo {self.name!r}: unknown op {self.op!r} "
                f"(one of {sorted(SLO_OPS)})"
            )
        if self.min_events < 0:
            raise ValueError(f"slo {self.name!r}: min_events must be >= 0")

    def resolve(self, record: dict) -> Optional[float]:
        """The metric value in ``record``, or None when absent."""
        node: object = record
        for part in self.metric.split("."):
            if not isinstance(node, dict) or part not in node:
                return None
            node = node[part]
        return node if isinstance(node, (int, float)) else None


@dataclass
class SloAlert:
    """One breach, structured for the telemetry sink and the summary."""

    slo: str
    metric: str
    op: str
    threshold: float
    observed: float
    window: int
    first_event: int
    last_event: int
    description: str = ""

    def to_dict(self) -> dict:
        return asdict(self)


class SloWatchdog:
    """Evaluate every spec against every window; escalate on breach.

    ``recorder``/``tracer`` are optional escalation targets: the first
    breach dumps the flight-recorder ring to ``dump_dir`` (path kept on
    :attr:`dump_path` and in the alert's window record) and arms the
    sampling tracer to force-keep the next ``keep_on_breach`` heals.
    """

    def __init__(
        self,
        slos: Sequence[SloSpec],
        recorder: Optional[FlightRecorder] = None,
        tracer=None,
        keep_on_breach: int = 8,
        dump_dir: Optional[str] = None,
    ):
        self.slos = tuple(slos)
        self.recorder = recorder
        self.tracer = tracer
        self.keep_on_breach = keep_on_breach
        self.dump_dir = dump_dir
        self.alerts: List[SloAlert] = []
        self.windows_evaluated = 0
        self.dump_path: Optional[str] = None

    @property
    def breached(self) -> bool:
        return bool(self.alerts)

    def evaluate(self, record: dict) -> List[SloAlert]:
        """Judge one window record; returns (and keeps) new alerts."""
        self.windows_evaluated += 1
        window = int(record.get("window", self.windows_evaluated - 1))
        events = record.get("events")
        new: List[SloAlert] = []
        for spec in self.slos:
            if events is not None and events < spec.min_events:
                continue
            observed = spec.resolve(record)
            if observed is None:
                continue
            if SLO_OPS[spec.op](observed, spec.threshold):
                continue
            new.append(
                SloAlert(
                    slo=spec.name,
                    metric=spec.metric,
                    op=spec.op,
                    threshold=spec.threshold,
                    observed=float(observed),
                    window=window,
                    first_event=int(record.get("first_event", -1)),
                    last_event=int(record.get("last_event", -1)),
                    description=spec.description,
                )
            )
        if new:
            self._escalate()
            self.alerts.extend(new)
        return new

    def _escalate(self) -> None:
        """First-breach side effects: recorder dump + tracer arming."""
        if self.tracer is not None and hasattr(self.tracer, "force_keep"):
            self.tracer.force_keep(self.keep_on_breach)
        if self.recorder is not None and self.dump_path is None:
            path = None
            if self.dump_dir is not None:
                rng = self.recorder.id_range or (0, -1)
                path = f"{self.dump_dir}/slo-breach-{rng[0]}-{rng[1]}.jsonl"
            self.dump_path = self.recorder.dump(path, label="slo-breach")


def default_slos(
    branching: int = 2,
    p99_messages: float = 200.0,
    max_stretch: float = 64.0,
    escalation_rate: float = 0.5,
    min_events_per_sec: float = 0.0,
) -> Tuple[SloSpec, ...]:
    """The standard budget set for Forgiving Tree soaks.

    The degree budget is Theorem 1.1's: heals may raise a node's degree
    by at most 3 with binary wills (``branching + 1`` in the
    generalized engine), so that spec breaching is a *correctness* bug.
    The rest are operational: heal message p99, diameter stretch versus
    the campaign baseline, lease escalations per event (skipped when no
    lease runtime is attached), and an events/sec floor (default 0 =
    disabled — throughput is machine-dependent; set it per rig).
    """
    return (
        SloSpec(
            name="degree-budget",
            metric="peak_degree_increase",
            op="<=",
            threshold=branching + 1,
            description="Theorem 1.1: heal degree increase is bounded",
        ),
        SloSpec(
            name="heal-p99-messages",
            metric="messages.p99",
            op="<=",
            threshold=p99_messages,
            min_events=20,
            description="per-heal message cost stays flat under churn",
        ),
        SloSpec(
            name="stretch-certificate",
            metric="peak_stretch",
            op="<=",
            threshold=max_stretch,
            description="diameter stretch vs the campaign baseline",
        ),
        SloSpec(
            name="lease-escalation-rate",
            metric="op.lease_escalations_per_event",
            op="<=",
            threshold=escalation_rate,
            min_events=20,
            description="overlapping-heal admission stays mostly granted",
        ),
        SloSpec(
            name="events-per-sec-floor",
            metric="op.events_per_sec",
            op=">=",
            threshold=min_events_per_sec,
            description="throughput floor (machine-dependent; 0 = off)",
        ),
    )


def fault_slos(
    retransmissions_per_event: float = 8.0,
) -> Tuple[SloSpec, ...]:
    """Budgets for hostile-network (``faults=``) campaigns.

    Evaluated against :meth:`repro.faults.FaultSummary.window_record`
    (the soak/CI fault-smoke path feeds one record per campaign).  Two
    of the three are *correctness* budgets with zero headroom: every
    loss must have been retransmitted (``retransmit_deficit == 0``) and
    every network duplicate suppressed (``dup_leak == 0``) — a breach
    means the reliable-delivery layer leaked, not that the network was
    unlucky.  Unrepaired violations breaching means a repair pass left
    the overlay corrupt, which the transport mirror should already have
    raised on; the SLO is the independent alarm.  The retransmission
    rate is the one operational budget (tune it to the plan's drop
    probability: expected re-sends/event ≈ messages/event · p/(1-p)).
    """
    return (
        SloSpec(
            name="retransmit-parity",
            metric="faults.retransmit_deficit",
            op="<=",
            threshold=0,
            description="every lost attempt was retransmitted",
        ),
        SloSpec(
            name="dup-suppression",
            metric="faults.dup_leak",
            op="<=",
            threshold=0,
            description="every network duplicate was suppressed",
        ),
        SloSpec(
            name="repair-convergence",
            metric="faults.unrepaired_violations",
            op="<=",
            threshold=0,
            description="repair passes left no residual violations",
        ),
        SloSpec(
            name="retransmit-rate",
            metric="faults.retransmissions_per_event",
            op="<=",
            threshold=retransmissions_per_event,
            min_events=10,
            description="retransmission overhead stays budgeted",
        ),
    )
