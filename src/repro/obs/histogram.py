"""Log-bucketed streaming histograms: O(1)-memory quantiles.

Five PRs grew three separate percentile implementations (the transport
summary, the async bench, the skype example all sorted full value lists).
:class:`LogHistogram` is the one shared primitive that replaces them:

* **Streaming** — :meth:`observe` is O(1); memory is bounded by the
  number of *occupied buckets* (at the default growth, ~80 buckets per
  decade of value range), never by the number of observations, so a
  billion-event campaign keeps O(1) metric memory.
* **Log-bucketed** — bucket boundaries grow geometrically by ``growth``
  (default ``2**(1/8)``, ~9% relative width); each bucket tracks its
  count *and* sum, so the reported representative is the bucket's own
  mean — exact whenever observations land in distinct buckets, within
  the bucket's relative width otherwise.
* **Mergeable** — :meth:`merge` adds two histograms bucket-for-bucket
  (same growth required), the shard-and-combine primitive long campaigns
  and parallel sweeps need.
* **Deterministic** — quantiles use the same nearest-rank convention the
  old hand-rolled code used (``rank = round(q * (count - 1))``), so the
  transport summary and the benches report *identical* quantiles from
  one implementation (pinned by ``tests/test_obs.py``).

``min``/``max``/``mean`` are tracked exactly; only interior quantiles
are bucket-approximate.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

#: Default geometric bucket growth: 8 buckets per octave, ~9% relative
#: bucket width — the usual HDR-style accuracy/memory trade.
DEFAULT_GROWTH = 2.0 ** 0.125

#: The percentile keys every summary in the repo reports.
SUMMARY_QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))


class LogHistogram:
    """Fixed-memory log-bucketed histogram (see module docstring)."""

    __slots__ = ("growth", "_log_growth", "count", "total", "min", "max",
                 "_counts", "_sums", "_zero_count", "_zero_sum")

    def __init__(self, growth: float = DEFAULT_GROWTH):
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.growth = growth
        self._log_growth = math.log(growth)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        # bucket index -> (count, sum); values <= 0 live in the zero bucket.
        self._counts: Dict[int, int] = {}
        self._sums: Dict[int, float] = {}
        self._zero_count = 0
        self._zero_sum = 0.0

    @classmethod
    def from_values(
        cls, values: Iterable[float], growth: float = DEFAULT_GROWTH
    ) -> "LogHistogram":
        h = cls(growth=growth)
        for v in values:
            h.observe(v)
        return h

    # -- recording ---------------------------------------------------------
    def observe(self, value: float, n: int = 1) -> None:
        """Record ``value`` (``n`` times); O(1) time and memory."""
        if n <= 0:
            return
        value = float(value)
        self.count += n
        self.total += value * n
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0.0:
            self._zero_count += n
            self._zero_sum += value * n
            return
        idx = int(math.floor(math.log(value) / self._log_growth))
        self._counts[idx] = self._counts.get(idx, 0) + n
        self._sums[idx] = self._sums.get(idx, 0.0) + value * n

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other`` into this histogram (same growth required)."""
        if other.growth != self.growth:
            raise ValueError(
                f"cannot merge histograms with growths "
                f"{self.growth} and {other.growth}"
            )
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        self._zero_count += other._zero_count
        self._zero_sum += other._zero_sum
        for idx, c in other._counts.items():
            self._counts[idx] = self._counts.get(idx, 0) + c
            self._sums[idx] = self._sums.get(idx, 0.0) + other._sums[idx]

    # -- queries -----------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def n_buckets(self) -> int:
        """Occupied buckets — the histogram's actual memory footprint."""
        return len(self._counts) + (1 if self._zero_count else 0)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile (the repo's historical convention).

        ``rank = round(q * (count - 1))`` over the bucket counts in value
        order; the returned value is the holding bucket's mean, clamped
        into the exact ``[min, max]``.  Empty histogram -> 0.0.
        """
        if self.count == 0:
            return 0.0
        rank = max(0, min(self.count - 1, round(q * (self.count - 1))))
        value: Optional[float] = None
        cum = self._zero_count
        if rank < cum:
            value = self._zero_sum / self._zero_count
        else:
            for idx in sorted(self._counts):
                cum += self._counts[idx]
                if rank < cum:
                    value = self._sums[idx] / self._counts[idx]
                    break
        assert value is not None  # cum reaches self.count
        # Bucket means never leave the bucket, but float summation can
        # brush the exact extremes; clamp so p0/p100 equal min/max.
        return max(self.min or 0.0, min(self.max or 0.0, value))

    def summary(self) -> Dict[str, float]:
        """The repo-standard percentile block (p50/p90/p99/max/mean)."""
        out = {name: self.quantile(q) for name, q in SUMMARY_QUANTILES}
        out["max"] = self.max if self.max is not None else 0.0
        out["mean"] = self.mean
        return out

    def to_dict(self) -> Dict[str, object]:
        """JSON-able snapshot (buckets in value order)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            **{k: v for k, v in self.summary().items() if k.startswith("p")},
            "buckets": [
                [idx, self._counts[idx]] for idx in sorted(self._counts)
            ]
            + ([["zero", self._zero_count]] if self._zero_count else []),
        }

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LogHistogram(count={self.count}, mean={self.mean:.3g}, "
            f"buckets={self.n_buckets})"
        )
