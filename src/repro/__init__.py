"""repro — a full reproduction of *The Forgiving Tree* (PODC 2008).

A self-healing distributed data structure: under repeated adversarial node
deletions it keeps every node's degree within +3 of its original degree and
the network diameter within O(log Δ) of the original (Δ = original max
degree), using O(1) messages per node per deletion.

Public entry points
-------------------
:class:`ForgivingTree`
    The sequential reference engine over a tree.
:class:`repro.healers.ForgivingTreeHealer`
    General-graph healer (spanning tree + surviving non-tree edges) with the
    same interface as the baselines.
:mod:`repro.distributed`
    The message-passing implementation (per-node state, wills as messages,
    O(1)-latency heal rounds, full accounting) plus the distributed setup
    phase (BFS spanning tree, Cohen-style size estimation).
:mod:`repro.baselines` / :mod:`repro.adversaries`
    The naive strategies the paper's introduction rules out, and the attack
    strategies that defeat them.
:mod:`repro.harness`
    Attack/heal simulation loops, sweeps and report tables reproducing
    every theorem, figure and claim (see DESIGN.md / EXPERIMENTS.md).
:mod:`repro.churn`
    The churn model (The Forgiving Graph, PODC 2009): node insertions as
    first-class events, recorded traces, and mixed insert/delete
    campaigns (see docs/CHURN.md).
:mod:`repro.fgraph`
    The Forgiving Graph healing structure itself (PODC 2009):
    weight-balanced reconstruction trees over subtree weights for
    degree increase <= 3 *and* O(log n) stretch on general graphs under
    churn, sequential + counted-message distributed runtimes (see
    docs/FORGIVING_GRAPH.md).
:mod:`repro.simnet`
    The async runtime: a discrete-event network kernel (per-link
    latency models, scheduler adversaries, seeded determinism) both
    distributed protocols run on unmodified, plus concurrent churn —
    multiple heals in flight at once, checkpointed by quiesce barriers
    and cross-validated against the sequential engines (see
    docs/ASYNC.md).
:mod:`repro.obs`
    The observability substrate: causal tracing over the async kernel's
    virtual time (Perfetto-loadable Chrome-trace export), streaming
    O(1)-memory metrics, per-phase profilers and a crash flight
    recorder, attached to any campaign via ``obs=`` (see
    docs/OBSERVABILITY.md).
"""

from .core import (
    FlatForgivingTree,
    ForgivingTree,
    HealReport,
    HelperState,
    InvariantViolationError,
    NodeState,
    ReproError,
    SlotTree,
    VirtualTree,
)

from .fgraph import ForgivingGraph

__version__ = "1.1.0"

__all__ = [
    "FlatForgivingTree",
    "ForgivingGraph",
    "ForgivingTree",
    "HealReport",
    "HelperState",
    "InvariantViolationError",
    "NodeState",
    "ReproError",
    "SlotTree",
    "VirtualTree",
    "__version__",
]
