"""Concurrent-churn transport mirrors for campaign runners.

The harness plays every campaign against a *sequential* healer (the
oracle).  A :class:`TransportMirror` additionally drives the matching
**distributed runtime** — the Forgiving Tree protocol for
``forgiving-tree`` healers, the Forgiving Graph protocol for
``forgiving-graph`` ones — over a transport selected by a
:class:`TransportSpec`:

* ``mode="sync"`` — the classic synchronous sub-round network, one
  event at a time, quiescing per event (per-event cross-validation of
  the protocols inside any campaign).
* ``mode="async"`` — the discrete-event :class:`~repro.simnet.AsyncNetwork`
  with **concurrent churn**: each oracle event is injected while earlier
  heals are still in flight, overlapping repairs in virtual time.

Concurrent admission is governed by the *heal footprint*: the set of
nodes a repair reads or writes, extracted from the oracle's
:class:`~repro.core.events.HealReport` (every participant either sends
a message, is an endpoint of a changed image edge, or is named by a heal
event — the node-for-node tally parity between the sequential engines
and the distributed runtimes is what makes the report a sound oracle).
Two heals with disjoint footprints exchange no messages with any common
node, so their deliveries commute and any legal interleaving converges
to the sequential composition; when a new event's footprint touches an
in-flight heal, the mirror inserts a **quiesce barrier** first (the
event is serialized behind the conflicting repair — the same rule the
papers' adversary model implies, which never fires a node while its
region is still healing).

At every barrier — conflict-forced, cadence (``barrier_every``), or
final — the mirror drains the network, asserts protocol quiescence, and
cross-validates the distributed image against the oracle's healed graph
node-for-node, raising :class:`TransportDivergence` on any mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..core.errors import ReproError
from ..core.events import EdgeAdded, EdgeRemoved, HealReport
from ..graphs.spanning import bfs_tree
from .kernel import AsyncNetwork
from .latency import LatencySpec
from .scheduler import SchedulerSpec

#: ``transport=`` modes for the campaign runners (mirrors ``metrics=``).
TRANSPORT_MODES = ("none", "sync", "async")


class TransportDivergence(ReproError, AssertionError):
    """The distributed mirror's healed image diverged from the oracle."""


@dataclass
class TransportSpec:
    """Configuration of a campaign's transport mirror.

    ``seed=None`` inherits the campaign seed, so one seed reproduces the
    whole run — adversary, metrics, latency draws and scheduler choices.
    ``gap`` is the virtual inter-arrival time between injected events
    (smaller gap = more heals in flight); ``barrier_every`` is the
    quiesce/cross-validate cadence in events (0 = only conflict-forced
    and final barriers).
    """

    mode: str = "async"
    latency: LatencySpec = "uniform"
    scheduler: SchedulerSpec = "latency"
    seed: Optional[int] = None
    gap: float = 0.25
    barrier_every: int = 8
    max_depth: int = 4096
    record_samples: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("sync", "async"):
            raise ValueError(f"unknown transport mode {self.mode!r}")
        if self.gap < 0:
            raise ValueError("gap must be >= 0")
        if self.barrier_every < 0:
            raise ValueError("barrier_every must be >= 0")


TransportInput = Union[None, str, TransportSpec]


def resolve_transport(
    transport: TransportInput, seed: int = 0
) -> Optional[TransportSpec]:
    """Normalize the ``transport=`` knob into a spec (or None = off)."""
    if transport is None or transport == "none":
        return None
    if isinstance(transport, TransportSpec):
        return (
            transport if transport.seed is not None else replace(transport, seed=seed)
        )
    if transport in ("sync", "async"):
        return TransportSpec(mode=transport, seed=seed)
    raise ValueError(
        f"unknown transport {transport!r} (one of {TRANSPORT_MODES} or a TransportSpec)"
    )


def heal_footprint(report: HealReport, graph=None) -> Set[int]:
    """Every node the heal read or wrote, from the oracle's report.

    Union of: the victim / the joiners and their attachment points, every
    node that sent a message (tally keys), every endpoint of a touched
    image edge (including mid-heal transient edges, via the raw event
    log), every node named by a heal event (portion and leaf-will
    recipients, helper simulators and transfer targets) — and, when the
    post-event image ``graph`` is given, the image neighbors of every
    sender.  That last closure covers *receive-only* participants (the
    weight cascade's terminal hop, a ``ReplaceChild`` holder whose will
    changes without retransmissions): every protocol message travels
    along an image edge, so each receiver is adjacent to its sender in
    the pre-, mid- (transient, evented) or post-heal image, and the
    first two are already covered by the event endpoints.
    """
    fp: Set[int] = set()
    if report.deleted >= 0:
        fp.add(report.deleted)
    if report.inserted is not None:
        fp.add(report.inserted)
    if report.attached_to is not None:
        fp.add(report.attached_to)
    for nid, attach_to in report.inserted_batch:
        fp.add(nid)
        fp.add(attach_to)
    fp.update(report.messages_per_node)
    for u, v in report.edges_added:
        fp.add(u)
        fp.add(v)
    for u, v in report.edges_removed:
        fp.add(u)
        fp.add(v)
    for event in report.events:
        for attr in (
            "u",
            "v",
            "nid",
            "attached_to",
            "sim",
            "owner",
            "recipient",
            "old_sim",
            "new_sim",
        ):
            value = getattr(event, attr, None)
            if isinstance(value, int):
                fp.add(value)
    if graph is not None:
        for sender in list(report.messages_per_node):
            fp.update(graph.get(sender, ()))
    return fp


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (empty -> 0)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass
class TransportSummary:
    """What a campaign's transport mirror observed (per campaign)."""

    mode: str
    latency: str
    scheduler: str
    seed: int
    events: int = 0
    barriers: int = 0
    conflict_barriers: int = 0
    peak_in_flight_heals: int = 0
    peak_queue_depth: int = 0
    makespan: float = 0.0
    messages_delivered: int = 0
    heal_latencies: List[float] = field(default_factory=list)
    peak_sub_rounds: int = 0

    @property
    def heal_latency_percentiles(self) -> Dict[str, float]:
        values = sorted(self.heal_latencies)
        return {
            "p50": _percentile(values, 0.50),
            "p90": _percentile(values, 0.90),
            "p99": _percentile(values, 0.99),
            "max": values[-1] if values else 0.0,
            "mean": (sum(values) / len(values)) if values else 0.0,
        }


class TransportMirror:
    """Replays a campaign's event stream on a distributed runtime.

    Built from the campaign's healer (see module docstring);
    :meth:`apply` consumes each oracle :class:`HealReport` right after
    the sequential healer produced it, :meth:`finish` drains, validates
    and returns the :class:`TransportSummary`.
    """

    def __init__(self, healer, spec: TransportSpec):
        self.spec = spec
        self.seed = spec.seed if spec.seed is not None else 0
        self.net: Optional[AsyncNetwork] = None
        if spec.mode == "async":
            self.net = AsyncNetwork(
                latency=spec.latency,
                scheduler=spec.scheduler,
                seed=self.seed,
                max_depth=spec.max_depth,
                record_samples=spec.record_samples,
            )
        self.driver, self._oracle_edges = self._build_driver(healer)
        if self.net is not None:
            # The setup round (FT will distribution) floods the queue
            # once before any churn; reset the peaks so the summary
            # reports campaign concurrency, not setup fan-out.
            self.net.peak_open_heals = 0
            self.net.peak_queue_depth = 0
            self.net.samples.clear()
        # The expected image is maintained from the mirrored reports'
        # exact edge deltas: a conflict barrier fires *before* the
        # triggering event is injected, at which point the live oracle is
        # one event ahead of the mirror.  (``finish`` still closes the
        # loop against the live oracle.)
        self._expected: Set[Tuple[int, int]] = self._oracle_edges()
        self._inflight: Dict[int, Set[int]] = {}
        self.events = 0
        self.barriers = 0
        self.conflict_barriers = 0
        self._since_barrier = 0

    # ------------------------------------------------------------------
    def _build_driver(self, healer):
        """Instantiate the distributed runtime matching the healer."""
        from ..baselines.forgiving import ForgivingTreeHealer
        from ..core.forgiving_tree import WILL_SPLICE
        from ..fgraph.healer import ForgivingGraphHealer

        if isinstance(healer, ForgivingTreeHealer):
            engine = healer.engine
            if engine.branching != 2 or engine.will_mode != WILL_SPLICE:
                raise ValueError(
                    "transport mirroring needs the binary splice-mode "
                    "Forgiving Tree (the distributed FT protocol is binary)"
                )
            from ..distributed.protocol import DistributedForgivingTree

            tree = bfs_tree(healer.initial_graph, engine.root_id)
            driver = DistributedForgivingTree(
                tree, root=engine.root_id, network=self.net
            )
            # The FT healer carries surviving non-tree edges alongside the
            # protocol's tree overlay; the mirror validates the overlay.
            self._oracle_graph = healer.tree_overlay
            return driver, lambda: _edge_set(healer.tree_overlay())
        if isinstance(healer, ForgivingGraphHealer):
            from ..fgraph.distributed import DistributedForgivingGraph

            driver = DistributedForgivingGraph(
                healer.initial_graph, network=self.net
            )
            self._oracle_graph = healer.graph
            return driver, lambda: _edge_set(healer.graph())
        raise ValueError(
            f"transport mirroring supports the forgiving-tree and "
            f"forgiving-graph healers, not {healer.name!r}"
        )

    # ------------------------------------------------------------------
    def apply(self, report: HealReport) -> None:
        """Mirror one oracle event onto the distributed runtime."""
        if self.spec.mode == "sync":
            self._apply_now(report)
        else:
            self._apply_async(report)
        self.events += 1
        # Replay the raw chronological edge transitions, not the
        # report's summary sets: those are disjointified, so an edge
        # that toggles an odd number of times inside one heal (removed,
        # re-added, removed again) vanishes from both and the summary
        # under-reports the net change.  (FT reports may also remove
        # non-tree extras the mirror never carried: discard semantics.)
        for event in report.events:
            if isinstance(event, EdgeAdded):
                self._expected.add(event.key())
            elif isinstance(event, EdgeRemoved):
                self._expected.discard(event.key())
        self._since_barrier += 1
        if self.spec.barrier_every and self._since_barrier >= self.spec.barrier_every:
            self.barrier()

    def _apply_now(self, report: HealReport) -> None:
        if report.is_insertion:
            self.driver.insert_batch(self._wave(report))
        else:
            self.driver.delete(report.deleted)

    def _apply_async(self, report: HealReport) -> None:
        assert self.net is not None
        footprint = heal_footprint(report, graph=self._oracle_graph())
        self._prune_inflight()
        if any(footprint & other for other in self._inflight.values()):
            # The event touches a region still healing: serialize it
            # behind the conflicting repair (quiesce barrier).
            self.conflict_barriers += 1
            self.barrier()
        else:
            # The event arrives mid-flight: advance virtual time by the
            # inter-arrival gap, delivering whatever legally lands.
            self.net.run_until(self.net.clock + self.spec.gap)
            self._prune_inflight()
        hid = self.net.open_heal(
            label="insert" if report.is_insertion else f"delete-{report.deleted}"
        )
        if report.is_insertion:
            self.driver.inject_insert_batch(self._wave(report))
        else:
            self.driver.inject_delete(report.deleted)
        self.net.close_injection()
        if self.net.heal_pending(hid):
            self._inflight[hid] = footprint

    @staticmethod
    def _wave(report: HealReport) -> Sequence[Tuple[int, int]]:
        if report.inserted_batch:
            return report.inserted_batch
        assert report.inserted is not None and report.attached_to is not None
        return ((report.inserted, report.attached_to),)

    def _prune_inflight(self) -> None:
        assert self.net is not None
        self._inflight = {
            hid: fp
            for hid, fp in self._inflight.items()
            if self.net.heal_pending(hid) > 0
        }

    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Quiesce, assert protocol quiescence, cross-validate images."""
        if self.net is not None:
            self.net.quiesce()
            self._inflight.clear()
        self.driver._check_quiescent()
        self.verify()
        self.barriers += 1
        self._since_barrier = 0

    def verify(self, expected: Optional[Set[Tuple[int, int]]] = None) -> None:
        """Node-for-node healed-image comparison against the oracle."""
        mirror_edges = self.driver.edges()
        if expected is None:
            expected = self._expected
        if mirror_edges != expected:
            missing = sorted(expected - mirror_edges)[:6]
            extra = sorted(mirror_edges - expected)[:6]
            raise TransportDivergence(
                f"after {self.events} events: mirror image diverged "
                f"(missing {missing}, extra {extra})"
            )

    def finish(self) -> TransportSummary:
        """Final barrier + summary (call once, at campaign end)."""
        self.barrier()
        # The mirror is now caught up with the oracle: close the loop
        # against the live healer, not just the accumulated deltas.
        self.verify(expected=self._oracle_edges())
        spec = self.spec
        summary = TransportSummary(
            mode=spec.mode,
            latency=getattr(spec.latency, "name", str(spec.latency)),
            scheduler=getattr(spec.scheduler, "name", str(spec.scheduler)),
            seed=self.seed,
            events=self.events,
            barriers=self.barriers,
            conflict_barriers=self.conflict_barriers,
        )
        history = self.driver.network.stats_history[1:]  # skip setup
        summary.peak_sub_rounds = max((s.sub_rounds for s in history), default=0)
        if self.net is not None:
            summary.peak_in_flight_heals = self.net.peak_open_heals
            summary.peak_queue_depth = self.net.peak_queue_depth
            summary.makespan = self.net.clock
            summary.messages_delivered = self.net.delivered
            summary.heal_latencies = [
                s.heal_latency for s in history if hasattr(s, "heal_latency")
            ]
        return summary


def _edge_set(graph) -> Set[Tuple[int, int]]:
    out: Set[Tuple[int, int]] = set()
    for u, vs in graph.items():
        for v in vs:
            if u < v:
                out.add((u, v))
    return out
