"""Concurrent-churn transport mirrors for campaign runners.

The harness plays every campaign against a *sequential* healer (the
oracle).  A :class:`TransportMirror` additionally drives the matching
**distributed runtime** — the Forgiving Tree protocol for
``forgiving-tree`` healers, the Forgiving Graph protocol for
``forgiving-graph`` ones — over a transport selected by a
:class:`TransportSpec`:

* ``mode="sync"`` — the classic synchronous sub-round network, one
  event at a time, quiescing per event (per-event cross-validation of
  the protocols inside any campaign).
* ``mode="async"`` — the discrete-event :class:`~repro.simnet.AsyncNetwork`
  with **concurrent churn**: each oracle event is injected while earlier
  heals are still in flight, overlapping repairs in virtual time.

Concurrent admission is governed by the *heal footprint*: the set of
nodes a repair reads or writes, extracted from the oracle's
:class:`~repro.core.events.HealReport` (every participant either sends
a message, is an endpoint of a changed image edge, or is named by a heal
event — the node-for-node tally parity between the sequential engines
and the distributed runtimes is what makes the report a sound oracle).
Two heals with disjoint footprints exchange no messages with any common
node, so their deliveries commute and any legal interleaving converges
to the sequential composition.  What happens when footprints *intersect*
is the ``overlap=`` policy:

* ``overlap="serialize"`` (default, the PR 4 behavior) — the mirror
  inserts a **quiesce barrier** before the conflicting event: the whole
  network drains, even repairs nowhere near the conflict.
* ``overlap="lease"`` — per-node **region leases**
  (:mod:`repro.regions`): the event acquires leases on its footprint;
  on conflict it is *delegated* to the blocking heal's coordinator and
  resumed the instant the blocking lease releases, while every disjoint
  repair keeps flying and later disjoint events keep injecting.
  Handoff that would be unsafe — the event kills a coordinator, a
  lease cycle is detected, the wait convoy exceeds ``max_wait_chain`` —
  **escalates** to the global quiesce barrier, counted per reason and
  reported in the summary, never silent.

At every barrier — conflict-forced or escalated, cadence
(``barrier_every``), or final — the mirror drains the network (in lease
mode: flushes every delegated event in priority order first), asserts
protocol quiescence, and cross-validates the distributed image against
the oracle's healed graph node-for-node, raising
:class:`TransportDivergence` on any mismatch.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..core.errors import ProtocolError, ReproError
from ..core.events import HealReport
from ..distributed.network import Network
from ..faults.plan import FaultPlan, FaultSummary
from ..faults.repair import RepairPass, RepairReport
from ..graphs.spanning import bfs_tree
from ..obs.histogram import LogHistogram
from ..obs.spec import ObsState
from ..obs.trace import NO_TRACE
from ..regions import (
    DELEGATED,
    DeferredHeal,
    HandoffLedger,
    LeaseError,
    LeaseManager,
)
from ..audit.schema import LogRecord
from .kernel import AsyncNetwork, HealStats
from .latency import LatencySpec
from .scheduler import SchedulerSpec

#: ``transport=`` modes for the campaign runners (mirrors ``metrics=``).
#: ``"lease"`` is shorthand for async transport with ``overlap="lease"``.
TRANSPORT_MODES = ("none", "sync", "async", "lease")

#: What to do when a new event's heal footprint intersects an in-flight
#: repair: serialize behind a global quiesce barrier (PR 4 behavior) or
#: admit through the region-lease / coordinator-handoff protocol.
OVERLAP_POLICIES = ("serialize", "lease")


class TransportDivergence(ReproError, AssertionError):
    """The distributed mirror's healed image diverged from the oracle."""


@dataclass
class TransportSpec:
    """Configuration of a campaign's transport mirror.

    ``seed=None`` inherits the campaign seed, so one seed reproduces the
    whole run — adversary, metrics, latency draws and scheduler choices.
    ``gap`` is the virtual inter-arrival time between injected events
    (smaller gap = more heals in flight); ``barrier_every`` is the
    quiesce/cross-validate cadence in events (0 = only conflict-forced
    and final barriers).  ``overlap`` picks the policy for intersecting
    heal footprints (:data:`OVERLAP_POLICIES`); under ``"lease"``,
    ``max_wait_chain`` bounds the delegation convoy before the mirror
    escalates back to a global barrier.  ``faults`` attaches a
    :class:`~repro.faults.FaultPlan` (hostile network: loss,
    duplication, crash-during-heal — async mode only); ``record_log``
    keeps the kernel's per-delivery event log (the determinism tests'
    pinned artifact, surfaced on :attr:`TransportSummary.event_log`).
    """

    mode: str = "async"
    latency: LatencySpec = "uniform"
    scheduler: SchedulerSpec = "latency"
    seed: Optional[int] = None
    gap: float = 0.25
    barrier_every: int = 8
    max_depth: int = 4096
    record_samples: bool = False
    overlap: str = "serialize"
    max_wait_chain: int = 32
    faults: Optional[FaultPlan] = None
    record_log: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("sync", "async"):
            raise ValueError(f"unknown transport mode {self.mode!r}")
        if self.gap < 0:
            raise ValueError("gap must be >= 0")
        if self.barrier_every < 0:
            raise ValueError("barrier_every must be >= 0")
        if self.overlap not in OVERLAP_POLICIES:
            raise ValueError(
                f"unknown overlap policy {self.overlap!r} "
                f"(one of {OVERLAP_POLICIES})"
            )
        if self.overlap == "lease" and self.mode != "async":
            raise ValueError("overlap='lease' needs the async transport")
        if self.max_wait_chain < 1:
            raise ValueError("max_wait_chain must be >= 1")
        if self.faults is not None and self.mode != "async":
            raise ValueError("faults= needs the async transport")


TransportInput = Union[None, str, TransportSpec]


def resolve_transport(
    transport: TransportInput, seed: int = 0
) -> Optional[TransportSpec]:
    """Normalize the ``transport=`` knob into a spec (or None = off)."""
    if transport is None or transport == "none":
        return None
    if isinstance(transport, TransportSpec):
        return (
            transport if transport.seed is not None else replace(transport, seed=seed)
        )
    if transport in ("sync", "async"):
        return TransportSpec(mode=transport, seed=seed)
    if transport == "lease":
        return TransportSpec(mode="async", overlap="lease", seed=seed)
    raise ValueError(
        f"unknown transport {transport!r} (one of {TRANSPORT_MODES} or a TransportSpec)"
    )


def heal_footprint(report: HealReport, graph=None) -> Set[int]:
    """Every node the heal read or wrote, from the oracle's report.

    Union of: the victim / the joiners and their attachment points, every
    node that sent a message (tally keys), every endpoint of a touched
    image edge (including mid-heal transient edges, via the raw event
    log), every node named by a heal event (portion and leaf-will
    recipients, helper simulators and transfer targets) — and, when the
    post-event image ``graph`` is given, the image neighbors of every
    sender.  That last closure covers *receive-only* participants (the
    weight cascade's terminal hop, a ``ReplaceChild`` holder whose will
    changes without retransmissions): every protocol message travels
    along an image edge, so each receiver is adjacent to its sender in
    the pre-, mid- (transient, evented) or post-heal image, and the
    first two are already covered by the event endpoints.
    """
    fp: Set[int] = set()
    if report.deleted >= 0:
        fp.add(report.deleted)
    if report.inserted is not None:
        fp.add(report.inserted)
    if report.attached_to is not None:
        fp.add(report.attached_to)
    for nid, attach_to in report.inserted_batch:
        fp.add(nid)
        fp.add(attach_to)
    fp.update(report.messages_per_node)
    for u, v in report.edges_added:
        fp.add(u)
        fp.add(v)
    for u, v in report.edges_removed:
        fp.add(u)
        fp.add(v)
    for event in report.events:
        for attr in (
            "u",
            "v",
            "nid",
            "attached_to",
            "sim",
            "owner",
            "recipient",
            "old_sim",
            "new_sim",
        ):
            value = getattr(event, attr, None)
            if isinstance(value, int):
                fp.add(value)
    if graph is not None:
        for sender in list(report.messages_per_node):
            fp.update(graph.get(sender, ()))
    return fp


@dataclass
class TransportSummary:
    """What a campaign's transport mirror observed (per campaign).

    The lease block (``overlap="lease"`` campaigns) reports the handoff
    protocol's behavior: how many events waited for a lease (and for how
    much virtual time), how many were admitted without conflict, the
    deepest delegation queue, and every escalation back to the global
    barrier broken down by reason — the honest record of how often the
    overlap protocol could *not* keep intersecting heals concurrent.

    Percentiles come from the shared
    :class:`~repro.obs.histogram.LogHistogram` primitive (the one
    quantile implementation in the repo — the benches and the skype
    example report these exact numbers).
    """

    mode: str
    latency: str
    scheduler: str
    seed: int
    events: int = 0
    barriers: int = 0
    conflict_barriers: int = 0
    peak_in_flight_heals: int = 0
    peak_queue_depth: int = 0
    makespan: float = 0.0
    messages_delivered: int = 0
    heal_latencies: List[float] = field(default_factory=list)
    peak_sub_rounds: int = 0
    overlap: str = "serialize"
    lease_grants: int = 0
    lease_waits: int = 0
    lease_wait_times: List[float] = field(default_factory=list)
    peak_deferred: int = 0
    escalations: Dict[str, int] = field(default_factory=dict)
    #: Hostile-network tallies (``faults=`` campaigns only).
    faults: Optional[FaultSummary] = None
    #: The kernel's pinned determinism artifact (``record_log`` only):
    #: typed :class:`~repro.audit.schema.LogRecord` entries.
    event_log: Optional[List["LogRecord"]] = None
    #: Per-heal kernel tallies in quiescence order (``record_log``
    #: only) — the audit layer joins them to the log by ``hid``.
    heal_stats: Optional[List["HealStats"]] = None

    @property
    def heal_latency_hist(self) -> LogHistogram:
        return LogHistogram.from_values(self.heal_latencies)

    @property
    def lease_wait_hist(self) -> LogHistogram:
        return LogHistogram.from_values(self.lease_wait_times)

    @property
    def heal_latency_percentiles(self) -> Dict[str, float]:
        return self.heal_latency_hist.summary()

    @property
    def lease_wait_percentiles(self) -> Dict[str, float]:
        """Distribution of the delegated events' virtual wait times."""
        return self.lease_wait_hist.summary()

    @property
    def total_escalations(self) -> int:
        return sum(self.escalations.values())


class TransportMirror:
    """Replays a campaign's event stream on a distributed runtime.

    Built from the campaign's healer (see module docstring);
    :meth:`apply` consumes each oracle :class:`HealReport` right after
    the sequential healer produced it, :meth:`finish` drains, validates
    and returns the :class:`TransportSummary`.
    """

    def __init__(
        self, healer, spec: TransportSpec, obs: Optional[ObsState] = None
    ):
        self.spec = spec
        self.seed = spec.seed if spec.seed is not None else 0
        # The observability instruments (repro.obs) this mirror and its
        # kernel write into.  ``obs=None`` keeps every hook a single
        # attribute/None check on the hot paths.
        self.obs = obs
        self.tracer = obs.tracer if obs is not None else NO_TRACE
        self.profiler = obs.profiler if obs is not None else None
        self.metrics = obs.metrics if obs is not None else None
        self.recorder = obs.recorder if obs is not None else None
        self._recorder_dir = obs.spec.recorder_dir if obs is not None else None
        self._flight_path: Optional[str] = None
        self.net: Optional[AsyncNetwork] = None
        if spec.mode == "async":
            self.net = AsyncNetwork(
                latency=spec.latency,
                scheduler=spec.scheduler,
                seed=self.seed,
                max_depth=spec.max_depth,
                record_samples=spec.record_samples,
                record_log=spec.record_log,
                tracer=self.tracer,
                profiler=self.profiler,
                metrics=self.metrics,
                faults=spec.faults,
            )
        # Hostile-network state: the healer handle and oracle-order
        # report history feed the repair pass's reset-replay (kept only
        # when a crash is actually planned — the history is O(events));
        # ``pending_crash`` hands the victim to the campaign loop, which
        # applies the death to the oracle and calls
        # :meth:`recover_from_crash`.
        self._healer = healer
        self._keep_history = spec.faults is not None and bool(spec.faults.crashes)
        self._history: List[HealReport] = []
        self._arm_next: Optional[Tuple[int, int]] = None
        self.pending_crash: Optional[int] = None
        self.repairs: List[RepairReport] = []
        self.driver, self._oracle_edges = self._build_driver(healer, self.net)
        if self.net is not None:
            # The setup round (FT will distribution) floods the queue
            # once before any churn; reset the peaks so the summary
            # reports campaign concurrency, not setup fan-out.
            self.net.peak_open_heals = 0
            self.net.peak_queue_depth = 0
            self.net.samples.clear()
        # The expected image is maintained from the mirrored reports'
        # exact edge deltas: a conflict barrier fires *before* the
        # triggering event is injected, at which point the live oracle is
        # one event ahead of the mirror.  (``finish`` still closes the
        # loop against the live oracle.)
        self._expected: Set[Tuple[int, int]] = self._oracle_edges()
        self._inflight: Dict[int, Set[int]] = {}
        self.events = 0
        self.barriers = 0
        self.conflict_barriers = 0
        self._since_barrier = 0
        # Region-lease state (overlap="lease" only): the lease table,
        # the per-event handoff ledger, the parked delegated events, and
        # the kernel-heal-id -> event-id map of injected lease heals.
        self.leases = LeaseManager(profiler=self.profiler, metrics=self.metrics)
        self.ledger = HandoffLedger(tracer=self.tracer)
        self._deferred: Dict[int, DeferredHeal] = {}
        self._live: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def _build_driver(self, healer, network):
        """Instantiate the distributed runtime matching the healer, on
        ``network`` (the mirror's kernel, or a throwaway synchronous
        network during the repair pass's reset-replay)."""
        from ..baselines.forgiving import ForgivingTreeHealer
        from ..core.forgiving_tree import WILL_SPLICE
        from ..fgraph.healer import ForgivingGraphHealer

        if isinstance(healer, ForgivingTreeHealer):
            engine = healer.engine
            if engine.branching != 2 or engine.will_mode != WILL_SPLICE:
                raise ValueError(
                    "transport mirroring needs the binary splice-mode "
                    "Forgiving Tree (the distributed FT protocol is binary)"
                )
            from ..distributed.protocol import DistributedForgivingTree

            tree = bfs_tree(healer.initial_graph, engine.root_id)
            driver = DistributedForgivingTree(
                tree, root=engine.root_id, network=network
            )
            # The FT healer carries surviving non-tree edges alongside the
            # protocol's tree overlay; the mirror validates the overlay.
            self._oracle_graph = healer.tree_overlay
            return driver, lambda: _edge_set(healer.tree_overlay())
        if isinstance(healer, ForgivingGraphHealer):
            from ..fgraph.distributed import DistributedForgivingGraph

            driver = DistributedForgivingGraph(
                healer.initial_graph, network=network
            )
            self._oracle_graph = healer.graph
            return driver, lambda: _edge_set(healer.graph())
        raise ValueError(
            f"transport mirroring supports the forgiving-tree and "
            f"forgiving-graph healers, not {healer.name!r}"
        )

    # ------------------------------------------------------------------
    def apply(self, report: HealReport) -> None:
        """Mirror one oracle event onto the distributed runtime."""
        if self.pending_crash is not None:
            raise ProtocolError(
                f"event applied while node {self.pending_crash}'s crash "
                "awaits recovery (call recover_from_crash first)"
            )
        if self.recorder is not None:
            self.recorder.record(
                "event",
                clock=self.net.clock if self.net is not None else 0.0,
                eid=self.events,
                what="insert" if report.is_insertion else f"delete-{report.deleted}",
            )
        if self.metrics is not None:
            self.metrics.counter("mirror.events").inc()
        if self._keep_history:
            self._history.append(report)
        crash = (
            self.spec.faults.crash_for(self.events)
            if self.spec.faults is not None
            else None
        )
        if self.spec.mode == "sync":
            self._apply_now(report)
        elif crash is not None:
            self._apply_crash(report, crash)
        elif self.spec.overlap == "lease":
            self._apply_lease(report)
        else:
            self._apply_serialize(report)
        self.events += 1
        # Net deltas replayed from the raw chronological edge events,
        # not the report's disjointified summary sets: an edge that
        # toggles an odd number of times inside one heal (removed,
        # re-added, removed again) vanishes from both summary sets and
        # under-reports the net change.  (FT reports may also remove
        # non-tree extras the mirror never carried: discard semantics.)
        added, removed = report.net_edge_deltas()
        self._expected -= removed
        self._expected |= added
        self._since_barrier += 1
        if self.pending_crash is not None:
            # The image is corrupt until the repair pass re-converges
            # it; no barrier may fire in between (the campaign loop
            # calls recover_from_crash before the next event).
            self._since_barrier = 0
            return
        if self.spec.barrier_every and self._since_barrier >= self.spec.barrier_every:
            self.barrier()

    def _apply_now(self, report: HealReport) -> None:
        if report.is_insertion:
            self.driver.insert_batch(self._wave(report))
        else:
            self.driver.delete(report.deleted)

    def _footprint(self, report: HealReport) -> Set[int]:
        """Extract the heal footprint, timed when profiling is on."""
        if self.profiler is None:
            return heal_footprint(report, graph=self._oracle_graph())
        t0 = time.perf_counter_ns()
        fp = heal_footprint(report, graph=self._oracle_graph())
        self.profiler.add("mirror:footprint", time.perf_counter_ns() - t0)
        return fp

    def _apply_serialize(self, report: HealReport) -> None:
        assert self.net is not None
        footprint = self._footprint(report)
        self._prune_inflight()
        if any(footprint & other for other in self._inflight.values()):
            # The event touches a region still healing: serialize it
            # behind the conflicting repair (quiesce barrier).
            self.conflict_barriers += 1
            self.barrier()
        else:
            # The event arrives mid-flight: advance virtual time by the
            # inter-arrival gap, delivering whatever legally lands.
            self.net.run_until(self.net.clock + self.spec.gap)
            self._prune_inflight()
        hid = self._inject(report)
        if self.net.heal_pending(hid):
            self._inflight[hid] = footprint

    def _inject(self, report: HealReport, requested_at: Optional[float] = None) -> int:
        """Open a kernel heal, inject the event, close the window.

        The one injection path both overlap policies share; returns the
        kernel heal id (``requested_at`` back-dates the lease wait)."""
        assert self.net is not None
        # Labels embed the event's unique id (node ids are never
        # reused), so a heal is joinable to its oracle report even when
        # lease admission reorders injections.
        hid = self.net.open_heal(
            label=(
                f"insert-{self._wave(report)[0][0]}"
                if report.is_insertion
                else f"delete-{report.deleted}"
            ),
            requested_at=requested_at,
        )
        if self._arm_next is not None:
            layer, victim = self._arm_next
            self._arm_next = None
            self.net.arm_crash(hid, layer, victim)
        if report.is_insertion:
            self.driver.inject_insert_batch(self._wave(report))
        else:
            self.driver.inject_delete(report.deleted)
        self.net.close_injection()
        return hid

    # -- the crash-during-heal fault plane ------------------------------
    def _crash_victim(
        self, report: HealReport, crash
    ) -> Optional[int]:
        """Pick the node the :class:`CrashDuringHeal` kills.

        ``"coordinator"`` is the heal's handoff anchor (the first wave
        attachment point for insertions, :meth:`heal_coordinator` for
        deletions); ``"participant"`` is the largest-id *other* live
        footprint member, falling back to the coordinator when the heal
        has no other participant.  ``None`` (degenerate heal with no
        live coordinator) applies the event normally, crash skipped.
        """
        if report.is_insertion:
            coordinator: Optional[int] = self._wave(report)[0][1]
        else:
            coordinator = self.driver.heal_coordinator(report.deleted)
        if crash.target == "coordinator" or coordinator is None:
            return coordinator
        pool = sorted(
            n
            for n in self._footprint(report)
            if n in self.driver.alive and n != coordinator and n != report.deleted
        )
        return pool[-1] if pool else coordinator

    def _apply_crash(self, report: HealReport, crash) -> None:
        """Inject one event with a mid-heal crash armed in the kernel.

        Serialize mode runs a containment barrier first so the doomed
        heal flies alone; lease mode escalates through the existing
        handoff path (``reason="crash"``: delegation to a node that is
        about to die is structurally unsafe), which performs the same
        flushing barrier before injecting.  Either way the kernel drains
        with the crash landed, the image left corrupt, and
        :attr:`pending_crash` hands the victim to the campaign loop.
        """
        assert self.net is not None
        victim = self._crash_victim(report, crash)
        if victim is None:
            # Nobody to kill (isolated victim, empty footprint): the
            # event applies normally and the planned crash is skipped.
            if self.spec.overlap == "lease":
                self._apply_lease(report)
            else:
                self._apply_serialize(report)
            return
        if self.spec.overlap == "lease":
            eid = self.events
            now = self.net.clock
            self.ledger.request(eid, now)
            self._escalate(
                eid,
                "crash",
                report,
                frozenset(self._footprint(report)),
                now,
                arm=(crash.layer, victim),
            )
            self.net.quiesce()
            self._pump_leases()
        else:
            self.barrier()  # containment: the doomed heal flies alone
            self._arm_next = (crash.layer, victim)
            self._inject(report)
            self.net.quiesce()
            self._inflight.clear()
        self.pending_crash = victim

    def recover_from_crash(self, report: HealReport) -> RepairReport:
        """Run the self-stabilizing repair pass after a planned crash.

        ``report`` is the oracle's heal of the crash victim (the
        campaign loop applies ``healer.delete(victim)`` as an extra
        oracle event first, then calls this).  The pass scans the
        corrupted overlay, re-converges it by reset-replay — a fresh
        driver rebuilt from the initial graph replaying the full oracle
        report history (crash included) on a throwaway synchronous
        network, then transplanted into the drained kernel — rescans,
        and barriers: the repaired image must match the oracle
        node-for-node or the mirror fails loudly.
        """
        if self.pending_crash is None:
            raise ProtocolError("no crash pending recovery")
        victim = self.pending_crash
        self.pending_crash = None
        if self._keep_history:
            self._history.append(report)
        self.events += 1
        rep = RepairPass(self.driver).run(self._rebuild_driver, victim=victim)
        self.repairs.append(rep)
        if self.net is not None:
            self.net.log_control("repair-pass", victim)
        if self.recorder is not None:
            self.recorder.record(
                "repair",
                clock=self.net.clock if self.net is not None else 0.0,
                victim=victim,
                violations=len(rep.violations),
            )
        if self.metrics is not None:
            self.metrics.counter("faults.repairs").inc()
        if not rep.repaired:
            self._fail(
                TransportDivergence(
                    f"repair pass after crash of {victim} left "
                    f"{len(rep.residual)} violation(s): "
                    f"{[f'{v.kind}@{v.node}' for v in rep.residual[:6]]}"
                )
            )
        self._expected = self._oracle_edges()
        self._inflight.clear()
        self.barrier()
        return rep

    def _rebuild_driver(self):
        """Reset-replay: the repair pass's re-convergence primitive.

        Rebuilding from the oracle *image* alone would break future
        parity (FT heal outcomes depend on will/helper history), so the
        fresh driver replays the oracle's full report history — in
        oracle order, on a throwaway synchronous network — and its nodes
        are then transplanted into the drained kernel.  (Safe ordering:
        the crash path escalates through a flushing barrier, so every
        lease-deferred event was injected before any crash.)
        """
        fresh_net = Network(max_sub_rounds=self.spec.max_depth)
        driver, oracle_edges = self._build_driver(self._healer, fresh_net)
        for rep in self._history:
            if rep.is_insertion:
                driver.insert_batch(self._wave(rep))
            else:
                driver.delete(rep.deleted)
        assert self.net is not None
        self.net.adopt(list(fresh_net.nodes.values()))
        driver.network = self.net
        self.driver = driver
        self._oracle_edges = oracle_edges
        return driver

    # -- the region-lease overlap policy -------------------------------
    def _apply_lease(self, report: HealReport) -> None:
        """Admit one event through lease acquisition (see module doc).

        Intersecting events are delegated and resumed instead of forcing
        a global drain; only unsafe handoff (coordinator death, a lease
        cycle, an over-deep wait convoy) escalates to the barrier.
        """
        assert self.net is not None
        footprint = frozenset(self._footprint(report))
        self._pump_leases()
        eid = self.events
        now = self.net.clock
        self.ledger.request(eid, now)
        if not report.is_insertion and report.deleted in self.leases.coordinators():
            # The event kills a node anchoring an in-flight heal or a
            # handoff queue: delegation would die with it.
            self._escalate(eid, "coordinator-death", report, footprint, now)
            return
        decision = self.leases.acquire(eid, footprint, (now, eid))
        if decision.granted:
            self.ledger.granted(eid, now)
            # The event arrives mid-flight: advance virtual time by the
            # inter-arrival gap, delivering whatever legally lands.
            self.net.run_until(self.net.clock + self.spec.gap)
            self._pump_leases()
            self._inject_lease_heal(eid, report)
            return
        self._deferred[eid] = DeferredHeal(
            eid=eid,
            report=report,
            footprint=footprint,
            priority=(now, eid),
            delegated_to=decision.delegated_to,
        )
        self.ledger.delegated(eid, now, decision.delegated_to)
        self.net.log_control("lease-defer", eid)
        if self.leases.find_cycle() is not None:
            self._escalate(eid, "lease-cycle", report, footprint, now)
            return
        if self.leases.wait_chain_depth() > self.spec.max_wait_chain:
            self._escalate(eid, "wait-chain", report, footprint, now)
            return
        # Time still flows while the event queues on the coordinator.
        self.net.run_until(self.net.clock + self.spec.gap)
        self._pump_leases()

    def _escalate(
        self,
        eid: int,
        reason: str,
        report: HealReport,
        footprint: frozenset,
        now: float,
        arm: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Unsafe handoff: fall back to the global quiesce barrier.

        The escalating event is withdrawn from the handoff queue (if it
        was already delegated), the barrier flushes every *other*
        delegated event in priority order and cross-validates — the
        escalating event is the oracle's newest, so the verified image
        correctly excludes it — and the event is then admitted against
        the empty lease table and injected.

        ``arm`` (the crash path) is a ``(layer, victim)`` crash to arm
        on the escalating event's own heal — set only *after* the
        barrier, which may flush and inject deferred events whose heals
        must not inherit it.
        """
        assert self.net is not None
        if eid in self._deferred:
            del self._deferred[eid]
            # Nothing can wait on the newest request, so the withdraw
            # cascade is structurally empty — but honor any grants it
            # returns rather than strand them.
            self._resume(self.leases.withdraw(eid))
        self.ledger.escalated(eid, now, reason)
        self.net.log_control(f"lease-escalate-{reason}", eid)
        if self.recorder is not None:
            self.recorder.record("escalate", clock=now, eid=eid, reason=reason)
        if self.metrics is not None:
            self.metrics.counter(f"lease.escalations.{reason}").inc()
        self.barrier()
        decision = self.leases.acquire(eid, footprint, (now, eid))
        assert decision.granted  # the table is empty after a barrier
        if arm is not None:
            self._arm_next = arm
        self._inject_lease_heal(eid, report)

    def _inject_lease_heal(self, eid: int, report: HealReport) -> None:
        """Inject a lease-admitted event, with the handoff bookkeeping."""
        assert self.net is not None
        handoff = self.ledger[eid]
        waited = handoff.state != "granted"
        if report.is_insertion:
            coordinator: Optional[int] = self._wave(report)[0][1]
        else:
            # Computed *before* injection: the victim's removal consumes
            # its local neighbor claims.
            coordinator = self.driver.heal_coordinator(report.deleted)
        hid = self._inject(
            report, requested_at=handoff.requested_at if waited else None
        )
        self.leases.set_coordinator(eid, coordinator)
        self.ledger.injected(eid, self.net.clock)
        # Grant rows carry the *kernel heal id*, correlating the
        # admission decision with the heal's delivery rows.
        self.net.log_control("lease-grant", hid)
        if self.net.heal_pending(hid):
            self._live[hid] = eid
        else:
            self._release_lease(eid, hid)

    def _pump_leases(self) -> None:
        """Release leases of quiesced heals; resume what unblocks."""
        assert self.net is not None
        done = [
            (hid, eid)
            for hid, eid in self._live.items()
            if self.net.heal_pending(hid) == 0
        ]
        for hid, eid in done:
            del self._live[hid]
            self._release_lease(eid, hid)

    def _release_lease(self, eid: int, hid: int) -> None:
        """Lease release is a causal event: grants cascade in priority
        order, and every resumed event injects immediately (its leases
        are already held)."""
        assert self.net is not None
        self.ledger.released(eid, self.net.clock)
        self.net.log_control("lease-release", hid)
        self._resume(self.leases.release(eid))

    def _resume(self, resumed_eids: Sequence[int]) -> None:
        """Inject newly granted deferred events, in the given order."""
        assert self.net is not None
        now = self.net.clock
        for resumed in resumed_eids:
            deferred = self._deferred.pop(resumed)
            if self.ledger[resumed].state == DELEGATED:
                self.ledger.resumed(resumed, now)
                self.net.log_control("lease-resume", resumed)
                if self.metrics is not None:
                    self.metrics.histogram("lease.wait").observe(
                        self.ledger[resumed].lease_wait
                    )
            self._inject_lease_heal(resumed, deferred.report)

    def _flush_leases(self) -> None:
        """Global barrier half of the lease path: drain, release, and
        inject every delegated event in priority order until the
        network is empty and no lease is held or queued.

        The drain is targeted (:meth:`AsyncNetwork.drain_heals` on the
        live lease heals) rather than a blanket quiesce, so the loop's
        progress is attributable heal by heal; the closing quiesce is a
        safety net for traffic outside the lease bookkeeping (there
        should be none) and the cheap no-op that proves it.
        """
        assert self.net is not None
        while self._live or self._deferred:
            before = (len(self._live), len(self._deferred))
            self.net.drain_heals(list(self._live))
            self._pump_leases()
            if (len(self._live), len(self._deferred)) == before and not self._live:
                raise LeaseError(  # pragma: no cover - defensive
                    f"flush stalled with deferred events "
                    f"{sorted(self._deferred)} and no live heal to release"
                )
        self.net.quiesce()

    @staticmethod
    def _wave(report: HealReport) -> Sequence[Tuple[int, int]]:
        if report.inserted_batch:
            return report.inserted_batch
        assert report.inserted is not None and report.attached_to is not None
        return ((report.inserted, report.attached_to),)

    def _prune_inflight(self) -> None:
        assert self.net is not None
        self._inflight = {
            hid: fp
            for hid, fp in self._inflight.items()
            if self.net.heal_pending(hid) > 0
        }

    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Quiesce, assert protocol quiescence, cross-validate images.

        Under ``overlap="lease"`` the quiesce first *flushes* the
        handoff queue — every delegated event injects in priority order
        as its blockers drain — so the verified image always includes
        every oracle event mirrored so far."""
        clock_before = self.net.clock if self.net is not None else 0.0
        t0 = time.perf_counter_ns() if self.profiler is not None else 0
        try:
            if self.net is not None:
                if self.spec.overlap == "lease" and self.spec.mode == "async":
                    self._flush_leases()
                    self.ledger.check_drained()
                else:
                    self.net.quiesce()
                    self._inflight.clear()
            self.driver._check_quiescent()
            self.verify()
        except ReproError as exc:
            self._fail(exc)
        self.barriers += 1
        self._since_barrier = 0
        if self.profiler is not None:
            self.profiler.add("mirror:barrier", time.perf_counter_ns() - t0)
            if self.net is not None:
                self.profiler.add_virtual(
                    "mirror:barrier", self.net.clock - clock_before
                )
        if self.recorder is not None:
            self.recorder.record(
                "barrier",
                clock=self.net.clock if self.net is not None else 0.0,
                events=self.events,
            )
        if self.metrics is not None:
            self.metrics.counter("mirror.barriers").inc()

    def _fail(self, exc: ReproError) -> None:
        """Invariant/cross-validation failure: dump the flight recorder.

        The dump lands as JSONL next to the failure (``recorder_dir`` or
        the system temp dir), and the re-raised exception names the
        event-id range it holds so the bisection starts from the dump,
        not from a re-run.  Idempotent: a failure that unwinds through
        nested barriers dumps once and keeps citing the same file.
        """
        if self.recorder is not None and self.recorder.recorded:
            if self._flight_path is None:
                first, last = self.recorder.id_range
                directory = self._recorder_dir or tempfile.gettempdir()
                self._flight_path = os.path.join(
                    directory, f"flight-seed{self.seed}-ev{first}-{last}.jsonl"
                )
                self.recorder.dump(self._flight_path)
            first, last = self.recorder.id_range
            note = (
                f"flight recorder: events {first}..{last} "
                f"dumped to {self._flight_path}"
            )
            exc.args = (
                (f"{exc.args[0]}\n{note}",) + exc.args[1:]
                if exc.args
                else (note,)
            )
        raise exc

    def verify(self, expected: Optional[Set[Tuple[int, int]]] = None) -> None:
        """Node-for-node healed-image comparison against the oracle."""
        mirror_edges = self.driver.edges()
        if expected is None:
            expected = self._expected
        if mirror_edges != expected:
            missing = sorted(expected - mirror_edges)[:6]
            extra = sorted(mirror_edges - expected)[:6]
            raise TransportDivergence(
                f"after {self.events} events: mirror image diverged "
                f"(missing {missing}, extra {extra})"
            )

    def finish(self) -> TransportSummary:
        """Final barrier + summary (call once, at campaign end)."""
        self.barrier()
        # The mirror is now caught up with the oracle: close the loop
        # against the live healer, not just the accumulated deltas.
        try:
            self.verify(expected=self._oracle_edges())
        except ReproError as exc:
            self._fail(exc)
        spec = self.spec
        summary = TransportSummary(
            mode=spec.mode,
            latency=getattr(spec.latency, "name", str(spec.latency)),
            scheduler=getattr(spec.scheduler, "name", str(spec.scheduler)),
            seed=self.seed,
            events=self.events,
            barriers=self.barriers,
            conflict_barriers=self.conflict_barriers,
            overlap=spec.overlap if spec.mode == "async" else "serialize",
        )
        if spec.mode == "async" and spec.overlap == "lease":
            summary.lease_grants = self.ledger.immediate_grants
            summary.lease_waits = self.ledger.lease_waits
            summary.lease_wait_times = list(self.ledger.wait_times)
            summary.peak_deferred = self.ledger.peak_deferred
            summary.escalations = dict(self.ledger.escalations)
        history = self.driver.network.stats_history[1:]  # skip setup
        summary.peak_sub_rounds = max((s.sub_rounds for s in history), default=0)
        if self.net is not None:
            summary.peak_in_flight_heals = self.net.peak_open_heals
            summary.peak_queue_depth = self.net.peak_queue_depth
            summary.makespan = self.net.clock
            summary.messages_delivered = self.net.delivered
            summary.heal_latencies = [
                s.heal_latency for s in history if hasattr(s, "heal_latency")
            ]
            if spec.faults is not None:
                fs = FaultSummary()
                for s in self.net.stats_history:
                    fs.drops += getattr(s, "dropped", 0)
                    fs.retransmissions += getattr(s, "total_retransmissions", 0)
                    fs.duplicates += getattr(s, "duplicated", 0)
                    fs.dup_suppressed += getattr(s, "dup_suppressed", 0)
                    fs.handler_faults += getattr(s, "handler_faults", 0)
                    fs.dead_drops += s.dead_drops
                fs.crashes = len(self.net.crashed)
                fs.repairs = len(self.repairs)
                fs.violations = sum(len(r.violations) for r in self.repairs)
                fs.unrepaired_violations = sum(
                    len(r.residual) for r in self.repairs
                )
                summary.faults = fs
            if self.net.record_log:
                summary.event_log = list(self.net.event_log)
                summary.heal_stats = list(self.net.stats_history)
        return summary


def _edge_set(graph) -> Set[Tuple[int, int]]:
    out: Set[Tuple[int, int]] = set()
    for u, vs in graph.items():
        for v in vs:
            if u < v:
                out.add((u, v))
    return out
