"""Per-link latency models for the discrete-event simnet.

A latency model answers one question: how long does this message take to
cross its link?  Draws are made from the model's own seeded RNG in send
order, so a whole simulation is a deterministic function of its seeds —
the property the event-log determinism tests pin.

Three families, mirroring the usual network-simulation repertoire:

* :class:`ConstantLatency` — every link takes exactly ``value`` time
  units.  The async runtime then degenerates to latency-ordered rounds;
  useful as the bridge case when validating against the synchronous
  network.
* :class:`UniformLatency` — i.i.d. uniform draws in ``[low, high]``; the
  default model.  Jitter without pathology.
* :class:`HeavyTailLatency` — Pareto-tailed draws (``scale`` minimum,
  shape ``alpha``), optionally truncated at ``cap``.  Models the long
  tail of real overlays (a few links orders of magnitude slower), the
  regime where heal latency is dominated by stragglers.

``resolve_latency`` turns a spec (model instance, name, or
``(name, kwargs)``) into a fresh instance; :data:`LATENCY_CATALOG` names
the built-ins for benchmarks to sweep.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple, Type, Union


class LatencyModel:
    """Base class: seeded per-message delay sampler."""

    name: str = "abstract"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def reseed(self, seed: int) -> None:
        """Re-arm the RNG (models are reseeded per campaign)."""
        self.seed = seed
        self._rng = random.Random(seed)

    def sample(self, sender: int, recipient: int) -> float:
        """Delay for one message on the ``sender -> recipient`` link."""
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``value`` time units."""

    name = "constant"

    def __init__(self, value: float = 1.0, seed: int = 0) -> None:
        super().__init__(seed)
        if value <= 0:
            raise ValueError("latency must be positive")
        self.value = float(value)

    def sample(self, sender: int, recipient: int) -> float:
        return self.value


class UniformLatency(LatencyModel):
    """I.i.d. uniform delays in ``[low, high]`` (the default model)."""

    name = "uniform"

    def __init__(
        self, low: float = 0.5, high: float = 1.5, seed: int = 0
    ) -> None:
        super().__init__(seed)
        if not 0 < low <= high:
            raise ValueError("need 0 < low <= high")
        self.low = float(low)
        self.high = float(high)

    def sample(self, sender: int, recipient: int) -> float:
        return self._rng.uniform(self.low, self.high)


class HeavyTailLatency(LatencyModel):
    """Pareto-tailed delays: minimum ``scale``, tail index ``alpha``.

    Mean is ``scale * alpha / (alpha - 1)`` for ``alpha > 1`` (the
    default ``alpha=1.5`` has mean ``3 * scale`` but infinite variance).
    ``cap`` truncates the tail so a single draw cannot stall a whole
    campaign; ``None`` leaves it unbounded.
    """

    name = "heavy-tail"

    def __init__(
        self,
        scale: float = 0.5,
        alpha: float = 1.5,
        cap: Optional[float] = 50.0,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        if scale <= 0 or alpha <= 0:
            raise ValueError("scale and alpha must be positive")
        if cap is not None and cap < scale:
            raise ValueError("cap must be >= scale")
        self.scale = float(scale)
        self.alpha = float(alpha)
        self.cap = None if cap is None else float(cap)

    def sample(self, sender: int, recipient: int) -> float:
        # Inverse-CDF Pareto draw; paretovariate returns >= 1.
        value = self.scale * self._rng.paretovariate(self.alpha)
        if self.cap is not None and value > self.cap:
            return self.cap
        return value


LATENCY_CATALOG: Dict[str, Type[LatencyModel]] = {
    cls.name: cls
    for cls in (ConstantLatency, UniformLatency, HeavyTailLatency)
}

LatencySpec = Union[str, LatencyModel, Tuple[str, dict]]


def resolve_latency(spec: LatencySpec, seed: int = 0) -> LatencyModel:
    """Build a latency model from a spec.

    Accepts an instance (reseeded in place), a catalog name, or a
    ``(name, kwargs)`` pair.  The seed always comes from the caller so a
    campaign's one seed governs every stochastic component.
    """
    if isinstance(spec, LatencyModel):
        spec.reseed(seed)
        return spec
    if isinstance(spec, tuple):
        name, kwargs = spec
        return LATENCY_CATALOG[name](seed=seed, **dict(kwargs))
    if spec in LATENCY_CATALOG:
        return LATENCY_CATALOG[spec](seed=seed)
    raise ValueError(
        f"unknown latency model {spec!r} (one of {sorted(LATENCY_CATALOG)})"
    )
