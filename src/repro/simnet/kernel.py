"""The discrete-event simulation kernel: an async transport for the
distributed protocols.

:class:`AsyncNetwork` is a drop-in replacement for the synchronous
:class:`~repro.distributed.network.Network`: it exposes the same
membership, ``send``/``begin_round``/``run_round`` and ``image_edges``
surface, so both distributed runtimes (the Forgiving Tree's and the
Forgiving Graph's) run on it *unmodified*.  Underneath, messages are not
delivered in lock-step sub-rounds but by a priority-queue scheduler with
per-link latencies (:mod:`repro.simnet.latency`) and a pluggable
delivery-order policy (:mod:`repro.simnet.scheduler`), and — the point
of the exercise — several *heals may be in flight at once*: a new churn
event can be injected while earlier repairs are still exchanging
messages.

Concurrency semantics (documented at length in ``docs/ASYNC.md``):

* Every message belongs to the *heal* (churn event) whose handling
  caused it, and carries its causal **depth** — hops from the event's
  injected notifications (depth 0).  Injection happens between
  :meth:`AsyncNetwork.open_heal` and :meth:`AsyncNetwork.close_injection`;
  messages sent while a delivery is being handled inherit its heal and
  ``depth + 1``.
* **Within one heal, delivery is layered**: a depth-``d+1`` message is
  only deliverable once every depth-``d`` message of the same heal has
  landed.  This is exactly the sub-round causality of the papers'
  synchronous model (Section 2: nodes communicate "asynchronously in
  parallel" but the algorithms are stated in rounds); the protocol
  handlers assume it, so the kernel preserves it *per heal*.
* **Across heals there is no ordering at all** — deliveries from
  different heals interleave freely, governed only by arrival times and
  the scheduler policy.  This is the concurrency the synchronous network
  forbids by quiescing after every event.
* A message is *deliverable* once the layering rule admits it and the
  clock can reach its arrival time.  Whenever several messages are
  deliverable, the :class:`~repro.simnet.scheduler.SchedulerPolicy`
  (including the adversarial one) picks which lands next — the legal
  interleavings of the model.

Determinism: given the construction seed, the whole run — clock values,
delivery order, the per-message :attr:`event_log` — is a pure function
of the injected events.  Tests pin this by comparing event logs.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.errors import ProtocolError
from ..distributed.messages import Message
from ..distributed.network import Network, RoundStats
from ..obs.metrics import MetricsRegistry
from ..obs.profile import PhaseProfiler
from ..obs.trace import CONTROL_TRACK, NO_TRACE, PID_PROTOCOL
from .latency import LatencySpec, resolve_latency
from .scheduler import SchedulerSpec, resolve_scheduler


@dataclass(eq=False)
class Envelope:
    """One queued message: arrival time, send order, and causal tag."""

    deliver_at: float
    seq: int
    message: Message
    heal: int
    depth: int


@dataclass
class HealStats(RoundStats):
    """Per-heal communication stats plus the async timing quantities.

    Extends the synchronous :class:`RoundStats` — ``sub_rounds`` is the
    heal's causal depth (number of delivery layers), directly comparable
    to the synchronous network's sub-round count — with virtual-time
    bookkeeping: ``heal_latency`` is how long the repair stayed in
    flight, the quantity EXP-ASYNC-THROUGHPUT measures.  Under the
    region-lease overlap policy a heal may be *requested* before it can
    inject (its footprint was leased to an in-flight repair);
    ``requested_at`` records that moment and ``lease_wait`` the time the
    event spent queued on the blocking coordinator.
    """

    injected_at: float = 0.0
    quiesced_at: float = 0.0
    label: str = ""
    requested_at: Optional[float] = None

    @property
    def heal_latency(self) -> float:
        return self.quiesced_at - self.injected_at

    @property
    def lease_wait(self) -> float:
        """Virtual time spent waiting for the footprint's leases."""
        if self.requested_at is None:
            return 0.0
        return self.injected_at - self.requested_at


class AsyncNetwork(Network):
    """Discrete-event message transport (see module docstring).

    Parameters
    ----------
    latency:
        Per-link delay model (name, instance, or ``(name, kwargs)``).
    scheduler:
        Delivery-order policy among legally deliverable messages.
    seed:
        Master seed; the latency and scheduler RNG streams are derived
        from it (disjointly), so one seed fixes the whole run.
    max_depth:
        Livelock guard: a heal deeper than this many causal layers
        raises (the synchronous network's ``max_sub_rounds``).
    record_samples:
        Keep the full ``(clock, open_heals, queued)`` time series (the
        benchmark's in-flight depth trace); peaks are always tracked.
    record_log:
        Keep the per-delivery event log (the determinism tests' pinned
        artifact).  Off by default: long campaigns deliver hundreds of
        thousands of messages and the log is pure overhead when nothing
        reads it.
    tracer:
        An :class:`~repro.obs.Tracer` to feed with causal spans: one
        span per heal, nested layer spans per causal depth, an instant
        per delivered message, control entries on the control track.
        Defaults to the shared no-op (one ``.enabled`` test per hook).
    profiler:
        A :class:`~repro.obs.PhaseProfiler`; when set, every delivered
        message's handler is wall-timed under ``deliver:<MessageType>``
        (the portion walks and RT rebuilds run inside those handlers).
    metrics:
        A :class:`~repro.obs.MetricsRegistry`; the kernel streams
        per-heal latency/depth histograms and delivery counters into it
        (O(1) memory however long the campaign runs).
    """

    def __init__(
        self,
        latency: LatencySpec = "uniform",
        scheduler: SchedulerSpec = "latency",
        seed: int = 0,
        max_depth: int = 4096,
        record_samples: bool = False,
        record_log: bool = False,
        tracer=NO_TRACE,
        profiler: Optional[PhaseProfiler] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        super().__init__(max_sub_rounds=max_depth)
        self.seed = seed
        self.tracer = tracer
        self.profiler = profiler
        self.metrics = metrics
        self.latency = resolve_latency(latency, seed=2 * seed + 1)
        self.scheduler = resolve_scheduler(scheduler, seed=2 * seed + 2)
        self.clock = 0.0
        self.delivered = 0
        self.event_log: List[Tuple[float, int, int, int, int, str]] = []
        self.record_samples = record_samples
        self.record_log = record_log
        self.samples: List[Tuple[float, int, int]] = []
        self.peak_open_heals = 0
        self.peak_queue_depth = 0
        self._seq = 0
        self._next_hid = 0
        self._buckets: Dict[int, Dict[int, List[Envelope]]] = {}
        self._pending: Dict[int, int] = {}
        self._depth_seen: Dict[int, int] = {}
        self._heal_stats: Dict[int, HealStats] = {}
        self._ctx: Optional[Tuple[int, int]] = None
        self._compat_hid: Optional[int] = None
        # Tracing state: heal span ids, the open layer span per heal
        # (depth, span id), and the clock of each heal's last delivery
        # (layer spans close at their own last delivery, not at the next
        # layer's first — honest durations on the heal's own track).
        self._heal_span: Dict[int, int] = {}
        self._layer_span: Dict[int, Tuple[int, int]] = {}
        self._layer_last: Dict[int, float] = {}

    # -- heal lifecycle ----------------------------------------------------
    def open_heal(
        self,
        label: str = "",
        round_no: Optional[int] = None,
        requested_at: Optional[float] = None,
    ) -> int:
        """Open an injection window: subsequent sends are this heal's
        depth-0 notifications.  Returns the heal id.

        ``requested_at`` back-dates the heal's request time for the
        lease-wait accounting: a heal deferred by the region-lease
        admission was *requested* when its churn event fired, even
        though it only injects now (see :attr:`HealStats.lease_wait`).
        """
        if self._ctx is not None:
            raise ProtocolError("open_heal while another context is active")
        hid = self._next_hid
        self._next_hid += 1
        self._heal_stats[hid] = HealStats(
            round=hid if round_no is None else round_no,
            injected_at=self.clock,
            label=label,
            requested_at=requested_at,
        )
        self._buckets[hid] = {}
        self._pending[hid] = 0
        self._depth_seen[hid] = -1
        self._ctx = (hid, -1)
        if self.tracer.enabled:
            track = (PID_PROTOCOL, hid)
            self.tracer.meta(
                "thread_name", f"heal {hid}" + (f" ({label})" if label else ""),
                track,
            )
            self._heal_span[hid] = self.tracer.begin(
                f"heal:{label}" if label else f"heal:{hid}",
                "heal",
                self.clock,
                track,
                args={"hid": hid},
            )
        return hid

    def close_injection(self) -> int:
        """End the injection window (the heal then drains on its own)."""
        if self._ctx is None or self._ctx[1] != -1:
            raise ProtocolError("close_injection without an open injection")
        hid = self._ctx[0]
        self._ctx = None
        if self._pending[hid] == 0:
            self._finalize(hid)
        return hid

    def heal_pending(self, hid: int) -> int:
        """Messages of heal ``hid`` still queued (0 = quiesced)."""
        return self._pending.get(hid, 0)

    def open_heals(self) -> List[int]:
        """Heals currently in flight (injected, not yet quiesced)."""
        return sorted(self._pending)

    def heal_stats(self, hid: int) -> HealStats:
        return self._heal_stats[hid]

    def _finalize(self, hid: int) -> None:
        stats = self._heal_stats[hid]
        stats.quiesced_at = self.clock
        stats.sub_rounds = self._depth_seen.pop(hid) + 1
        del self._buckets[hid]
        del self._pending[hid]
        self.stats_history.append(stats)
        if self.tracer.enabled:
            layer = self._layer_span.pop(hid, None)
            if layer is not None:
                self.tracer.end(layer[1], self._layer_last.pop(hid))
            self.tracer.end(
                self._heal_span.pop(hid),
                self.clock,
                # Exact floats, so a trace reader can rebuild the
                # summary's latency histogram bit-for-bit.
                args={
                    "heal_latency": stats.heal_latency,
                    "lease_wait": stats.lease_wait,
                    "sub_rounds": stats.sub_rounds,
                },
            )
        if self.metrics is not None:
            self.metrics.counter("kernel.heals").inc()
            self.metrics.histogram("kernel.heal_latency").observe(
                stats.heal_latency
            )
            self.metrics.histogram("kernel.heal_depth").observe(
                float(stats.sub_rounds)
            )

    # -- transport ---------------------------------------------------------
    def send(self, message: Message) -> None:
        """Queue a message; its heal/depth tag comes from the context."""
        if self._ctx is None:
            raise ProtocolError(
                "send outside a heal context (open_heal/begin_round first)"
            )
        hid, parent_depth = self._ctx
        depth = parent_depth + 1
        if depth > self.max_sub_rounds:
            raise ProtocolError(
                f"heal {hid}: no quiescence after {self.max_sub_rounds} layers"
            )
        stats = self._heal_stats[hid]
        stats.sent[message.sender] = stats.sent.get(message.sender, 0) + 1
        stats.bits += message.id_count() * self._id_bits + 8
        delay = self.latency.sample(message.sender, message.recipient)
        env = Envelope(self.clock + delay, self._seq, message, hid, depth)
        self._seq += 1
        self._buckets[hid].setdefault(depth, []).append(env)
        self._pending[hid] += 1
        self._sample()

    def _deliverable(self, horizon: float) -> List[Envelope]:
        """Messages legal to deliver now: front layer per heal, arrived
        within the horizon, and — within the layer — per-recipient FIFO.

        The last rule mirrors the synchronous model, which hands each
        node its sub-round messages as one send-ordered sequence; the
        Forgiving Tree handlers rely on that per-inbox order (e.g. a
        bypass brokerage intro and the matching hello must land in
        order), so a reordering across it is not a *legal* interleaving.
        Everything else — across recipients, across heals — is fair
        game for the scheduler.
        """
        out: List[Envelope] = []
        for depths in self._buckets.values():
            if not depths:
                continue
            best: Dict[int, Envelope] = {}
            for e in depths[min(depths)]:
                cur = best.get(e.message.recipient)
                if cur is None or e.seq < cur.seq:
                    best[e.message.recipient] = e
            # FIFO blocking: a recipient's later messages wait for its
            # first, even if a latency draw made them arrive earlier.
            out.extend(e for e in best.values() if e.deliver_at <= horizon)
        return out

    def _deliver(self, env: Envelope) -> None:
        depths = self._buckets[env.heal]
        front = depths[env.depth]
        front.remove(env)
        if not front:
            del depths[env.depth]
        self._pending[env.heal] -= 1
        self.clock = max(self.clock, env.deliver_at)
        self._depth_seen[env.heal] = max(self._depth_seen[env.heal], env.depth)
        msg = env.message
        if self.tracer.enabled:
            self._trace_delivery(env, msg)
        if self.record_log:
            self.event_log.append(
                (
                    round(self.clock, 9),
                    env.heal,
                    env.depth,
                    msg.sender,
                    msg.recipient,
                    type(msg).__name__,
                )
            )
        node = self.nodes.get(msg.recipient)
        if node is not None:  # else: recipient died; message dropped
            stats = self._heal_stats[env.heal]
            stats.received[msg.recipient] = (
                stats.received.get(msg.recipient, 0) + 1
            )
            prev = self._ctx
            self._ctx = (env.heal, env.depth)
            try:
                if self.profiler is None:
                    node.handle(msg)
                else:
                    t0 = time.perf_counter_ns()
                    node.handle(msg)
                    self.profiler.add(
                        "deliver:" + type(msg).__name__,
                        time.perf_counter_ns() - t0,
                    )
            finally:
                self._ctx = prev
        self.delivered += 1
        if self.metrics is not None:
            self.metrics.counter("kernel.delivered").inc()
        if self._pending[env.heal] == 0:
            self._finalize(env.heal)
        self._sample()

    def _trace_delivery(self, env: Envelope, msg: Message) -> None:
        """Span bookkeeping for one delivery: roll the heal's layer span
        when the causal depth advances, mark the delivery itself."""
        hid = env.heal
        track = (PID_PROTOCOL, hid)
        layer = self._layer_span.get(hid)
        if layer is None or layer[0] != env.depth:
            if layer is not None:
                self.tracer.end(layer[1], self._layer_last[hid])
            sid = self.tracer.begin(
                f"layer-{env.depth}",
                "layer",
                self.clock,
                track,
                args={"depth": env.depth},
                parent=self._heal_span[hid],
            )
            self._layer_span[hid] = (env.depth, sid)
        self._layer_last[hid] = self.clock
        self.tracer.instant(
            "deliver:" + type(msg).__name__,
            "msg",
            self.clock,
            track,
            args={
                "s": msg.sender,
                "r": msg.recipient,
                "depth": env.depth,
                "dropped": msg.recipient not in self.nodes,
            },
        )

    def run_until(self, horizon: float) -> None:
        """Deliver every message that can legally land by ``horizon``
        (new sends included, as long as they arrive in time)."""
        while True:
            deliverable = self._deliverable(horizon)
            if not deliverable:
                break
            self._deliver(self.scheduler.pick(deliverable))
        if horizon != math.inf:
            self.clock = max(self.clock, horizon)

    def quiesce(self) -> None:
        """Drain the queue completely (the epoch barrier primitive)."""
        self.run_until(math.inf)

    def drain_heals(self, hids) -> None:
        """Deliver until every heal in ``hids`` has quiesced.

        The targeted-drain primitive of the region-lease path: unlike
        :meth:`quiesce` it stops as soon as the named heals are done, so
        unrelated in-flight repairs keep their queued messages (and the
        clock only advances as far as the deliveries actually made).
        Deliveries are still scheduler-picked among *all* deliverable
        messages — stopping early narrows the drain, never the legality
        of the interleaving.
        """
        targets = [h for h in hids if self._pending.get(h, 0) > 0]
        while any(self._pending.get(h, 0) > 0 for h in targets):
            deliverable = self._deliverable(math.inf)
            if not deliverable:  # pragma: no cover - defensive
                raise ProtocolError(
                    f"heals {targets} pending but nothing deliverable"
                )
            self._deliver(self.scheduler.pick(deliverable))

    def log_control(self, tag: str, ref: int) -> None:
        """Record a control transition (lease grant/release, handoff,
        escalation) as a first-class entry in the causal event log.

        Control entries share the delivery-log tuple shape with sender
        and recipient of ``-1`` and a depth of ``-1``, so the pinned
        determinism artifacts interleave protocol traffic and admission
        decisions on one timeline.  ``ref`` is a *kernel heal id* for
        post-injection entries (``lease-grant``/``lease-release`` —
        these correlate directly with the heal's delivery rows) and an
        *admission-layer event id* for pre-injection entries
        (``lease-defer``/``lease-resume``/``lease-escalate-*``, whose
        heal does not exist yet); the tag says which id space applies.
        Also mirrored onto the tracer's control track (lease grant /
        defer / resume / escalate as span events) when tracing is on;
        otherwise a no-op unless ``record_log``.
        """
        if self.record_log:
            self.event_log.append((round(self.clock, 9), ref, -1, -1, -1, tag))
        if self.tracer.enabled:
            self.tracer.instant(
                tag, "control", self.clock, CONTROL_TRACK, args={"ref": ref}
            )

    def trace_instant(self, name: str, **args) -> None:
        """Driver-level trace mark (overrides the sync network's no-op):
        stamped with the virtual clock, on the current heal's track when
        a heal context is open, else on the control track."""
        if self.tracer.enabled:
            track = (
                (PID_PROTOCOL, self._ctx[0]) if self._ctx is not None
                else CONTROL_TRACK
            )
            self.tracer.instant(name, "driver", self.clock, track, args=args)

    # -- instrumentation ---------------------------------------------------
    def _sample(self) -> None:
        open_heals = sum(1 for c in self._pending.values() if c > 0)
        queued = sum(self._pending.values())
        if open_heals > self.peak_open_heals:
            self.peak_open_heals = open_heals
        if queued > self.peak_queue_depth:
            self.peak_queue_depth = queued
        if self.record_samples:
            self.samples.append((self.clock, open_heals, queued))
        if self.tracer.enabled:
            self.tracer.counter(
                "in-flight",
                self.clock,
                {"heals": open_heals, "queued": queued},
            )

    def in_flight(self) -> Tuple[int, int]:
        """Current ``(open heals, queued messages)``."""
        return (
            sum(1 for c in self._pending.values() if c > 0),
            sum(self._pending.values()),
        )

    # -- synchronous-Network compatibility ---------------------------------
    # The drivers' own delete()/insert()/setup paths call
    # begin_round/run_round; on this transport each such round is one heal
    # injected and immediately drained (per-event quiescence, but with
    # latency-ordered delivery).  Concurrent operation goes through
    # open_heal/close_injection + run_until/quiesce instead.
    def begin_round(self, round_no: int) -> None:
        self._compat_hid = self.open_heal(
            label=f"round-{round_no}", round_no=round_no
        )

    def run_round(self, round_no: int) -> RoundStats:
        if self._ctx is not None:
            self.close_injection()
        self.quiesce()
        assert self._compat_hid is not None
        stats = self._heal_stats[self._compat_hid]
        self._compat_hid = None
        return stats
