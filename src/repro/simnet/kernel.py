"""The discrete-event simulation kernel: an async transport for the
distributed protocols.

:class:`AsyncNetwork` is a drop-in replacement for the synchronous
:class:`~repro.distributed.network.Network`: it exposes the same
membership, ``send``/``begin_round``/``run_round`` and ``image_edges``
surface, so both distributed runtimes (the Forgiving Tree's and the
Forgiving Graph's) run on it *unmodified*.  Underneath, messages are not
delivered in lock-step sub-rounds but by a priority-queue scheduler with
per-link latencies (:mod:`repro.simnet.latency`) and a pluggable
delivery-order policy (:mod:`repro.simnet.scheduler`), and — the point
of the exercise — several *heals may be in flight at once*: a new churn
event can be injected while earlier repairs are still exchanging
messages.

Concurrency semantics (documented at length in ``docs/ASYNC.md``):

* Every message belongs to the *heal* (churn event) whose handling
  caused it, and carries its causal **depth** — hops from the event's
  injected notifications (depth 0).  Injection happens between
  :meth:`AsyncNetwork.open_heal` and :meth:`AsyncNetwork.close_injection`;
  messages sent while a delivery is being handled inherit its heal and
  ``depth + 1``.
* **Within one heal, delivery is layered**: a depth-``d+1`` message is
  only deliverable once every depth-``d`` message of the same heal has
  landed.  This is exactly the sub-round causality of the papers'
  synchronous model (Section 2: nodes communicate "asynchronously in
  parallel" but the algorithms are stated in rounds); the protocol
  handlers assume it, so the kernel preserves it *per heal*.
* **Across heals there is no ordering at all** — deliveries from
  different heals interleave freely, governed only by arrival times and
  the scheduler policy.  This is the concurrency the synchronous network
  forbids by quiescing after every event.
* A message is *deliverable* once the layering rule admits it and the
  clock can reach its arrival time.  Whenever several messages are
  deliverable, the :class:`~repro.simnet.scheduler.SchedulerPolicy`
  (including the adversarial one) picks which lands next — the legal
  interleavings of the model.

Determinism: given the construction seed, the whole run — clock values,
delivery order, the per-message :attr:`event_log` — is a pure function
of the injected events.  Tests pin this by comparing event logs.
"""

from __future__ import annotations

import math
import random
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..audit.schema import (
    ControlRecord,
    CrashRecord,
    DeadDropRecord,
    DeliverRecord,
    DropRecord,
    DupRecord,
    DupSuppressedRecord,
    LogRecord,
    SendRecord,
)
from ..core.errors import ProtocolError
from ..distributed.messages import Message
from ..distributed.network import Network, RoundStats
from ..faults.plan import FaultPlan
from ..obs.metrics import MetricsRegistry
from ..obs.profile import PhaseProfiler
from ..obs.trace import CONTROL_TRACK, NO_TRACE, PID_PROTOCOL
from .latency import LatencySpec, resolve_latency
from .scheduler import SchedulerSpec, resolve_scheduler


@dataclass(eq=False)
class Envelope:
    """One queued message: arrival time, send order, and causal tag.

    ``send_seq`` is the reliable-delivery layer's per-sender sequence
    number (``-1`` when no fault plan is attached): duplicate copies of
    one logical send share it, and recipients suppress the later copy
    by remembering ``(sender, send_seq)`` pairs in their seen-window.
    """

    deliver_at: float
    seq: int
    message: Message
    heal: int
    depth: int
    send_seq: int = -1


@dataclass
class HealStats(RoundStats):
    """Per-heal communication stats plus the async timing quantities.

    Extends the synchronous :class:`RoundStats` — ``sub_rounds`` is the
    heal's causal depth (number of delivery layers), directly comparable
    to the synchronous network's sub-round count — with virtual-time
    bookkeeping: ``heal_latency`` is how long the repair stayed in
    flight, the quantity EXP-ASYNC-THROUGHPUT measures.  Under the
    region-lease overlap policy a heal may be *requested* before it can
    inject (its footprint was leased to an in-flight repair);
    ``requested_at`` records that moment and ``lease_wait`` the time the
    event spent queued on the blocking coordinator.  ``hid`` is the
    kernel heal id — ``round`` may carry a caller-supplied round number
    instead, so this is the field that joins a heal's tallies to its
    event-log records (the audit layer keys on it).

    The fault tallies (all zero on a reliable network) count the
    hostile-network traffic *separately* from the base ``sent`` /
    ``received`` dicts, which keep exact parity with the sequential
    oracle's per-node tallies: ``dropped`` lost transmission attempts,
    ``retransmitted`` the per-sender re-sends that recovered them
    (equal in total, by construction), ``duplicated`` network-injected
    copies and ``dup_suppressed`` the seen-window discards that cancel
    them, ``handler_faults`` protocol errors swallowed inside a heal
    whose coordinator crashed (the repair pass owns that state).
    """

    hid: int = -1
    injected_at: float = 0.0
    quiesced_at: float = 0.0
    label: str = ""
    requested_at: Optional[float] = None
    dropped: int = 0
    retransmitted: Dict[int, int] = field(default_factory=dict)
    duplicated: int = 0
    dup_suppressed: int = 0
    handler_faults: int = 0

    @property
    def heal_latency(self) -> float:
        return self.quiesced_at - self.injected_at

    @property
    def lease_wait(self) -> float:
        """Virtual time spent waiting for the footprint's leases."""
        if self.requested_at is None:
            return 0.0
        return self.injected_at - self.requested_at

    @property
    def total_retransmissions(self) -> int:
        return sum(self.retransmitted.values())


class AsyncNetwork(Network):
    """Discrete-event message transport (see module docstring).

    Parameters
    ----------
    latency:
        Per-link delay model (name, instance, or ``(name, kwargs)``).
    scheduler:
        Delivery-order policy among legally deliverable messages.
    seed:
        Master seed; the latency and scheduler RNG streams are derived
        from it (disjointly), so one seed fixes the whole run.
    max_depth:
        Livelock guard: a heal deeper than this many causal layers
        raises (the synchronous network's ``max_sub_rounds``).
    record_samples:
        Keep the full ``(clock, open_heals, queued)`` time series (the
        benchmark's in-flight depth trace); peaks are always tracked.
    record_log:
        Keep the per-delivery event log (the determinism tests' pinned
        artifact).  Off by default: long campaigns deliver hundreds of
        thousands of messages and the log is pure overhead when nothing
        reads it.
    tracer:
        An :class:`~repro.obs.Tracer` to feed with causal spans: one
        span per heal, nested layer spans per causal depth, an instant
        per delivered message, control entries on the control track.
        Defaults to the shared no-op (one ``.enabled`` test per hook).
    profiler:
        A :class:`~repro.obs.PhaseProfiler`; when set, every delivered
        message's handler is wall-timed under ``deliver:<MessageType>``
        (the portion walks and RT rebuilds run inside those handlers).
    metrics:
        A :class:`~repro.obs.MetricsRegistry`; the kernel streams
        per-heal latency/depth histograms and delivery counters into it
        (O(1) memory however long the campaign runs).
    faults:
        A :class:`~repro.faults.FaultPlan` turning the network hostile:
        per-link loss (absorbed by the timeout/retransmit layer as
        virtual-time delay plus ``retransmitted`` tallies), duplication
        (cancelled by per-recipient seen-windows), and armed
        crash-during-heal kills (:meth:`arm_crash`).  The fault RNG is
        its own seeded stream (``2*seed+3`` unless the plan pins one),
        disjoint from the latency and scheduler streams, so a fault
        plan never perturbs the reliable part of the run.
    """

    def __init__(
        self,
        latency: LatencySpec = "uniform",
        scheduler: SchedulerSpec = "latency",
        seed: int = 0,
        max_depth: int = 4096,
        record_samples: bool = False,
        record_log: bool = False,
        tracer=NO_TRACE,
        profiler: Optional[PhaseProfiler] = None,
        metrics: Optional[MetricsRegistry] = None,
        faults: Optional[FaultPlan] = None,
    ):
        super().__init__(max_sub_rounds=max_depth)
        self.seed = seed
        self.tracer = tracer
        self.profiler = profiler
        self.metrics = metrics
        self.faults = faults if faults is not None and faults.active else None
        self._fault_rng = random.Random(
            faults.seed if faults is not None and faults.seed is not None
            else 2 * seed + 3
        )
        self.latency = resolve_latency(latency, seed=2 * seed + 1)
        self.scheduler = resolve_scheduler(scheduler, seed=2 * seed + 2)
        self.clock = 0.0
        self.delivered = 0
        self.event_log: List[LogRecord] = []
        self.record_samples = record_samples
        self.record_log = record_log
        self.samples: List[Tuple[float, int, int]] = []
        self.peak_open_heals = 0
        self.peak_queue_depth = 0
        self._seq = 0
        self._next_hid = 0
        self._buckets: Dict[int, Dict[int, List[Envelope]]] = {}
        self._pending: Dict[int, int] = {}
        self._depth_seen: Dict[int, int] = {}
        self._heal_stats: Dict[int, HealStats] = {}
        self._ctx: Optional[Tuple[int, int]] = None
        self._compat_hid: Optional[int] = None
        # Tracing state: heal span ids, the open layer span per heal
        # (depth, span id), and the clock of each heal's last delivery
        # (layer spans close at their own last delivery, not at the next
        # layer's first — honest durations on the heal's own track).
        self._heal_span: Dict[int, int] = {}
        self._layer_span: Dict[int, Tuple[int, int]] = {}
        self._layer_last: Dict[int, float] = {}
        # Fault-plane state: per-sender reliable-delivery sequence
        # numbers, per-recipient seen-windows (dup suppression), the
        # armed crash (heal id, layer, victim), the crash record, and
        # the heals whose protocol invariants a crash voided (handler
        # errors inside them are counted, not raised — the repair pass
        # owns that state).
        self._send_seq: Dict[int, int] = {}
        self._seen: Dict[int, "OrderedDict[Tuple[int, int], None]"] = {}
        self._crash_armed: Optional[Tuple[int, int, int]] = None
        self._crashed_heals: Set[int] = set()
        self.crashed: List[Tuple[int, int]] = []

    # -- heal lifecycle ----------------------------------------------------
    def open_heal(
        self,
        label: str = "",
        round_no: Optional[int] = None,
        requested_at: Optional[float] = None,
    ) -> int:
        """Open an injection window: subsequent sends are this heal's
        depth-0 notifications.  Returns the heal id.

        ``requested_at`` back-dates the heal's request time for the
        lease-wait accounting: a heal deferred by the region-lease
        admission was *requested* when its churn event fired, even
        though it only injects now (see :attr:`HealStats.lease_wait`).
        """
        if self._ctx is not None:
            raise ProtocolError("open_heal while another context is active")
        hid = self._next_hid
        self._next_hid += 1
        self._heal_stats[hid] = HealStats(
            round=hid if round_no is None else round_no,
            hid=hid,
            injected_at=self.clock,
            label=label,
            requested_at=requested_at,
        )
        self._buckets[hid] = {}
        self._pending[hid] = 0
        self._depth_seen[hid] = -1
        self._ctx = (hid, -1)
        if self.tracer.enabled:
            track = (PID_PROTOCOL, hid)
            self.tracer.meta(
                "thread_name", f"heal {hid}" + (f" ({label})" if label else ""),
                track,
            )
            self._heal_span[hid] = self.tracer.begin(
                f"heal:{label}" if label else f"heal:{hid}",
                "heal",
                self.clock,
                track,
                args={"hid": hid},
            )
        return hid

    def close_injection(self) -> int:
        """End the injection window (the heal then drains on its own)."""
        if self._ctx is None or self._ctx[1] != -1:
            raise ProtocolError("close_injection without an open injection")
        hid = self._ctx[0]
        self._ctx = None
        if self._pending[hid] == 0:
            self._finalize(hid)
        return hid

    def heal_pending(self, hid: int) -> int:
        """Messages of heal ``hid`` still queued (0 = quiesced)."""
        return self._pending.get(hid, 0)

    def open_heals(self) -> List[int]:
        """Heals currently in flight (injected, not yet quiesced)."""
        return sorted(self._pending)

    def heal_stats(self, hid: int) -> HealStats:
        return self._heal_stats[hid]

    def _finalize(self, hid: int) -> None:
        if self._crash_armed is not None and self._crash_armed[0] == hid:
            # The heal quiesced before reaching the armed layer: the
            # crash still lands, at the heal's last delivery.
            self._fire_crash()
        stats = self._heal_stats[hid]
        stats.quiesced_at = self.clock
        stats.sub_rounds = self._depth_seen.pop(hid) + 1
        del self._buckets[hid]
        del self._pending[hid]
        self.stats_history.append(stats)
        if self.tracer.enabled:
            layer = self._layer_span.pop(hid, None)
            if layer is not None:
                self.tracer.end(layer[1], self._layer_last.pop(hid))
            self.tracer.end(
                self._heal_span.pop(hid),
                self.clock,
                # Exact floats, so a trace reader can rebuild the
                # summary's latency histogram bit-for-bit.
                args={
                    "heal_latency": stats.heal_latency,
                    "lease_wait": stats.lease_wait,
                    "sub_rounds": stats.sub_rounds,
                },
            )
        if self.metrics is not None:
            self.metrics.counter("kernel.heals").inc()
            self.metrics.histogram("kernel.heal_latency").observe(
                stats.heal_latency
            )
            self.metrics.histogram("kernel.heal_depth").observe(
                float(stats.sub_rounds)
            )

    # -- transport ---------------------------------------------------------
    def send(self, message: Message) -> None:
        """Queue a message; its heal/depth tag comes from the context."""
        if self._ctx is None:
            raise ProtocolError(
                "send outside a heal context (open_heal/begin_round first)"
            )
        hid, parent_depth = self._ctx
        depth = parent_depth + 1
        if depth > self.max_sub_rounds:
            raise ProtocolError(
                f"heal {hid}: no quiescence after {self.max_sub_rounds} layers"
            )
        stats = self._heal_stats[hid]
        stats.sent[message.sender] = stats.sent.get(message.sender, 0) + 1
        stats.bits += message.id_count() * self._id_bits + 8
        extra_delay = 0.0
        send_seq = -1
        lost = 0
        dup_seq = -1
        if self.faults is not None:
            extra_delay, send_seq, lost, dup_seq = self._apply_link_faults(
                message, hid, depth, stats
            )
        delay = self.latency.sample(message.sender, message.recipient)
        env = Envelope(
            self.clock + extra_delay + delay,
            self._seq,
            message,
            hid,
            depth,
            send_seq=send_seq,
        )
        self._seq += 1
        self._buckets[hid].setdefault(depth, []).append(env)
        self._pending[hid] += 1
        if self.record_log:
            # One typed record per logical event, all stamped with the
            # envelope sequence numbers delivery records echo back — the
            # happens-before join key of the audit layer.
            t = round(self.clock, 9)
            name = type(message).__name__
            sender, recipient = message.sender, message.recipient
            self.event_log.append(
                SendRecord(
                    t, hid, depth, sender, recipient,
                    msg=name, seq=env.seq, ids=message.id_count(),
                )
            )
            for _ in range(lost):
                self.event_log.append(
                    DropRecord(t, hid, depth, sender, recipient,
                               msg=name, seq=env.seq)
                )
            if dup_seq >= 0:
                self.event_log.append(
                    DupRecord(t, hid, depth, sender, recipient,
                              msg=name, seq=dup_seq)
                )
        self._sample()

    def _apply_link_faults(
        self, message: Message, hid: int, depth: int, stats: HealStats
    ) -> Tuple[float, int, int, int]:
        """Draw this send's losses and duplication from the fault RNG.

        Loss is absorbed by the timeout/retransmit layer at send time:
        the number of consecutively lost attempts is drawn up front
        (per-attempt Bernoulli, capped at ``max_attempts - 1`` so the
        final attempt always delivers) and realized as the sum of the
        exponentially backed-off timeouts — one *delivered* envelope,
        arriving late, with the losses and re-sends tallied.  This keeps
        the heal's causal layering exact (a retransmitted message is
        still a depth-``d`` message, just a slower one) and the fault
        RNG stream consumption independent of delivery order.
        Duplication enqueues a second envelope sharing the send's
        reliable-delivery sequence number; the recipient's seen-window
        cancels it.

        Returns ``(extra_delay, send_seq, lost, dup_seq)`` — the caller
        (:meth:`send`) writes the event-log records, because the
        logical send's own envelope sequence number does not exist yet
        here (the duplicate envelope is allocated first, on purpose:
        envelope sequence numbers drive per-recipient FIFO and the
        scheduler tie-breaks, and the pinned determinism artifacts
        depend on that allocation order).  ``dup_seq`` is the duplicate
        envelope's sequence number, ``-1`` when no duplicate was drawn.
        """
        assert self.faults is not None
        plan = self.faults
        sender, recipient = message.sender, message.recipient
        p_drop, p_dup = plan.link(sender, recipient)
        send_seq = self._send_seq.get(sender, 0)
        self._send_seq[sender] = send_seq + 1
        lost = 0
        while (
            p_drop > 0.0
            and lost + 1 < plan.max_attempts
            and self._fault_rng.random() < p_drop
        ):
            lost += 1
        extra_delay = 0.0
        if lost:
            stats.dropped += lost
            stats.retransmitted[sender] = (
                stats.retransmitted.get(sender, 0) + lost
            )
            extra_delay = plan.retransmit_delay(lost)
            if self.tracer.enabled:
                self.tracer.instant(
                    "fault:drop",
                    "fault",
                    self.clock,
                    (PID_PROTOCOL, hid),
                    args={"s": sender, "r": recipient, "lost": lost},
                )
            if self.metrics is not None:
                self.metrics.counter("faults.drops").inc(lost)
                self.metrics.counter("faults.retransmissions").inc(lost)
        dup_seq = -1
        if p_dup > 0.0 and self._fault_rng.random() < p_dup:
            stats.duplicated += 1
            dup_delay = self.latency.sample(sender, recipient)
            dup = Envelope(
                self.clock + extra_delay + dup_delay,
                self._seq,
                message,
                hid,
                depth,
                send_seq=send_seq,
            )
            dup_seq = dup.seq
            self._seq += 1
            self._buckets[hid].setdefault(depth, []).append(dup)
            self._pending[hid] += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    "fault:dup",
                    "fault",
                    self.clock,
                    (PID_PROTOCOL, hid),
                    args={"s": sender, "r": recipient},
                )
            if self.metrics is not None:
                self.metrics.counter("faults.duplicates").inc()
        return extra_delay, send_seq, lost, dup_seq

    def _deliverable(self, horizon: float) -> List[Envelope]:
        """Messages legal to deliver now: front layer per heal, arrived
        within the horizon, and — within the layer — per-recipient FIFO.

        The last rule mirrors the synchronous model, which hands each
        node its sub-round messages as one send-ordered sequence; the
        Forgiving Tree handlers rely on that per-inbox order (e.g. a
        bypass brokerage intro and the matching hello must land in
        order), so a reordering across it is not a *legal* interleaving.
        Everything else — across recipients, across heals — is fair
        game for the scheduler.
        """
        out: List[Envelope] = []
        for depths in self._buckets.values():
            if not depths:
                continue
            best: Dict[int, Envelope] = {}
            for e in depths[min(depths)]:
                cur = best.get(e.message.recipient)
                if cur is None or e.seq < cur.seq:
                    best[e.message.recipient] = e
            # FIFO blocking: a recipient's later messages wait for its
            # first, even if a latency draw made them arrive earlier.
            out.extend(e for e in best.values() if e.deliver_at <= horizon)
        return out

    def _deliver(self, env: Envelope) -> None:
        depths = self._buckets[env.heal]
        front = depths[env.depth]
        front.remove(env)
        if not front:
            del depths[env.depth]
        self._pending[env.heal] -= 1
        self.clock = max(self.clock, env.deliver_at)
        self._depth_seen[env.heal] = max(self._depth_seen[env.heal], env.depth)
        if (
            self._crash_armed is not None
            and env.heal == self._crash_armed[0]
            and env.depth > self._crash_armed[1]
        ):
            self._fire_crash()
        msg = env.message
        if self.tracer.enabled:
            self._trace_delivery(env, msg)
        stats = self._heal_stats[env.heal]
        node = self.nodes.get(msg.recipient)
        # Duplicate suppression runs *before* the liveness check (and
        # dead-dropped copies still record their seen-window key), so
        # exactly one envelope of every duplicated send is suppressed —
        # ``duplicated == dup_suppressed`` holds even when the other
        # copy landed on a dead recipient.
        if env.send_seq >= 0 and self._is_duplicate(env):
            # The seen-window already holds this (sender, seq): a
            # network-duplicated copy whose original landed.  Suppress —
            # the handler never runs, ``received`` parity is preserved.
            stats.dup_suppressed += 1
            if self.record_log:
                # Exactly one record per arrival, written *after*
                # classification: a suppressed copy is not a delivery,
                # so the log's deliver records match ``received``
                # node-for-node (the audit accounting certificate).
                self.event_log.append(
                    DupSuppressedRecord(
                        round(self.clock, 9), env.heal, env.depth,
                        msg.sender, msg.recipient,
                        msg=type(msg).__name__, seq=env.seq,
                    )
                )
            if self.metrics is not None:
                self.metrics.counter("faults.dup_suppressed").inc()
        elif node is None:
            # Recipient died (deleted, or crashed without announcing):
            # the message is dropped *permanently* — the retransmit
            # layer re-sends lost messages, not messages to the dead —
            # and the drop is counted, never silent.
            stats.dead_drops += 1
            if self.record_log:
                self.event_log.append(
                    DeadDropRecord(
                        round(self.clock, 9), env.heal, env.depth,
                        msg.sender, msg.recipient,
                        msg=type(msg).__name__, seq=env.seq,
                    )
                )
            if self.metrics is not None:
                self.metrics.counter("kernel.dead_drops").inc()
        else:
            stats.received[msg.recipient] = (
                stats.received.get(msg.recipient, 0) + 1
            )
            if self.record_log:
                self.event_log.append(
                    DeliverRecord(
                        round(self.clock, 9), env.heal, env.depth,
                        msg.sender, msg.recipient,
                        msg=type(msg).__name__, seq=env.seq,
                    )
                )
            prev = self._ctx
            self._ctx = (env.heal, env.depth)
            try:
                if self.profiler is None:
                    node.handle(msg)
                else:
                    t0 = time.perf_counter_ns()
                    node.handle(msg)
                    self.profiler.add(
                        "deliver:" + type(msg).__name__,
                        time.perf_counter_ns() - t0,
                    )
            except ProtocolError:
                # Inside a heal whose coordinator crashed, the protocol
                # invariants are already void (that is what the crash
                # *means*); count the handler's complaint and let the
                # repair pass restore legality.  Any other heal's error
                # is a real bug and propagates.
                if env.heal not in self._crashed_heals:
                    raise
                stats.handler_faults += 1
                if self.metrics is not None:
                    self.metrics.counter("faults.handler_faults").inc()
            finally:
                self._ctx = prev
        self.delivered += 1
        if self.metrics is not None:
            self.metrics.counter("kernel.delivered").inc()
        if self._pending[env.heal] == 0:
            self._finalize(env.heal)
        self._sample()

    def _is_duplicate(self, env: Envelope) -> bool:
        """Check-and-record against the recipient's seen-window."""
        assert self.faults is not None
        window = self._seen.setdefault(env.message.recipient, OrderedDict())
        key = (env.message.sender, env.send_seq)
        if key in window:
            return True
        window[key] = None
        while len(window) > self.faults.seen_window:
            window.popitem(last=False)
        return False

    def _trace_delivery(self, env: Envelope, msg: Message) -> None:
        """Span bookkeeping for one delivery: roll the heal's layer span
        when the causal depth advances, mark the delivery itself."""
        hid = env.heal
        track = (PID_PROTOCOL, hid)
        layer = self._layer_span.get(hid)
        if layer is None or layer[0] != env.depth:
            if layer is not None:
                self.tracer.end(layer[1], self._layer_last[hid])
            sid = self.tracer.begin(
                f"layer-{env.depth}",
                "layer",
                self.clock,
                track,
                args={"depth": env.depth},
                parent=self._heal_span[hid],
            )
            self._layer_span[hid] = (env.depth, sid)
        self._layer_last[hid] = self.clock
        self.tracer.instant(
            "deliver:" + type(msg).__name__,
            "msg",
            self.clock,
            track,
            args={
                "s": msg.sender,
                "r": msg.recipient,
                "depth": env.depth,
                "dropped": msg.recipient not in self.nodes,
            },
        )

    # -- fault plane -------------------------------------------------------
    def arm_crash(self, hid: int, layer: int, victim: int) -> None:
        """Arm a crash-during-heal: kill ``victim`` at heal ``hid``'s
        first delivery deeper than ``layer`` (between delivery layers),
        or at the heal's quiescence if it never gets that deep.

        The victim dies *silently* — no ``Deleted`` notification, unlike
        the model's announced departures: queued messages **to** it
        become counted dead-recipient drops, messages already sent
        **by** it still deliver (they were in flight), and its
        neighbors' state dangles until a :class:`~repro.faults.RepairPass`
        re-converges the overlay.
        """
        if victim not in self.nodes:
            raise ProtocolError(f"crash victim {victim} is not alive")
        if self._crash_armed is not None:
            raise ProtocolError("a crash is already armed")
        self._crash_armed = (hid, layer, victim)

    def _fire_crash(self) -> None:
        assert self._crash_armed is not None
        hid, _layer, victim = self._crash_armed
        self._crash_armed = None
        self.nodes.pop(victim, None)
        # The victim's seen-window outlives it on purpose: a duplicate
        # racing the crash must still find its original's key, keeping
        # ``duplicated == dup_suppressed`` exact.  (:meth:`adopt` clears
        # the windows once the kernel is drained.)
        self._crashed_heals.add(hid)
        self.crashed.append((hid, victim))
        if self.record_log:
            self.event_log.append(
                CrashRecord(round(self.clock, 9), hid, -1, victim, -1)
            )
        if self.tracer.enabled:
            self.tracer.instant(
                "fault:crash",
                "fault",
                self.clock,
                (PID_PROTOCOL, hid),
                args={"victim": victim},
            )
        if self.metrics is not None:
            self.metrics.counter("faults.crashes").inc()

    def adopt(self, nodes) -> None:
        """Replace the membership wholesale (the repair pass's node
        transplant): the kernel must be fully drained — no envelope may
        reference a node about to be discarded.  Seen-windows reset with
        the nodes; sequence numbers keep counting (stale-window dups are
        impossible across a reset, duplicate seqnos would not be)."""
        if any(self._pending.values()):
            raise ProtocolError("adopt on a kernel with messages in flight")
        self.nodes.clear()
        self._seen.clear()
        for node in nodes:
            self.register(node)

    def run_until(self, horizon: float) -> None:
        """Deliver every message that can legally land by ``horizon``
        (new sends included, as long as they arrive in time)."""
        while True:
            deliverable = self._deliverable(horizon)
            if not deliverable:
                break
            self._deliver(self.scheduler.pick(deliverable))
        if horizon != math.inf:
            self.clock = max(self.clock, horizon)

    def quiesce(self) -> None:
        """Drain the queue completely (the epoch barrier primitive)."""
        self.run_until(math.inf)

    def drain_heals(self, hids) -> None:
        """Deliver until every heal in ``hids`` has quiesced.

        The targeted-drain primitive of the region-lease path: unlike
        :meth:`quiesce` it stops as soon as the named heals are done, so
        unrelated in-flight repairs keep their queued messages (and the
        clock only advances as far as the deliveries actually made).
        Deliveries are still scheduler-picked among *all* deliverable
        messages — stopping early narrows the drain, never the legality
        of the interleaving.
        """
        targets = [h for h in hids if self._pending.get(h, 0) > 0]
        while any(self._pending.get(h, 0) > 0 for h in targets):
            deliverable = self._deliverable(math.inf)
            if not deliverable:  # pragma: no cover - defensive
                raise ProtocolError(
                    f"heals {targets} pending but nothing deliverable"
                )
            self._deliver(self.scheduler.pick(deliverable))

    def log_control(self, tag: str, ref: int) -> None:
        """Record a control transition (lease grant/release, handoff,
        escalation) as a first-class entry in the causal event log.

        Control entries are :class:`~repro.audit.schema.ControlRecord`
        rows (sender/recipient/depth of ``-1``), so the pinned
        determinism artifacts interleave protocol traffic and admission
        decisions on one timeline.  ``ref`` is a *kernel heal id* for
        post-injection entries (``lease-grant``/``lease-release`` —
        these correlate directly with the heal's delivery rows) and an
        *admission-layer event id* for pre-injection entries
        (``lease-defer``/``lease-resume``/``lease-escalate-*``, whose
        heal does not exist yet); the tag says which id space applies.
        Also mirrored onto the tracer's control track (lease grant /
        defer / resume / escalate as span events) when tracing is on;
        otherwise a no-op unless ``record_log``.
        """
        if self.record_log:
            self.event_log.append(
                ControlRecord(round(self.clock, 9), ref, -1, -1, -1, ctl=tag)
            )
        if self.tracer.enabled:
            self.tracer.instant(
                tag, "control", self.clock, CONTROL_TRACK, args={"ref": ref}
            )

    def trace_instant(self, name: str, **args) -> None:
        """Driver-level trace mark (overrides the sync network's no-op):
        stamped with the virtual clock, on the current heal's track when
        a heal context is open, else on the control track."""
        if self.tracer.enabled:
            track = (
                (PID_PROTOCOL, self._ctx[0]) if self._ctx is not None
                else CONTROL_TRACK
            )
            self.tracer.instant(name, "driver", self.clock, track, args=args)

    # -- instrumentation ---------------------------------------------------
    def _sample(self) -> None:
        open_heals = sum(1 for c in self._pending.values() if c > 0)
        queued = sum(self._pending.values())
        if open_heals > self.peak_open_heals:
            self.peak_open_heals = open_heals
        if queued > self.peak_queue_depth:
            self.peak_queue_depth = queued
        if self.record_samples:
            self.samples.append((self.clock, open_heals, queued))
        if self.tracer.enabled:
            self.tracer.counter(
                "in-flight",
                self.clock,
                {"heals": open_heals, "queued": queued},
            )

    def in_flight(self) -> Tuple[int, int]:
        """Current ``(open heals, queued messages)``."""
        return (
            sum(1 for c in self._pending.values() if c > 0),
            sum(self._pending.values()),
        )

    # -- synchronous-Network compatibility ---------------------------------
    # The drivers' own delete()/insert()/setup paths call
    # begin_round/run_round; on this transport each such round is one heal
    # injected and immediately drained (per-event quiescence, but with
    # latency-ordered delivery).  Concurrent operation goes through
    # open_heal/close_injection + run_until/quiesce instead.
    def begin_round(self, round_no: int) -> None:
        self._compat_hid = self.open_heal(
            label=f"round-{round_no}", round_no=round_no
        )

    def run_round(self, round_no: int) -> RoundStats:
        if self._ctx is not None:
            self.close_injection()
        self.quiesce()
        assert self._compat_hid is not None
        stats = self._heal_stats[self._compat_hid]
        self._compat_hid = None
        return stats
