"""simnet — the discrete-event async network runtime.

Replaces the synchronous network's per-event quiescence with a
priority-queue scheduler, per-link latency models, scheduler
adversaries, and *concurrent churn*: several heals in flight at once,
checkpointed by quiesce barriers and cross-validated against the
sequential engines.  See ``docs/ASYNC.md``.
"""

from .kernel import AsyncNetwork, Envelope, HealStats
from .latency import (
    LATENCY_CATALOG,
    ConstantLatency,
    HeavyTailLatency,
    LatencyModel,
    UniformLatency,
    resolve_latency,
)
from .scheduler import (
    SCHEDULER_CATALOG,
    AdversarialScheduler,
    FifoScheduler,
    LatencyScheduler,
    RandomScheduler,
    SchedulerPolicy,
    resolve_scheduler,
)
from .transport import (
    OVERLAP_POLICIES,
    TRANSPORT_MODES,
    TransportDivergence,
    TransportMirror,
    TransportSpec,
    TransportSummary,
    heal_footprint,
    resolve_transport,
)

__all__ = [
    "LATENCY_CATALOG",
    "OVERLAP_POLICIES",
    "SCHEDULER_CATALOG",
    "TRANSPORT_MODES",
    "AdversarialScheduler",
    "AsyncNetwork",
    "ConstantLatency",
    "Envelope",
    "FifoScheduler",
    "HealStats",
    "HeavyTailLatency",
    "LatencyModel",
    "LatencyScheduler",
    "RandomScheduler",
    "SchedulerPolicy",
    "TransportDivergence",
    "TransportMirror",
    "TransportSpec",
    "TransportSummary",
    "UniformLatency",
    "heal_footprint",
    "resolve_latency",
    "resolve_scheduler",
    "resolve_transport",
]
