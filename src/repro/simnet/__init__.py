"""simnet — the discrete-event async network runtime.

Replaces the synchronous network's per-event quiescence with a
priority-queue scheduler, per-link latency models, scheduler
adversaries, and *concurrent churn*: several heals in flight at once,
checkpointed by quiesce barriers and cross-validated against the
sequential engines.  See ``docs/ASYNC.md``.

The kernel also hosts the hostile-network fault plane
(:mod:`repro.faults`): attach a
:class:`~repro.faults.FaultPlan` via ``TransportSpec(faults=...)`` (or
the campaign runners' ``faults=`` knob) for seeded message loss
absorbed by a timeout/retransmit layer, duplication cancelled by
seen-windows, and crash-during-heal kills recovered by the
self-stabilizing repair pass.  See ``docs/FAULTS.md``.
"""

from .kernel import AsyncNetwork, Envelope, HealStats
from .latency import (
    LATENCY_CATALOG,
    ConstantLatency,
    HeavyTailLatency,
    LatencyModel,
    UniformLatency,
    resolve_latency,
)
from .scheduler import (
    SCHEDULER_CATALOG,
    AdversarialScheduler,
    FifoScheduler,
    LatencyScheduler,
    RandomScheduler,
    SchedulerPolicy,
    resolve_scheduler,
)
from .transport import (
    OVERLAP_POLICIES,
    TRANSPORT_MODES,
    TransportDivergence,
    TransportMirror,
    TransportSpec,
    TransportSummary,
    heal_footprint,
    resolve_transport,
)

__all__ = [
    "LATENCY_CATALOG",
    "OVERLAP_POLICIES",
    "SCHEDULER_CATALOG",
    "TRANSPORT_MODES",
    "AdversarialScheduler",
    "AsyncNetwork",
    "ConstantLatency",
    "Envelope",
    "FifoScheduler",
    "HealStats",
    "HeavyTailLatency",
    "LatencyModel",
    "LatencyScheduler",
    "RandomScheduler",
    "SchedulerPolicy",
    "TransportDivergence",
    "TransportMirror",
    "TransportSpec",
    "TransportSummary",
    "UniformLatency",
    "heal_footprint",
    "resolve_latency",
    "resolve_scheduler",
    "resolve_transport",
]
