"""Scheduler policies: who decides the order of concurrent deliveries.

The async kernel only constrains delivery by *legality* (per-heal causal
layers and each message's arrival time, see :mod:`repro.simnet.kernel`);
whenever several queued messages are legally deliverable at once, a
:class:`SchedulerPolicy` picks which one lands next.  That choice is
exactly the freedom a real asynchronous network (or a malicious message
router) has, so the policy doubles as the model's *scheduler adversary*:
the papers prove their guarantees for every legal interleaving, and the
policies here let tests and benchmarks actually quantify over them.

* :class:`LatencyScheduler` — earliest arrival first; the "honest
  network" baseline and the default.
* :class:`FifoScheduler` — send order, ignoring latency skew; the
  interleaving closest to the synchronous sub-round network the
  protocols were developed under.
* :class:`AdversarialScheduler` — newest send first (LIFO): starves the
  oldest in-flight heals for as long as legality allows, maximizing the
  number of concurrently open heals and inverting every ordering the
  synchronous network ever exhibited.  The deterministic worst case.
* :class:`RandomScheduler` — seeded uniform choice among the deliverable
  set; the Hypothesis fuzzing hook (each seed is one legal interleaving).
"""

from __future__ import annotations

import random
from typing import Dict, Sequence, Type, Union


class SchedulerPolicy:
    """Picks the next envelope among the legally deliverable set."""

    name: str = "abstract"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def reseed(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def pick(self, deliverable: Sequence["object"]) -> "object":
        """Choose one envelope; ``deliverable`` is never empty.

        Envelopes expose ``deliver_at`` (arrival time) and ``seq``
        (global send order) — see :class:`repro.simnet.kernel.Envelope`.
        """
        raise NotImplementedError


class LatencyScheduler(SchedulerPolicy):
    """Earliest arrival first (ties by send order): the honest network."""

    name = "latency"

    def pick(self, deliverable):
        return min(deliverable, key=lambda e: (e.deliver_at, e.seq))


class FifoScheduler(SchedulerPolicy):
    """Send order, regardless of latency skew (closest to sub-rounds)."""

    name = "fifo"

    def pick(self, deliverable):
        return min(deliverable, key=lambda e: e.seq)


class AdversarialScheduler(SchedulerPolicy):
    """Newest send first: the deterministic worst-case message router.

    Always delivering the most recently sent legal message starves the
    oldest heals (their remaining messages wait until nothing newer is
    legal), which maximizes concurrent in-flight heals and explores the
    interleavings farthest from the synchronous network's FIFO order.
    """

    name = "adversarial"

    def pick(self, deliverable):
        return max(deliverable, key=lambda e: e.seq)


class RandomScheduler(SchedulerPolicy):
    """Seeded uniform choice: one legal interleaving per seed."""

    name = "random"

    def pick(self, deliverable):
        return deliverable[self._rng.randrange(len(deliverable))]


SCHEDULER_CATALOG: Dict[str, Type[SchedulerPolicy]] = {
    cls.name: cls
    for cls in (
        LatencyScheduler,
        FifoScheduler,
        AdversarialScheduler,
        RandomScheduler,
    )
}

SchedulerSpec = Union[str, SchedulerPolicy]


def resolve_scheduler(spec: SchedulerSpec, seed: int = 0) -> SchedulerPolicy:
    """Build a scheduler policy from an instance or a catalog name."""
    if isinstance(spec, SchedulerPolicy):
        spec.reseed(seed)
        return spec
    if spec in SCHEDULER_CATALOG:
        return SCHEDULER_CATALOG[spec](seed=seed)
    raise ValueError(
        f"unknown scheduler {spec!r} (one of {sorted(SCHEDULER_CATALOG)})"
    )
