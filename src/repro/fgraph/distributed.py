"""Distributed Forgiving Graph: the counted-message healing protocol.

Runs the same healing algorithm as :class:`~repro.fgraph.engine.ForgivingGraph`
over the :class:`~repro.distributed.network.Network` simulator, with every
decision made from per-node local state and every byte of coordination
paid for as real counted messages.  The per-node message tallies match
the sequential engine's synthesized ones **exactly** (the cross-check the
tests pin node-for-node), the same discipline the Forgiving Tree's
insert/delete handshakes established.

One heal round, ``delete(v)``:

1. **Failure fan-out** — the detector notifies every image neighbor of
   ``v`` (:class:`FGDeleted`, attributed to the victim, as in the FT
   protocol).  The notification names the round's *coordinator* — the
   smallest-id image neighbor — and how many reports it should expect.
2. **Reports in** — each notified node prunes the victim from its local
   state and sends the coordinator one :class:`FGReport` carrying its
   current insertion-subtree weight and the leaf **manifest** of the
   haft it belongs to (the FG analog of a Forgiving Tree will: state
   shipped ahead of failures so any survivor can rebuild the region).
3. **Portions out** — the coordinator folds the manifests (dropping the
   victim's port, adding the victim's surviving direct neighbors,
   refreshing first-hand weights), builds the identical freshly balanced
   RT the sequential engine builds, and ships each surviving member its
   new portion (:class:`FGPortion`, ``WillPortionMsg``-style): its port
   parent, the helper it now simulates (if any), and the new manifest.

Insertions run the FT-style handshake (:class:`FGInsertRequest` /
:class:`FGInsertAck`) followed by the **weight-update cascade**: one
:class:`FGWeightUpdate` per hop up the live chain of insertion parents,
so the subtree weights the next rebuild keys on are already in place.

Message sizes are accounted honestly: reports and portions carry a leaf
manifest, so unlike the FT's O(1)-id messages they are O(L) ids for an
L-leaf haft — the price of the *freshly balanced* (rebuild-on-merge)
reading of the 2009 algorithm; see ``docs/FORGIVING_GRAPH.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.errors import (
    NodeNotFoundError,
    ProtocolError,
    SimulationOverError,
)
from ..core.events import normalize_wave
from ..distributed.messages import Message
from ..distributed.network import Network, RoundStats
from ..graphs.adjacency import Graph
from .rtree import Ref, ReconstructionTree, fold_manifests

#: ``(member, weight)`` leaf list, as carried by reports and portions.
Manifest = Tuple[Tuple[int, int], ...]

#: ``(parent ref | None, left child ref, right child ref)`` of a helper.
HelperLinks = Tuple[Optional[Ref], Ref, Ref]


def _manifest_ids(manifest: Optional[Manifest]) -> int:
    return 0 if manifest is None else len(manifest)


@dataclass(frozen=True)
class FGDeleted(Message):
    """Failure notification: ``victim`` died; report to ``coordinator``."""

    victim: int
    coordinator: int
    n_reports: int

    def id_count(self) -> int:
        return 4


@dataclass(frozen=True)
class FGReport(Message):
    """A notified neighbor's contribution to the rebuild: its fresh
    weight, whether it was a direct ideal neighbor of the victim, and
    the manifest of the haft it belongs to (None if portless)."""

    weight: int
    is_direct: bool
    manifest: Optional[Manifest]

    def id_count(self) -> int:
        return 3 + 2 * _manifest_ids(self.manifest)


@dataclass(frozen=True)
class FGPortion(Message):
    """The coordinator ships one member its rebuilt portion: the new
    port parent, the helper it simulates (if any), and the manifest.
    A portion with no manifest dissolves the member's haft state."""

    port_parent_sim: Optional[int]
    helper: Optional[HelperLinks]
    manifest: Optional[Manifest]

    def id_count(self) -> int:
        return 3 + (0 if self.helper is None else 3) + 2 * _manifest_ids(self.manifest)


@dataclass(frozen=True)
class FGInsertRequest(Message):
    """A joiner asks a live node to adopt it (INSERT handshake, half 1)."""

    def id_count(self) -> int:
        return 2


@dataclass(frozen=True)
class FGInsertAck(Message):
    """The attachment point confirms adoption (INSERT handshake, half 2)."""

    def id_count(self) -> int:
        return 2


@dataclass(frozen=True)
class FGWeightUpdate(Message):
    """One hop of the insertion-weight cascade: "+1 joined below you"."""

    def id_count(self) -> int:
        return 2


class FGNode:
    """Local state and handlers of one real node in the FG protocol."""

    def __init__(self, nid: int):
        self.nid = nid
        self.network: Optional[Network] = None
        self.direct: Set[int] = set()
        self.ins_parent: Optional[int] = None
        self.jw: int = 1
        self.port_parent_sim: Optional[int] = None
        self.helper: Optional[HelperLinks] = None
        self.manifest: Optional[Manifest] = None
        # Coordinator duty (at most one heal round at a time).
        self._await_reports: int = 0
        self._gather: List[Tuple[int, int, bool, Optional[Manifest]]] = []
        self._victim: Optional[int] = None
        self._victim_was_direct = False

    # -- plumbing ----------------------------------------------------------
    @property
    def pending(self) -> Set[str]:
        """Outstanding obligations (empty at quiescence)."""
        return {"reports"} if self._await_reports else set()

    def _send(self, message: Message) -> None:
        assert self.network is not None
        self.network.send(message)

    def neighbor_claims(self) -> Set[int]:
        """Image neighbors claimed from local state (strictly symmetric
        with every other node's claims — the network validates)."""
        claims = set(self.direct)
        if self.port_parent_sim is not None:
            claims.add(self.port_parent_sim)
        if self.helper is not None:
            parent, left, right = self.helper
            if parent is not None:
                claims.add(parent[0])
            claims.add(left[0])
            claims.add(right[0])
        claims.discard(self.nid)
        return claims

    # -- dispatch ----------------------------------------------------------
    def handle(self, message: Message) -> None:
        if isinstance(message, FGDeleted):
            self._on_deleted(message)
        elif isinstance(message, FGReport):
            self._on_report(message)
        elif isinstance(message, FGPortion):
            self._on_portion(message)
        elif isinstance(message, FGInsertRequest):
            self._on_insert_request(message)
        elif isinstance(message, FGInsertAck):
            pass  # the joiner set its state optimistically at request time
        elif isinstance(message, FGWeightUpdate):
            self._on_weight_update(message)
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"node {self.nid}: unknown message {message}")

    # -- failure handling --------------------------------------------------
    def _on_deleted(self, msg: FGDeleted) -> None:
        was_direct = msg.victim in self.direct
        self.direct.discard(msg.victim)
        if self.ins_parent == msg.victim:
            self.ins_parent = None  # insertion-forest root from now on
        if msg.coordinator == self.nid:
            if self._await_reports or self._victim is not None:
                # Coordinator duty is single-slot: a second heal naming
                # this node coordinator mid-gather would clobber the
                # report tally.  The admission layers guarantee it never
                # happens — the sync network quiesces per event, the
                # async transport's footprints/leases keep a busy
                # coordinator's region exclusive until release — so a
                # message landing here means an overlapping heal was
                # admitted unsafely.  Fail loudly instead of corrupting.
                raise ProtocolError(
                    f"node {self.nid}: asked to coordinate the heal of "
                    f"{msg.victim} while still coordinating {self._victim} "
                    "(overlapping heal admitted without a lease handoff)"
                )
            self._victim = msg.victim
            self._victim_was_direct = was_direct
            self._await_reports = msg.n_reports - 1  # everyone but itself
            self._gather = []
            if self._await_reports == 0:
                self._finalize()
        else:
            self._send(
                FGReport(
                    sender=self.nid,
                    recipient=msg.coordinator,
                    weight=self.jw,
                    is_direct=was_direct,
                    manifest=self.manifest,
                )
            )

    def _on_report(self, msg: FGReport) -> None:
        if self._await_reports <= 0:  # pragma: no cover - defensive
            raise ProtocolError(f"node {self.nid}: unexpected report")
        self._gather.append((msg.sender, msg.weight, msg.is_direct, msg.manifest))
        self._await_reports -= 1
        if self._await_reports == 0:
            self._finalize()

    def _finalize(self) -> None:
        """Coordinator: fold manifests, build the RT, ship the portions."""
        victim = self._victim
        assert victim is not None
        contributions = self._gather + [
            (self.nid, self.jw, self._victim_was_direct, self.manifest)
        ]
        manifests = {m for _, _, _, m in contributions if m is not None}
        fresh = {nid: w for nid, w, is_direct, _ in contributions if is_direct}
        refresh = {nid: w for nid, w, _, _ in contributions}
        leaves = fold_manifests(
            (dict(m) for m in sorted(manifests)),
            drop=(victim,),
            fresh=fresh,
            refresh=refresh,
        )
        self._victim = None
        self._gather = []
        if len(leaves) >= 2:
            rt = ReconstructionTree.build(leaves)
            manifest = rt.manifest()
            for member in sorted(rt.members):
                portion = (
                    rt.port_parent[member],
                    rt.helper_links.get(member),
                    manifest,
                )
                if member == self.nid:
                    self._apply_portion(*portion)
                else:
                    self._send(
                        FGPortion(
                            sender=self.nid,
                            recipient=member,
                            port_parent_sim=portion[0],
                            helper=portion[1],
                            manifest=portion[2],
                        )
                    )
        else:
            # 0 or 1 leaves: the region dissolves; the lone survivor (if
            # any) can only be the coordinator itself.  Heir promotion
            # without a message.
            if leaves and leaves[0][0] != self.nid:
                raise ProtocolError(
                    f"node {self.nid}: lone survivor {leaves[0][0]} is "
                    "not the coordinator"
                )
            self._apply_portion(None, None, None)

    def _apply_portion(
        self,
        port_parent_sim: Optional[int],
        helper: Optional[HelperLinks],
        manifest: Optional[Manifest],
    ) -> None:
        self.port_parent_sim = port_parent_sim
        self.helper = helper
        self.manifest = manifest

    def _on_portion(self, msg: FGPortion) -> None:
        self._apply_portion(msg.port_parent_sim, msg.helper, msg.manifest)

    # -- churn handling ----------------------------------------------------
    def _on_insert_request(self, msg: FGInsertRequest) -> None:
        self.direct.add(msg.sender)
        self.jw += 1
        self._send(FGInsertAck(sender=self.nid, recipient=msg.sender))
        if self.ins_parent is not None:
            self._send(FGWeightUpdate(sender=self.nid, recipient=self.ins_parent))

    def _on_weight_update(self, msg: FGWeightUpdate) -> None:
        self.jw += 1
        if self.ins_parent is not None:
            self._send(FGWeightUpdate(sender=self.nid, recipient=self.ins_parent))


class DistributedForgivingGraph:
    """Message-passing Forgiving Graph over an initial general graph.

    The public surface mirrors :class:`DistributedForgivingTree` where it
    matters for cross-validation: ``alive``, ``delete`` / ``insert`` /
    ``insert_batch`` returning per-round
    :class:`~repro.distributed.network.RoundStats`, and the image graph
    derived strictly from both endpoints' local claims.
    """

    def __init__(self, graph: Graph, network: Optional[Network] = None):
        if not graph:
            raise NodeNotFoundError(-1, "empty initial graph")
        # The weight cascade runs one hop per sub-round, so a round's
        # latency is the insertion-forest depth — deeper than the FT's
        # O(1) heals.  Keep a generous livelock guard instead of the
        # default 64.  ``network`` plugs in an alternative transport
        # (e.g. the discrete-event :class:`repro.simnet.AsyncNetwork`,
        # whose ``max_depth`` should be similarly generous); it must be
        # empty.
        if network is not None and len(network):
            raise ProtocolError("provided network already has nodes")
        self.network = Network(max_sub_rounds=4096) if network is None else network
        self.original_degree: Dict[int, int] = {
            n: len(neigh) for n, neigh in graph.items()
        }
        self._ever: Set[int] = set(graph)
        self.rounds = 0
        for nid in graph:
            self.network.register(FGNode(nid))
        for nid, neigh in graph.items():
            node = self.network.nodes[nid]
            node.direct = {int(m) for m in neigh if int(m) != nid}
        # No setup traffic: hafts (and their manifests) only exist after
        # the first failure.  The empty round keeps stats indexing
        # aligned with the FT runtime (round 0 = setup).
        self.network.begin_round(0)
        self.setup_stats = self.network.run_round(0)

    # ------------------------------------------------------------------
    @property
    def alive(self) -> Set[int]:
        return set(self.network.nodes)

    def __len__(self) -> int:
        return len(self.network)

    def __contains__(self, nid: int) -> bool:
        return nid in self.network

    def check_delete(self, nid: int) -> None:
        """Validate a deletion without mutating anything."""
        if not self.network.nodes:
            raise SimulationOverError("all nodes already deleted")
        if nid not in self.network:
            raise NodeNotFoundError(nid, "delete")

    def heal_coordinator(self, nid: int) -> Optional[int]:
        """The coordinator the heal of ``nid`` would elect, from live
        local state: the smallest-id image neighbor — the same node
        :meth:`inject_delete`'s fan-out names.  Under the region-lease
        overlap policy this is also the handoff anchor a delegated
        overlapping event queues on (``docs/LEASES.md``); ``None`` for
        an isolated victim."""
        if nid not in self.network:
            raise NodeNotFoundError(nid, "heal_coordinator")
        claims = self.network.nodes[nid].neighbor_claims()
        return min(claims) if claims else None

    def inject_delete(self, nid: int) -> None:
        """Remove the victim and send the failure fan-out *without*
        draining the network (async transports overlap heals — and
        resume delegated events mid-flight under the region-lease
        policy; the caller must have opened an accounting window)."""
        self.check_delete(nid)
        self.rounds += 1
        victim = self.network.remove(nid)
        claims = sorted(victim.neighbor_claims())
        self.network.trace_instant("fg:delete", victim=nid, fanout=len(claims))
        if claims:
            coordinator = claims[0]
            for neighbor in claims:
                self.network.send(
                    FGDeleted(
                        sender=nid,
                        recipient=neighbor,
                        victim=nid,
                        coordinator=coordinator,
                        n_reports=len(claims),
                    )
                )

    def delete(self, nid: int) -> RoundStats:
        """Adversary deletes ``nid``; image neighbors detect and heal."""
        self.check_delete(nid)
        self.network.begin_round(self.rounds + 1)
        self.inject_delete(nid)
        stats = self.network.run_round(self.rounds)
        self._check_quiescent()
        return stats

    def insert(self, nid: int, attach_to: int) -> RoundStats:
        """A new node joins under live ``attach_to`` (a wave of one)."""
        return self.insert_batch([(nid, attach_to)])

    def insert_batch(self, joiners: Sequence[Tuple[int, int]]) -> RoundStats:
        """A wave of joiners lands in one round (shared wave semantics).

        Each joiner runs the full INSERT handshake; the weight cascades
        of a wave interleave across sub-rounds but the per-node tallies
        are exactly the sum of the single-insert flows, matching the
        sequential engine's merged batch report.
        """
        wave = self._check_wave(joiners)
        self.network.begin_round(self.rounds + 1)
        self._inject_wave(wave)
        stats = self.network.run_round(self.rounds)
        self._check_quiescent()
        return stats

    def inject_insert_batch(self, joiners: Sequence[Tuple[int, int]]) -> None:
        """Register a wave's joiners and send their requests *without*
        draining (the async-transport half of :meth:`insert_batch`).
        The caller must have opened an accounting window."""
        self._inject_wave(self._check_wave(joiners))

    def _check_wave(self, joiners) -> List[Tuple[int, int]]:
        """Validate a wave (shared rules + the cascade-depth guard)."""
        wave = normalize_wave(joiners, known_ids=self._ever, alive=self.network)
        for _nid, attach_to in wave:
            self._check_cascade_depth(attach_to)
        return wave

    def _inject_wave(self, wave: Sequence[Tuple[int, int]]) -> None:
        """The already-validated wave's registration + request fan-out.

        Validation stays in the callers, *before* any accounting window
        opens — a rejected wave must leave no partial state, and on the
        async transport an exception after ``begin_round`` would leave
        the injection context dangling."""
        self.rounds += 1
        self.network.trace_instant("fg:insert-wave", joiners=len(wave))
        for nid, attach_to in wave:
            node = FGNode(nid)
            node.direct = {attach_to}
            node.ins_parent = attach_to
            self.network.register(node)
            self._ever.add(nid)
            self.original_degree[nid] = 1
            self.original_degree[attach_to] += 1
        for nid, attach_to in wave:
            self.network.send(FGInsertRequest(sender=nid, recipient=attach_to))

    def _check_cascade_depth(self, attach_to: int) -> None:
        """Reject an insert whose weight cascade cannot quiesce.

        The cascade climbs the insertion forest one hop per sub-round, so
        a chain deeper than the network's livelock guard would abort the
        round with an opaque quiescence error — and diverge from the
        sequential engine, which walks chains of any length.  The chain
        depth is read from the nodes' own (exact) parent pointers; the
        protocol's hard limit is validated loudly here instead.
        """
        depth = 0
        node = self.network.nodes[attach_to]
        while node.ins_parent is not None:
            depth += 1
            node = self.network.nodes[node.ins_parent]
        if depth + 3 > self.network.max_sub_rounds:
            raise ProtocolError(
                f"insertion-forest chain of depth {depth} above {attach_to} "
                f"exceeds the {self.network.max_sub_rounds}-sub-round guard "
                "(one weight-update hop per sub-round)"
            )

    def _check_quiescent(self) -> None:
        for nid, node in self.network.nodes.items():
            if node.pending:
                raise ProtocolError(
                    f"node {nid} still awaiting {sorted(node.pending)}"
                )

    def integrity_violations(self) -> List[Tuple[str, int, str]]:
        """Protocol-specific corruption scan for the repair pass.

        The tolerant mirror of :meth:`_check_quiescent` / ``image_edges``:
        enumerates every illegality instead of raising at the first —
        coordinators frozen mid-gather (their reports died with a
        crashed sender) and dangling pointers (direct edges,
        insertion-forest parents, RT helper links or portion-parent
        sims naming a node that no longer exists).  Returns
        ``(kind, node, detail)`` tuples in the
        :data:`repro.faults.VIOLATION_KINDS` taxonomy.
        """
        out: List[Tuple[str, int, str]] = []
        alive = set(self.network.nodes)
        for nid, node in self.network.nodes.items():
            if node.pending:
                out.append(
                    (
                        "half-applied-heal",
                        nid,
                        f"awaiting {sorted(node.pending)}",
                    )
                )
            refs: List[Tuple[str, int]] = [
                ("direct", d) for d in sorted(node.direct)
            ]
            if node.ins_parent is not None:
                refs.append(("ins_parent", node.ins_parent))
            if node.port_parent_sim is not None:
                refs.append(("port_parent_sim", node.port_parent_sim))
            if node.helper is not None:
                parent, left, right = node.helper
                if parent is not None:
                    refs.append(("helper.parent", parent[0]))
                refs.append(("helper.left", left[0]))
                refs.append(("helper.right", right[0]))
            for where, ref in refs:
                if ref != nid and ref not in alive:
                    out.append(
                        (
                            "dangling-pointer",
                            nid,
                            f"{where} names dead node {ref}",
                        )
                    )
        return out

    # ------------------------------------------------------------------
    def edges(self) -> Set[Tuple[int, int]]:
        """Current overlay from both endpoints' local state (validated)."""
        return self.network.image_edges()

    def adjacency(self) -> Graph:
        adj: Graph = {n: set() for n in self.network.nodes}
        for u, v in self.edges():
            adj[u].add(v)
            adj[v].add(u)
        return adj

    def degree(self, nid: int) -> int:
        return len(self.adjacency()[nid])

    def max_degree_increase(self) -> int:
        adj = self.adjacency()
        if not adj:
            return 0
        return max(len(s) - self.original_degree[n] for n, s in adj.items())

    def last_stats(self) -> RoundStats:
        return self.network.stats_history[-1]

    def peak_messages_per_node(self) -> int:
        return max(
            (
                max(s.max_sent_per_node, s.max_received_per_node)
                for s in self.network.stats_history[1:]  # skip setup
            ),
            default=0,
        )
