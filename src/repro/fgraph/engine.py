"""The Forgiving Graph healing engine (sequential reference).

Implements the PODC 2009 healing algorithm over general connected graphs
under arbitrary insert/delete churn.  The healed network is the *image*
of an endpoint graph containing real nodes plus the virtual helpers of
deployed :class:`~repro.fgraph.rtree.ReconstructionTree`\\ s; every helper
is simulated by a member of its own haft, and the image maps each helper
onto its simulator.

Structure invariants (each checked by :meth:`ForgivingGraph.check`):

* **One haft per dead region, one port per node.**  Each maximal
  connected set of deleted nodes is healed by a single haft whose leaves
  are the region's surviving neighbors.  When a deletion would give a
  node a second port — or joins two regions — the adjacent hafts are
  *merged* into the next build, so every real node is a leaf of at most
  one haft at any time.
* **One helper per node.**  Within a haft, helpers are simulated by
  their in-order predecessor leaves (injective); with at most one haft
  per node, each real node simulates at most one helper *globally*.
* **Degree increase <= 3, structurally.**  A port edge replaces at least
  one lost ideal edge (net <= 0) and a simulated helper carries at most
  three endpoint edges, so every node's image degree exceeds its ideal
  degree by at most 3 — the Forgiving Tree's bound, now under churn on
  general graphs.
* **Depth <= ceil(log2(W/w)) per port**, by the RT construction, which
  is what bounds the stretch at O(log n): a healed path crosses each
  dead region in at most ``2 log2 n + 2`` hops.

Weights are *insertion subtree sizes*: ``jw(x) = 1 +`` the number of
nodes that joined (transitively) under ``x`` in the insertion forest.
Every insert bumps the weights up the live chain of insertion parents —
the counted ``FGWeightUpdate`` cascade in the distributed runtime — so a
port that fronts a large joined population is rebuilt near the root.

Message accounting is synthesized per round with the exact rules the
distributed runtime (:mod:`repro.fgraph.distributed`) counts for real:
failure notifications attributed to the victim, one report per notified
neighbor to the round's coordinator, one shipped portion per surviving
member.  Tests cross-check the tallies node-for-node.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..core.errors import (
    DuplicateNodeError,
    InvariantViolationError,
    NodeNotFoundError,
    SimulationOverError,
)
from ..core.events import (
    EdgeAdded,
    EdgeRemoved,
    HealReport,
    HelperCreated,
    HelperDestroyed,
    NodeInserted,
    WillPortionSent,
    edge_key,
    normalize_wave,
)
from ..graphs.adjacency import Graph, copy as copy_graph, from_adjacency
from .rtree import ReconstructionTree


class ForgivingGraph:
    """Self-healing general-graph engine (see module docstring).

    Parameters
    ----------
    graph:
        The initial network as an adjacency mapping.  Unlike the
        Forgiving Tree engine no spanning tree is extracted — the FG
        heals the graph it is given.
    strict:
        Run :meth:`check` after every event (slow; tests).
    """

    def __init__(self, graph: Mapping[int, Iterable[int]], strict: bool = False):
        self.strict = strict
        self._ideal: Graph = from_adjacency(graph)
        if not self._ideal:
            raise NodeNotFoundError(-1, "empty initial graph")
        self._alive: Set[int] = set(self._ideal)
        self._jw: Dict[int, int] = {n: 1 for n in self._ideal}
        self._ins_parent: Dict[int, Optional[int]] = {n: None for n in self._ideal}
        self._ins_children: Dict[int, Set[int]] = {}
        self._hafts: Dict[int, ReconstructionTree] = {}
        self._haft_of: Dict[int, int] = {}
        self._next_haft = 0
        self._img: Dict[int, Dict[int, int]] = {n: {} for n in self._ideal}
        for u, vs in self._ideal.items():
            for v in vs:
                if u < v:
                    self._bump(u, v, +1)
        self.rounds = 0

    # ------------------------------------------------------------------
    # image multiset (edge -> number of contributing structures)
    # ------------------------------------------------------------------
    def _bump(self, u: int, v: int, delta: int) -> bool:
        """Adjust one edge's contribution count; True on a 0-transition."""
        if u == v:
            return False
        row = self._img[u]
        count = row.get(v, 0) + delta
        if count < 0:  # pragma: no cover - defensive
            raise InvariantViolationError("fg-image", f"negative count {(u, v)}")
        if count == 0:
            row.pop(v, None)
            self._img[v].pop(u, None)
        else:
            row[v] = count
            self._img[v][u] = count
        return (count == 0) if delta < 0 else (count == delta)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def alive(self) -> Set[int]:
        return set(self._alive)

    def __len__(self) -> int:
        return len(self._alive)

    def __contains__(self, nid: int) -> bool:
        return nid in self._alive

    def graph(self) -> Graph:
        """The healed network (image graph) over surviving real nodes."""
        return {n: set(row) for n, row in self._img.items()}

    def adjacency(self) -> Graph:
        return self.graph()

    def ideal_graph(self, include_dead: bool = False) -> Graph:
        """The churn baseline: every insertion applied, nothing healed.

        With ``include_dead`` the deleted nodes remain as routable ghosts
        — the graph ``G(t)`` the paper measures stretch against.
        """
        if include_dead:
            return copy_graph(self._ideal)
        return {
            n: {m for m in vs if m in self._alive}
            for n, vs in self._ideal.items()
            if n in self._alive
        }

    def ideal_degree(self, nid: int) -> int:
        return len(self._ideal[nid])

    def degree_increase(self, nid: int) -> int:
        if nid not in self._alive:
            raise NodeNotFoundError(nid, "degree_increase")
        return len(self._img[nid]) - len(self._ideal[nid])

    def max_degree_increase(self) -> int:
        if not self._alive:
            return 0
        return max(self.degree_increase(n) for n in self._alive)

    def weight_of(self, nid: int) -> int:
        """Current insertion-subtree weight of ``nid``."""
        return self._jw[nid]

    def haft_of(self, nid: int) -> Optional[ReconstructionTree]:
        hid = self._haft_of.get(nid)
        return None if hid is None else self._hafts[hid]

    @property
    def hafts(self) -> List[ReconstructionTree]:
        return [self._hafts[h] for h in sorted(self._hafts)]

    # ------------------------------------------------------------------
    # healing: deletion
    # ------------------------------------------------------------------
    def delete(self, nid: int) -> HealReport:
        """The adversary deletes ``nid``; merge + rebuild the region RT."""
        if not self._alive:
            raise SimulationOverError("all nodes already deleted")
        if nid not in self._alive:
            raise NodeNotFoundError(nid, "delete")
        self.rounds += 1
        events: List[object] = []
        tally: Dict[int, int] = {}

        img_nbrs = sorted(self._img[nid])
        direct_alive = sorted(
            u for u in self._ideal[nid] if u in self._alive
        )
        coordinator = min(img_nbrs) if img_nbrs else None
        haft_ids = sorted(
            {self._haft_of[m] for m in (nid, *direct_alive) if m in self._haft_of}
        )
        old_hafts = [self._hafts[h] for h in haft_ids]

        # -- counted flow: Deleted fan-out, reports in, portions out ----
        if img_nbrs:
            tally[nid] = len(img_nbrs)
            for u in img_nbrs:
                if u != coordinator:
                    tally[u] = tally.get(u, 0) + 1

        # -- merge manifests / split out the victim's port --------------
        leaves = ReconstructionTree.merged_leaves(
            old_hafts,
            drop=(nid,),
            fresh={u: self._jw[u] for u in direct_alive},
            refresh={u: self._jw[u] for u in img_nbrs},
        )

        # -- retire the old structures ----------------------------------
        removed: List[Tuple[int, int]] = []
        added: List[Tuple[int, int]] = []
        for u in direct_alive:
            if self._bump(nid, u, -1):
                removed.append(edge_key(nid, u))
        for haft in old_hafts:
            for a, b in sorted(haft.image_edges()):
                if self._bump(a, b, -1):
                    removed.append(edge_key(a, b))
            for sim in sorted(haft.helper_links):
                events.append(HelperDestroyed(sim=sim, helper_id=sim))
        if self._img[nid]:  # pragma: no cover - defensive
            raise InvariantViolationError(
                "fg-image", f"victim {nid} still claims {sorted(self._img[nid])}"
            )
        del self._img[nid]
        for hid in haft_ids:
            for m in self._hafts[hid].members:
                self._haft_of.pop(m, None)
            del self._hafts[hid]

        # -- deploy the freshly balanced RT -----------------------------
        new_haft: Optional[ReconstructionTree] = None
        if len(leaves) >= 2:
            new_haft = ReconstructionTree.build(leaves)
            hid = self._next_haft
            self._next_haft += 1
            self._hafts[hid] = new_haft
            for m in new_haft.members:
                self._haft_of[m] = hid
            for a, b in sorted(new_haft.image_edges()):
                if self._bump(a, b, +1):
                    added.append(edge_key(a, b))
            for sim in sorted(new_haft.helper_links):
                events.append(HelperCreated(sim=sim, helper_id=sim, ready_heir=False))
            if coordinator not in new_haft.members:
                raise InvariantViolationError(
                    "fg-coordinator",
                    f"coordinator {coordinator} outside the rebuilt haft",
                )
            tally[coordinator] = tally.get(coordinator, 0) + len(new_haft.members) - 1
            for m in sorted(new_haft.members):
                if m != coordinator:
                    events.append(WillPortionSent(owner=coordinator, recipient=m))

        # -- bookkeeping -------------------------------------------------
        self._alive.discard(nid)
        parent = self._ins_parent.pop(nid, None)
        if parent is not None:
            self._ins_children.get(parent, set()).discard(nid)
        for child in self._ins_children.pop(nid, set()):
            if child in self._alive:
                self._ins_parent[child] = None

        events.extend(EdgeRemoved(u, v) for u, v in sorted(removed))
        events.extend(EdgeAdded(u, v) for u, v in sorted(added))
        report = HealReport(
            deleted=nid,
            was_internal=bool(old_hafts) or new_haft is not None,
            edges_added=frozenset(added),
            edges_removed=frozenset(removed),
            events=tuple(events),
            messages_per_node=tally,
        )
        if self.strict:
            self.check()
        return report

    # ------------------------------------------------------------------
    # healing: insertion
    # ------------------------------------------------------------------
    def insert(self, nid: int, attach_to: int) -> HealReport:
        """A fresh node joins under a live one (ideal-graph convention)."""
        nid, attach_to = int(nid), int(attach_to)
        if nid in self._ideal:  # ids are never reused
            raise DuplicateNodeError(nid)
        if attach_to not in self._alive:
            raise NodeNotFoundError(attach_to, "insert attach point")
        self.rounds += 1
        self._alive.add(nid)
        self._ideal[nid] = {attach_to}
        self._ideal[attach_to].add(nid)
        self._img[nid] = {}
        self._bump(nid, attach_to, +1)
        self._jw[nid] = 1
        self._ins_parent[nid] = attach_to
        self._ins_children.setdefault(attach_to, set()).add(nid)

        # INSERT handshake + the weight-update cascade up the live chain
        # of insertion parents (each hop is one counted message).
        tally: Dict[int, int] = {nid: 1, attach_to: 1}  # request + ack
        self._jw[attach_to] += 1
        cur, up = attach_to, self._ins_parent[attach_to]
        while up is not None:
            tally[cur] = tally.get(cur, 0) + 1
            self._jw[up] += 1
            cur, up = up, self._ins_parent[up]

        report = HealReport(
            deleted=-1,
            edges_added=frozenset({edge_key(nid, attach_to)}),
            events=(
                NodeInserted(nid, attach_to),
                EdgeAdded(*edge_key(nid, attach_to)),
            ),
            messages_per_node=tally,
            inserted=nid,
            attached_to=attach_to,
        )
        if self.strict:
            self.check()
        return report

    def insert_batch(self, joiners: Iterable[Tuple[int, int]]) -> HealReport:
        """A wave of joiners lands in one round (shared wave semantics)."""
        wave = normalize_wave(joiners, known_ids=self._ideal, alive=self._alive)
        reports = [self.insert(n, a) for n, a in wave]
        self.rounds -= len(wave) - 1
        tally: Dict[int, int] = {}
        for r in reports:
            for n, c in r.messages_per_node.items():
                tally[n] = tally.get(n, 0) + c
        return HealReport(
            deleted=-1,
            edges_added=frozenset().union(*(r.edges_added for r in reports)),
            events=tuple(e for r in reports for e in r.events),
            messages_per_node=tally,
            inserted=wave[0][0] if len(wave) == 1 else None,
            attached_to=wave[0][1] if len(wave) == 1 else None,
            inserted_batch=tuple(wave),
        )

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Recompute every derived structure and verify the invariants."""
        # Hafts: pairwise disjoint, internally valid, membership-indexed.
        seen: Set[int] = set()
        for hid, haft in self._hafts.items():
            haft.check()
            if haft.members & seen:
                raise InvariantViolationError(
                    "fg-one-port", f"haft {hid} shares members"
                )
            seen |= haft.members
            for m in haft.members:
                if self._haft_of.get(m) != hid:
                    raise InvariantViolationError("fg-haft-index", f"member {m}")
                if m not in self._alive:
                    raise InvariantViolationError("fg-haft-dead", f"member {m}")
                if all(x in self._alive for x in self._ideal[m]):
                    raise InvariantViolationError(
                        "fg-port-unearned", f"member {m} lost no ideal edge"
                    )
        if set(self._haft_of) != seen:
            raise InvariantViolationError("fg-haft-index", "stale port entries")
        # The image multiset matches a from-scratch recomputation.
        fresh: Dict[Tuple[int, int], int] = {}
        for u, vs in self._ideal.items():
            if u not in self._alive:
                continue
            for v in vs:
                if u < v and v in self._alive:
                    fresh[(u, v)] = fresh.get((u, v), 0) + 1
        for haft in self._hafts.values():
            for e in haft.image_edges():
                fresh[e] = fresh.get(e, 0) + 1
        stored = {
            (u, v): c
            for u, row in self._img.items()
            for v, c in row.items()
            if u < v
        }
        if stored != fresh:
            raise InvariantViolationError(
                "fg-image",
                f"multiset drift: {sorted(set(stored) ^ set(fresh))[:6]}",
            )
        # The paper's Theorem: additive degree increase bounded by 3.
        for n in self._alive:
            if self.degree_increase(n) > 3:
                raise InvariantViolationError(
                    "fg-degree", f"node {n} increase {self.degree_increase(n)}"
                )
        # Weights are consistent with the insertion forest.
        for n, p in self._ins_parent.items():
            if p is not None and p not in self._alive:
                raise InvariantViolationError("fg-ins-forest", f"stale parent of {n}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ForgivingGraph(n={len(self._alive)}, hafts={len(self._hafts)}, "
            f"rounds={self.rounds})"
        )
