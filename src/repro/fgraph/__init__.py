"""The Forgiving Graph subsystem (PODC 2009).

The source paper's 2009 follow-up — *"The Forgiving Graph: a distributed
data structure for low stretch under adversarial attack"* (Hayes, Saia,
Trehan) — replaces the Forgiving Tree's fixed reconstruction trees with
**weight-balanced binary trees over subtree weights**, guaranteeing both
an additive degree increase of at most 3 *and* ``O(log n)`` stretch on
general graphs under arbitrary insert/delete churn.

* :class:`ReconstructionTree` — half-full binary trees keyed by subtree
  weight: the Kraft-canonical build, the merge/split manifest algebra,
  and the in-order-predecessor simulator assignment.
* :class:`ForgivingGraph` — the sequential healing engine (merged-haft
  rebuilds, insertion-forest weights, synthesized message tallies).
* :class:`ForgivingGraphHealer` — the engine behind the shared
  :class:`~repro.baselines.base.Healer` interface, registered in the
  baselines catalog.
* :class:`DistributedForgivingGraph` — the counted-message runtime; its
  per-node tallies match the sequential engine's exactly (tests
  cross-check node-for-node).

See ``docs/FORGIVING_GRAPH.md`` for the algorithm walkthrough and the
FT-vs-FG comparison.
"""

from .distributed import DistributedForgivingGraph
from .engine import ForgivingGraph
from .healer import ForgivingGraphHealer
from .rtree import ReconstructionTree, fold_manifests, leaf_depth, target_depths

__all__ = [
    "DistributedForgivingGraph",
    "ForgivingGraph",
    "ForgivingGraphHealer",
    "ReconstructionTree",
    "fold_manifests",
    "leaf_depth",
    "target_depths",
]
