"""Half-full reconstruction trees keyed by subtree weight (FG Section 3).

The Forgiving Graph (Hayes–Saia–Trehan, PODC 2009) replaces the Forgiving
Tree's *fixed* per-node reconstruction trees with **weight-balanced binary
trees over subtree weights**: the neighbors of a failed region become the
leaves of a full binary tree in which a leaf of weight ``w`` sits at depth
at most ``ceil(log2(W / w))`` (``W`` = total weight).  Heavy leaves —
ports that represent many real nodes — sit near the root, so a path that
crosses the region pays ``O(log(W/w))`` hops per endpoint and the overall
stretch telescopes to ``O(log n)``.  That depth guarantee is exactly the
property the paper's *half-full trees* exist to provide.

This module realizes the guarantee constructively.  :func:`target_depths`
computes the Kraft-feasible depth ``d(w) = ceil(log2(W / w))`` per leaf
(``sum 2^-d <= 1``), and :meth:`ReconstructionTree.build` assembles the
canonical code tree for those depths, then path-compresses single-child
chains so every internal node has exactly two children (depths only
shrink, keeping the bound).  The result is the *freshly balanced* RT the
engine deploys on every deletion; :meth:`ReconstructionTree.merged_leaves`
is the merge/split primitive that folds the leaf manifests of every haft
adjacent to a failure — minus the victim's port, plus the victim's
surviving direct neighbors — into the leaf list of the next build.

Simulation assignment (who *runs* each virtual node) follows the
Forgiving Tree's discipline: each internal helper is simulated by its
**in-order predecessor leaf** (the rightmost leaf of its left subtree).
That map is injective and total over all internals, so every member
simulates at most one helper of the haft — and since the engine keeps
each real node in at most one haft (hafts adjacent through a shared
member are merged), at most one helper *globally*.  A helper has at most
three endpoint edges (parent + two children), which pins the additive
degree-increase bound of 3 structurally; see ``docs/FORGIVING_GRAPH.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.errors import InvariantViolationError
from ..core.events import edge_key

#: Endpoint kinds, shared with the distributed layer's ``Ref`` convention.
REAL = "real"
HELPER = "helper"

#: ``(image id, kind)`` — for a helper endpoint the image id is the id of
#: the real node simulating it.
Ref = Tuple[int, str]


def leaf_depth(weight: int, total: int) -> int:
    """``ceil(log2(total / weight))`` in exact integer arithmetic."""
    if weight < 1:
        raise ValueError("leaf weights must be >= 1")
    d = 0
    while (weight << d) < total:
        d += 1
    return d


def target_depths(weighted: Sequence[Tuple[int, int]]) -> Dict[int, int]:
    """Kraft-feasible code lengths for the weighted leaves.

    ``sum_w 2^-d(w) <= sum_w w/W = 1``, so a binary code tree with these
    leaf depths always exists (and :meth:`ReconstructionTree.build`
    constructs the canonical one).
    """
    total = sum(w for _, w in weighted)
    return {nid: leaf_depth(w, total) for nid, w in weighted}


def fold_manifests(
    manifests: Iterable[Mapping[int, int]],
    drop: Iterable[int] = (),
    fresh: Mapping[int, int] = {},
    refresh: Mapping[int, int] = {},
) -> List[Tuple[int, int]]:
    """Fold leaf manifests into the ``(member, weight)`` list of a build.

    ``drop`` removes the victim's port (the *split* half of a healing
    round), ``fresh`` adds the victim's surviving direct neighbors at
    their current weights, and ``refresh`` overrides the stored weight of
    any member whose current weight is known first-hand this round (the
    nodes adjacent to the failure) — the opportunistic half of "weight
    updates on insertion": weights recorded at the last build are
    replaced whenever fresher ones reach the rebuild.  Everything else
    enters at its manifest weight.  The sequential engine and the
    distributed coordinator run this same fold over the same data, which
    is what makes their rebuilds (and message tallies) agree exactly.
    """
    merged: Dict[int, int] = {}
    for manifest in manifests:
        merged.update(manifest)
    merged.update(fresh)
    for nid, w in refresh.items():
        if nid in merged:
            merged[nid] = w
    for nid in drop:
        merged.pop(nid, None)
    return sorted(merged.items())


@dataclass
class _TrieNode:
    """Build-time node: a leaf (``member`` set) or an internal (children)."""

    member: Optional[int] = None
    children: Dict[int, "_TrieNode"] = field(default_factory=dict)


class ReconstructionTree:
    """A deployed weight-balanced RT over the ports of one healed region.

    Instances are immutable once built; the engine replaces whole trees
    (merge + fresh build) rather than editing them in place — the
    "freshly balanced RT" reading of the 2009 healing step.

    Attributes
    ----------
    weight:
        ``member -> weight`` at build time (the manifest payload).
    depth:
        ``member -> leaf depth``; bounded by ``ceil(log2(W / w)) ``.
    port_parent:
        ``member -> sim`` of the helper its port edge attaches to.
    helper_links:
        ``sim -> (parent ref | None, left child ref, right child ref)``
        for every helper, keyed by the real node simulating it.
    root_sim:
        The simulator of the RT root helper.
    """

    def __init__(
        self,
        weight: Dict[int, int],
        depth: Dict[int, int],
        port_parent: Dict[int, int],
        helper_links: Dict[int, Tuple[Optional[Ref], Ref, Ref]],
        root_sim: int,
    ) -> None:
        self.weight = weight
        self.depth = depth
        self.port_parent = port_parent
        self.helper_links = helper_links
        self.root_sim = root_sim
        self._image: Set[Tuple[int, int]] = self._derive_image()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, weighted: Iterable[Tuple[int, int]]) -> "ReconstructionTree":
        """Build the canonical half-full RT over ``(member, weight)`` leaves.

        Deterministic in its input *set* (leaves are ordered by target
        depth, then id), which is what lets the sequential engine and the
        distributed coordinator arrive at the identical tree from the
        same manifests.  Requires at least two leaves — the engine
        resolves 0/1-leaf regions without deploying any helpers.
        """
        leaves = sorted({int(n): int(w) for n, w in weighted}.items())
        if len(leaves) < 2:
            raise ValueError("an RT needs at least two leaves")
        total = sum(w for _, w in leaves)
        depths = {n: leaf_depth(w, total) for n, w in leaves}
        order = sorted(leaves, key=lambda item: (depths[item[0]], item[0]))

        # Canonical prefix codes for the target depths (Kraft-feasible).
        root = _TrieNode()
        code = 0
        prev_d = depths[order[0][0]]
        for i, (nid, _w) in enumerate(order):
            d = depths[nid]
            if i > 0:
                code = (code + 1) << (d - prev_d)
            if code >> d:  # pragma: no cover - Kraft guarantees feasibility
                raise InvariantViolationError("rt-kraft", f"code overflow at {nid}")
            node = root
            for bit_pos in range(d - 1, -1, -1):
                bit = (code >> bit_pos) & 1
                node = node.children.setdefault(bit, _TrieNode())
            node.member = nid
            prev_d = d

        compressed = cls._compress(root)
        return cls._from_trie(compressed, dict(leaves))

    @staticmethod
    def _compress(node: _TrieNode) -> _TrieNode:
        """Splice out single-child internals (Kraft slack); depths shrink."""
        if node.member is not None:
            return node
        kids = [
            ReconstructionTree._compress(node.children[bit])
            for bit in sorted(node.children)
        ]
        if len(kids) == 1:
            return kids[0]
        node.children = {0: kids[0], 1: kids[1]}
        return node

    @classmethod
    def _from_trie(
        cls, root: _TrieNode, weight: Dict[int, int]
    ) -> "ReconstructionTree":
        depth: Dict[int, int] = {}
        port_parent: Dict[int, int] = {}
        helper_links: Dict[int, Tuple[Optional[Ref], Ref, Ref]] = {}

        def rightmost(node: _TrieNode) -> int:
            while node.member is None:
                node = node.children[1]
            return node.member

        def assign(node: _TrieNode, d: int) -> Ref:
            """Post-order: record depths, assign sims, return this ref."""
            if node.member is not None:
                depth[node.member] = d
                return (node.member, REAL)
            sim = rightmost(node.children[0])  # in-order predecessor leaf
            left = assign(node.children[0], d + 1)
            right = assign(node.children[1], d + 1)
            for ref in (left, right):
                if ref[1] == REAL:
                    port_parent[ref[0]] = sim
            helper_links[sim] = (None, left, right)
            return (sim, HELPER)

        root_ref = assign(root, 0)
        if root_ref[1] != HELPER:  # pragma: no cover - len >= 2 guarantees
            raise InvariantViolationError("rt-root", "root is not a helper")
        # Thread parent refs now that every helper knows its children.
        for sim, (_par, left, right) in list(helper_links.items()):
            for ref in (left, right):
                if ref[1] == HELPER:
                    child_sim = ref[0]
                    par, lc, rc = helper_links[child_sim]
                    helper_links[child_sim] = ((sim, HELPER), lc, rc)
        return cls(weight, depth, port_parent, helper_links, root_ref[0])

    # ------------------------------------------------------------------
    # merge/split: the leaf-manifest algebra of a healing round
    # ------------------------------------------------------------------
    @staticmethod
    def merged_leaves(
        hafts: Iterable["ReconstructionTree"],
        drop: Iterable[int] = (),
        fresh: Mapping[int, int] = {},
        refresh: Mapping[int, int] = {},
    ) -> List[Tuple[int, int]]:
        """Fold whole hafts into the leaf list of the next build."""
        return fold_manifests((h.weight for h in hafts), drop, fresh, refresh)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def members(self) -> Set[int]:
        return set(self.weight)

    @property
    def total_weight(self) -> int:
        return sum(self.weight.values())

    @property
    def n_helpers(self) -> int:
        return len(self.helper_links)

    def manifest(self) -> Tuple[Tuple[int, int], ...]:
        """The ``(member, weight)`` list every member carries (the FG
        analog of a Forgiving Tree will: enough shipped-ahead state for
        any survivor to rebuild the region)."""
        return tuple(sorted(self.weight.items()))

    def sim_of(self, member: int) -> Optional[int]:
        """The helper ``member`` simulates, as its own id (or None)."""
        return member if member in self.helper_links else None

    def image_edges(self) -> Set[Tuple[int, int]]:
        """Canonical image edges this haft contributes (self-loops from a
        node simulating its own port's parent collapse away)."""
        return set(self._image)

    def _derive_image(self) -> Set[Tuple[int, int]]:
        out: Set[Tuple[int, int]] = set()
        for sim, (par, left, right) in self.helper_links.items():
            for ref in (left, right):
                if ref[0] != sim:
                    out.add(edge_key(sim, ref[0]))
            if par is not None and par[0] != sim:
                out.add(edge_key(sim, par[0]))
        return out

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Verify every structural invariant; raise on violation."""
        members = self.members
        if len(members) < 2:
            raise InvariantViolationError("rt-size", "fewer than two leaves")
        total = self.total_weight
        for nid, d in self.depth.items():
            if d > leaf_depth(self.weight[nid], total):
                raise InvariantViolationError(
                    "rt-depth",
                    f"leaf {nid}: depth {d} > ceil(log2({total}/{self.weight[nid]}))",
                )
        if len(self.helper_links) != len(members) - 1:
            raise InvariantViolationError(
                "rt-full", f"{len(self.helper_links)} helpers for {len(members)} leaves"
            )
        if set(self.helper_links) - members:
            raise InvariantViolationError("rt-sims", "simulator outside the haft")
        if set(self.port_parent) != members:
            raise InvariantViolationError("rt-ports", "port/member mismatch")
        # Every helper's children agree with the leaves' port parents and
        # the parent refs thread back consistently.
        child_count: Dict[int, int] = {}
        root_seen = 0
        for sim, (par, left, right) in self.helper_links.items():
            for ref in (left, right):
                nid, kind = ref
                if kind == REAL:
                    if self.port_parent.get(nid) != sim:
                        raise InvariantViolationError(
                            "rt-port-parent", f"leaf {nid} vs helper {sim}"
                        )
                else:
                    cpar = self.helper_links[nid][0]
                    if cpar != (sim, HELPER):
                        raise InvariantViolationError(
                            "rt-parent-ref", f"helper {nid} vs {sim}"
                        )
                child_count[sim] = child_count.get(sim, 0) + 1
            if par is None:
                root_seen += 1
                if sim != self.root_sim:
                    raise InvariantViolationError("rt-root", f"stray root {sim}")
        if root_seen != 1:
            raise InvariantViolationError("rt-root", f"{root_seen} roots")
        if any(c != 2 for c in child_count.values()):
            raise InvariantViolationError("rt-arity", "helper without two children")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ReconstructionTree(leaves={len(self.weight)}, "
            f"W={self.total_weight}, helpers={self.n_helpers})"
        )
