"""The Forgiving Graph as a :class:`~repro.baselines.base.Healer`.

Registered beside the Forgiving Tree and the naive baselines, so every
adversary, :func:`~repro.harness.run_churn_campaign` and
:func:`~repro.harness.churn_duel` drive it unmodified.  Where the FT
healer extracts a BFS spanning tree and carries the surviving non-tree
edges along, the FG heals the general graph natively — non-tree edges
are first-class ideal edges with their own ports when an endpoint dies.
"""

from __future__ import annotations

from typing import Set

from ..core.events import HealReport
from ..graphs.adjacency import Graph, require_connected
from ..baselines.base import Healer
from .engine import ForgivingGraph


class ForgivingGraphHealer(Healer):
    """Forgiving Graph self-healing over a general connected graph."""

    name = "forgiving-graph"

    def __init__(self, graph: Graph, strict: bool = False):
        super().__init__(graph)
        require_connected(graph)
        self.engine = ForgivingGraph(graph, strict=strict)

    def delete(self, nid: int) -> HealReport:
        self._pre_delete(nid)
        return self.engine.delete(nid)

    def insert(self, nid: int, attach_to: int) -> HealReport:
        nid = int(nid)
        self._pre_insert(nid, attach_to)
        report = self.engine.insert(nid, attach_to)
        self._original_degree[nid] = 1
        self._original_degree[attach_to] += 1
        return report

    def insert_batch(self, joiners) -> HealReport:
        """Batch wave via the engine (one round, merged report)."""
        wave = [(int(n), int(a)) for n, a in joiners]
        report = self.engine.insert_batch(wave)  # validates the wave itself
        for nid, attach_to in wave:
            self._original_degree[nid] = 1
            self._original_degree[attach_to] += 1
        self.rounds += 1
        return report

    def graph(self) -> Graph:
        return self.engine.graph()

    @property
    def alive(self) -> Set[int]:
        return self.engine.alive

    def max_degree_increase(self) -> int:
        # The engine maintains the image incrementally; answering from it
        # avoids materializing the whole graph every campaign round.  The
        # engine's ideal degrees equal the Healer's baseline bookkeeping
        # (both count initial edges plus demanded insertions).
        return self.engine.max_degree_increase()

    # FG-specific introspection --------------------------------------------
    def ideal_graph(self, include_dead: bool = False) -> Graph:
        """The churn baseline graph (see :meth:`ForgivingGraph.ideal_graph`)."""
        return self.engine.ideal_graph(include_dead=include_dead)
