"""Extensions beyond the paper's core construction."""

from .alpha_tree import AlphaForgivingTree, alpha_for_branching, branching_for_alpha, tradeoff_point

__all__ = [
    "AlphaForgivingTree",
    "alpha_for_branching",
    "branching_for_alpha",
    "tradeoff_point",
]
