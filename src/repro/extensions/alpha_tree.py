"""The generalized α-Forgiving-Tree (Section 4.2 remark).

"The Forgiving Tree can be modified so that it ensures that 1) the degree
of any node increases by no more than α for any α ≥ 3; and that the
diameter increases by no more than a multiplicative factor of
β ≤ 2 log_α ∆ + 2."

The generalization replaces the binary reconstruction trees by balanced
``b``-ary search trees (``b = α - 1`` children per helper, so a helper's
degree is at most ``b + 1 = α``), shrinking RT depth from ``log₂`` to
``log_b`` at the price of a larger degree increase — the tradeoff Theorem 2
proves unavoidable.

The paper gives no maintenance protocol for α > 3; DESIGN.md §2/§5
documents the donor rules this implementation uses.  The binary case is
validated exhaustively; the generalized case is validated by full deletion
campaigns up to n = 50 and partial campaigns beyond (see tests), with rare
deep-state simulator-exhaustion corners at larger scales remaining open.
"""

from __future__ import annotations

import math

from ..core.forgiving_tree import ForgivingTree


def branching_for_alpha(alpha: int) -> int:
    """Helper arity for a target degree increase α (paper: α ≥ 3)."""
    if alpha < 3:
        raise ValueError("the construction needs alpha >= 3")
    return alpha - 1


def alpha_for_branching(branching: int) -> int:
    """Degree-increase bound achieved by ``branching``-ary helpers."""
    if branching < 2:
        raise ValueError("branching must be >= 2")
    return branching + 1


class AlphaForgivingTree(ForgivingTree):
    """Forgiving Tree with degree increase ≤ α and stretch ~ 2·log_{α-1} ∆.

    A thin parameterization of the core engine: ``AlphaForgivingTree(tree,
    alpha=5)`` equals ``ForgivingTree(tree, branching=4)``.
    """

    def __init__(self, tree, alpha: int = 3, **kwargs):
        self.alpha = alpha
        super().__init__(tree, branching=branching_for_alpha(alpha), **kwargs)


def tradeoff_point(alpha: int, max_degree: int) -> dict:
    """The (α, β) point the Section 4.2 remark promises, plus the
    Theorem 2 floor, for benchmark tables."""
    b = branching_for_alpha(alpha)
    depth = math.log(max_degree, b) if max_degree > 1 else 0.0
    beta_promise = 2 * math.log(max_degree, alpha) + 2 if max_degree > 1 else 2.0
    beta_floor = (
        max(0.0, (math.log(max_degree, alpha) - 1) / 2) if max_degree > 1 else 0.0
    )
    return {
        "alpha": alpha,
        "branching": b,
        "rt_depth": depth,
        "beta_promise": beta_promise,
        "beta_floor_thm2": beta_floor,
    }
