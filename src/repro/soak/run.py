"""``python -m repro.soak.run`` — the soak CLI.

Fresh start::

    PYTHONPATH=src python -m repro.soak.run --out /tmp/soak \\
        --n0 100000 --events 500000 --window 10000 --seed 7 \\
        --outage 200000:0.3:0.6 --flash 350000:5000:32

Resume after a crash (or a SIGKILL — that is the point)::

    PYTHONPATH=src python -m repro.soak.run --out /tmp/soak --resume

``--resume`` reloads the campaign from ``<out>/config.json``, restores
the latest checkpoint, cross-validates the restored engine against the
object oracle over the next ``--crossval`` events, and continues until
the configured event total.  Artifacts land in ``--out``:
``telemetry.jsonl`` (+ rotations), ``checkpoints/`` (objects +
hash-chained manifest), ``summary.json``, and — on an SLO breach — a
flight-recorder dump naming the replayable event window.

Exit codes: 0 success; 2 usage error (argparse); 3 checkpoint/
cross-validation failure; 4 SLO breach under ``--fail-on-breach``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Tuple

from ..core.errors import ReproError
from .checkpoint import CheckpointError
from .service import SoakConfig, SoakService


def _parse_outage(text: str) -> Tuple[float, ...]:
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise argparse.ArgumentTypeError(
            f"outage must be AT:FRACTION[:REJOIN], got {text!r}"
        )
    return tuple(float(p) for p in parts)


def _parse_flash(text: str) -> Tuple[int, ...]:
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise argparse.ArgumentTypeError(
            f"flash crowd must be AT:JOINERS[:WAVE], got {text!r}"
        )
    return tuple(int(p) for p in parts)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.soak.run",
        description="checkpointed long-horizon churn soak "
        "(module docstring has the full story)",
    )
    parser.add_argument("--out", required=True, help="campaign directory")
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from <out>/config.json + latest checkpoint",
    )
    parser.add_argument("--n0", type=int, default=1000)
    parser.add_argument("--events", type=int, default=10_000,
                        help="campaign event total (across all segments)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--branching", type=int, default=2)
    parser.add_argument("--will-mode", default="splice",
                        choices=("splice", "rebuild"))
    parser.add_argument("--window", type=int, default=1000,
                        help="events per telemetry/SLO window")
    parser.add_argument("--checkpoint-every", type=int, default=1,
                        help="windows between checkpoints")
    parser.add_argument("--crossval", type=int, default=200,
                        help="events replayed vs the oracle on resume")
    parser.add_argument("--sample-every", type=int, default=100,
                        help="trace 1-in-k heals (0 = tracing off)")
    parser.add_argument("--outage", type=_parse_outage, action="append",
                        default=[], metavar="AT:FRACTION[:REJOIN]")
    parser.add_argument("--flash", type=_parse_flash, action="append",
                        default=[], metavar="AT:JOINERS[:WAVE]")
    parser.add_argument("--slo-max-stretch", type=float, default=64.0)
    parser.add_argument("--slo-p99-messages", type=float, default=200.0)
    parser.add_argument("--slo-min-events-per-sec", type=float, default=0.0)
    parser.add_argument("--fail-on-breach", action="store_true",
                        help="exit 4 if any SLO window breached")
    parser.add_argument("--quiet", action="store_true")
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    config_path = os.path.join(args.out, "config.json")
    if args.resume:
        if not os.path.exists(config_path):
            print(f"error: --resume but no {config_path}", file=sys.stderr)
            return 3
        config = SoakConfig.load(config_path)
    else:
        if os.path.exists(os.path.join(args.out, "checkpoints", "manifest.jsonl")):
            print(
                f"error: {args.out} already holds a campaign "
                f"(use --resume to continue it)",
                file=sys.stderr,
            )
            return 3
        config = SoakConfig(
            out_dir=args.out,
            n0=args.n0,
            events=args.events,
            seed=args.seed,
            branching=args.branching,
            will_mode=args.will_mode,
            window=args.window,
            checkpoint_every=args.checkpoint_every,
            crossval=args.crossval,
            sample_every=args.sample_every,
            outages=tuple(args.outage),
            flash_crowds=tuple(args.flash),
            slo_max_stretch=args.slo_max_stretch,
            slo_p99_messages=args.slo_p99_messages,
            slo_min_events_per_sec=args.slo_min_events_per_sec,
        )
    service = SoakService(config)
    try:
        summary = service.run()
    except (CheckpointError, ReproError) as exc:
        print(f"soak failed: {exc}", file=sys.stderr)
        return 3
    det, op = summary["deterministic"], summary["op"]
    if not args.quiet:
        cv = det["crossval"]
        print(
            f"soak: {det['events_total']}/{det['events_target']} events "
            f"({det['segment_events']} this segment), "
            f"{det['windows']} windows, {det['checkpoints']} checkpoints, "
            f"{det['final_alive']} alive"
        )
        print(
            f"      peak ddeg {det['peak_degree_increase']}, "
            f"peak stretch {det['peak_stretch']:.2f}, "
            f"alerts {det['alerts']}, "
            f"traced heals {det['traced_heals']}"
        )
        if cv:
            print(f"      resume cross-validation: {cv['events']} events ok")
        print(
            f"      {op['events_per_sec']:.0f} events/s, "
            f"RSS {op['rss_kb_start']} -> {op['rss_kb_end']} kB "
            f"(peak {op['rss_kb_peak']})"
        )
        if det["recorder_dump"]:
            print(f"      SLO breach dump: {det['recorder_dump']}")
        print(json.dumps({"summary": os.path.join(config.out_dir, 'summary.json')}))
    if args.fail_on_breach and det["slo_breached"]:
        return 4
    return 0


if __name__ == "__main__":
    sys.exit(main())
