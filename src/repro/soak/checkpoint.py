"""Content-addressable engine snapshots with a hash-chained manifest.

A soak that cannot be killed and resumed is a soak nobody runs twice.
This module is the durability layer: the flat engine's
:meth:`~repro.core.flat_tree.FlatForgivingTree.snapshot_state` tree
(plain dicts of ints, strings, and ``array('q')`` columns) encodes to
one deterministic byte blob, stored **content-addressed** (path =
SHA-256 of the bytes) so identical states — a soak that idles, a
re-checkpoint after resume — deduplicate to a single object, and every
checkpoint appends one line to a **hash-chained manifest**
(``manifest.jsonl``): each entry carries the hash of its predecessor,
so truncation is detectable, reordering is impossible, and
:meth:`SnapshotStore.verify` re-derives the whole chain from the bytes
on disk.

Blob format (``FTSNAP1``)::

    b"FTSNAP1\\n" | u64 header length | JSON header | array bytes...

The header is the state tree with every array leaf replaced by
``{"__a__": <length>}`` in depth-first order; the arrays' raw bytes
follow in that same order.  Dict insertion order is preserved through
JSON — it is load-bearing (the flat core's donor scans walk dicts in
age order), which is why the codec never sorts the tree.

A SIGKILL can land mid-write: objects are written to a temp name and
atomically renamed, the manifest line is flushed+fsynced before the
append returns, and the reader tolerates a torn final line (the
checkpoint that was being written simply never happened).
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from array import array
from typing import Dict, List, Optional, Tuple

from ..core.errors import ReproError

MAGIC = b"FTSNAP1\n"

#: Genesis link of the manifest chain.
GENESIS = "0" * 64


class CheckpointError(ReproError):
    """A snapshot blob or manifest failed validation."""


# -- the blob codec --------------------------------------------------------
def _flatten(node: object, arrays: List[array]) -> object:
    if isinstance(node, array):
        if node.typecode != "q":
            raise CheckpointError(f"unsupported array typecode {node.typecode!r}")
        arrays.append(node)
        return {"__a__": len(node)}
    if isinstance(node, dict):
        return {str(k): _flatten(v, arrays) for k, v in node.items()}
    if isinstance(node, (int, str)) or node is None:
        return node
    raise CheckpointError(f"unsupported leaf {type(node).__name__} in state")


def _count_elems(node: object) -> int:
    """Total array elements a flattened state tree promises."""
    if isinstance(node, dict):
        if set(node) == {"__a__"}:
            n = node["__a__"]
            if not isinstance(n, int) or n < 0:
                raise CheckpointError(f"corrupt array marker {n!r}")
            return n
        return sum(_count_elems(v) for v in node.values())
    return 0


def _inflate(node: object, blob: memoryview, offset: List[int]) -> object:
    if isinstance(node, dict):
        if set(node) == {"__a__"}:
            n = node["__a__"]
            out = array("q")
            start = offset[0]
            out.frombytes(blob[start : start + 8 * n])
            offset[0] = start + 8 * n
            return out
        return {k: _inflate(v, blob, offset) for k, v in node.items()}
    return node


def encode_state(state: Dict[str, object]) -> bytes:
    """Serialize a snapshot-state tree to one deterministic blob."""
    arrays: List[array] = []
    header = {
        "byteorder": sys.byteorder,
        "itemsize": 8,
        "state": _flatten(state, arrays),
    }
    head = json.dumps(header, separators=(",", ":")).encode()
    parts = [MAGIC, len(head).to_bytes(8, "big"), head]
    parts.extend(a.tobytes() for a in arrays)
    return b"".join(parts)


def decode_state(blob: bytes) -> Dict[str, object]:
    """Invert :func:`encode_state`."""
    if blob[: len(MAGIC)] != MAGIC:
        raise CheckpointError("not a FTSNAP1 blob")
    head_len = int.from_bytes(blob[len(MAGIC) : len(MAGIC) + 8], "big")
    body_at = len(MAGIC) + 8 + head_len
    try:
        header = json.loads(blob[len(MAGIC) + 8 : body_at])
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"corrupt snapshot header: {exc}") from None
    if header.get("byteorder") != sys.byteorder:
        raise CheckpointError(
            f"snapshot written on a {header.get('byteorder')}-endian host"
        )
    expected = body_at + 8 * _count_elems(header.get("state"))
    if expected != len(blob):
        raise CheckpointError(
            f"snapshot length mismatch: have {len(blob)} bytes, "
            f"header promises {expected}"
        )
    offset = [body_at]
    return _inflate(header["state"], memoryview(blob), offset)


def _entry_hash(prev: str, core: Dict[str, object]) -> str:
    return hashlib.sha256(
        (prev + json.dumps(core, sort_keys=True, separators=(",", ":"))).encode()
    ).hexdigest()


class SnapshotStore:
    """Content-addressed objects + the hash-chained checkpoint manifest.

    Layout under ``root``::

        objects/<sha256>   one blob per unique content
        manifest.jsonl     one JSON entry per checkpoint, hash-chained

    Entries carry ``index`` (checkpoint ordinal), ``event_index`` (how
    many campaign events the snapshot covers), the ``engine`` and
    ``tracker`` object hashes, free-form ``meta`` (the service's carry:
    baseline diameter, peaks, alert count), ``prev`` and ``hash``.
    """

    def __init__(self, root: str):
        self.root = root
        self.objects_dir = os.path.join(root, "objects")
        self.manifest_path = os.path.join(root, "manifest.jsonl")
        os.makedirs(self.objects_dir, exist_ok=True)

    # -- objects -----------------------------------------------------------
    def put_bytes(self, data: bytes) -> str:
        """Store a blob; returns its address.  Deduplicates by content."""
        sha = hashlib.sha256(data).hexdigest()
        path = os.path.join(self.objects_dir, sha)
        if not os.path.exists(path):
            # Per-pid tmp name: two processes storing the same content
            # (e.g. an orphaned soak racing its own resume) must not
            # rename each other's half-written staging file out from
            # under the os.replace.
            tmp = f"{path}.{os.getpid()}.tmp"
            with open(tmp, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        return sha

    def get_bytes(self, sha: str) -> bytes:
        path = os.path.join(self.objects_dir, sha)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            raise CheckpointError(f"missing object {sha}") from None
        if hashlib.sha256(data).hexdigest() != sha:
            raise CheckpointError(f"object {sha} fails its content hash")
        return data

    def put_json(self, value: object) -> str:
        return self.put_bytes(
            json.dumps(value, sort_keys=True, separators=(",", ":")).encode()
        )

    def get_json(self, sha: str) -> object:
        return json.loads(self.get_bytes(sha))

    # -- the manifest chain ------------------------------------------------
    def entries(self) -> List[dict]:
        """Every complete manifest entry, in order (torn tail tolerated)."""
        if not os.path.exists(self.manifest_path):
            return []
        out: List[dict] = []
        with open(self.manifest_path, "r") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(json.loads(line))
                except json.JSONDecodeError:
                    break  # torn final line: the append never completed
        return out

    def latest(self) -> Optional[dict]:
        entries = self.entries()
        return entries[-1] if entries else None

    def append(
        self,
        event_index: int,
        engine_state: Dict[str, object],
        tracker_state: Dict[str, object],
        meta: Optional[dict] = None,
    ) -> dict:
        """Write both objects, then durably append the chained entry."""
        engine_sha = self.put_bytes(encode_state(engine_state))
        tracker_sha = self.put_json(tracker_state)
        prior = self.latest()
        prev = prior["hash"] if prior else GENESIS
        core = {
            "index": (prior["index"] + 1) if prior else 0,
            "event_index": int(event_index),
            "engine": engine_sha,
            "tracker": tracker_sha,
            "meta": meta or {},
        }
        entry = dict(core)
        entry["prev"] = prev
        entry["hash"] = _entry_hash(prev, core)
        with open(self.manifest_path, "a") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return entry

    def verify(self) -> int:
        """Re-derive the whole chain and every object hash; returns the
        number of valid entries.  Raises :class:`CheckpointError` on the
        first broken link, missing object, or content mismatch."""
        prev = GENESIS
        count = 0
        for i, entry in enumerate(self.entries()):
            core = {
                k: entry[k]
                for k in ("index", "event_index", "engine", "tracker", "meta")
            }
            if entry.get("prev") != prev:
                raise CheckpointError(f"entry {i}: chain broken (bad prev)")
            if entry.get("hash") != _entry_hash(prev, core):
                raise CheckpointError(f"entry {i}: hash mismatch")
            self.get_bytes(entry["engine"])
            self.get_bytes(entry["tracker"])
            prev = entry["hash"]
            count += 1
        return count

    def load_engine_state(self, entry: dict) -> Dict[str, object]:
        return decode_state(self.get_bytes(entry["engine"]))

    def load_tracker_state(self, entry: dict) -> Dict[str, object]:
        state = self.get_json(entry["tracker"])
        if not isinstance(state, dict):
            raise CheckpointError("tracker object is not a state dict")
        return state
