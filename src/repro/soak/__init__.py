"""soak — checkpointed long-horizon campaigns with streaming telemetry.

The subsystem that turns bounded experiments into soaks you can leave
running overnight and kill with impunity:

* :mod:`repro.soak.checkpoint` — the durability layer: a deterministic
  binary codec for the flat engine's snapshot state, content-addressed
  object storage (identical states deduplicate), and a hash-chained
  ``manifest.jsonl`` that :meth:`~repro.soak.checkpoint.SnapshotStore.verify`
  re-derives end to end.
* :mod:`repro.soak.service` — the campaign driver: windows of events
  with per-window metrics, SLO watchdogs, sampled heal tracing, and a
  checkpoint at every boundary; resume restores the engine, rebuilds
  the diameter tracker, fast-forwards the workload generator, and
  differentially cross-validates against the object-core oracle before
  continuing.
* :mod:`repro.soak.run` — the CLI (``python -m repro.soak.run``).

See ``docs/SOAK.md`` for the checkpoint format, resume semantics, and
the bisection workflow from an SLO alert to a replayable event window.
"""

from .checkpoint import (
    GENESIS,
    MAGIC,
    CheckpointError,
    SnapshotStore,
    decode_state,
    encode_state,
)
from .service import SoakConfig, SoakService

__all__ = [
    "GENESIS",
    "MAGIC",
    "CheckpointError",
    "SnapshotStore",
    "SoakConfig",
    "SoakService",
    "decode_state",
    "encode_state",
]
