"""The checkpointed soak service: long-horizon campaigns that survive.

One :class:`SoakService` run drives
:func:`~repro.harness.run_churn_campaign` (``keep_rounds=False`` — O(1)
aggregate memory) over a :class:`~repro.churn.TraceGenerator` workload,
with the full streaming-telemetry stack attached and a durable
checkpoint at every window boundary:

* every event folds into a **per-window**
  :class:`~repro.obs.MetricsRegistry` and the flight-recorder ring;
  heals are head-sampled into the telemetry stream by a
  :class:`~repro.obs.SamplingTracer`;
* every ``window`` events the window closes: the window registry merges
  into the cumulative one (merge == whole-run, by construction and by
  test), a window record goes to the sink, the
  :class:`~repro.obs.SloWatchdog` judges it (breach -> alert record +
  one-shot flight-recorder dump + forced trace sampling), and the
  engine + diameter tracker checkpoint into the
  :class:`~repro.soak.checkpoint.SnapshotStore`;
* on **resume**, the latest manifest entry restores the engine
  (:meth:`~repro.core.flat_tree.FlatForgivingTree.restore`), rebuilds
  the tracker (:meth:`~repro.graphs.incremental.DynamicTreeMetrics.from_parents`),
  fast-forwards the generator to the checkpoint's event index, and —
  before continuing — **differentially cross-validates**: scratch
  copies of the restored engine and its object-core oracle
  (:meth:`~repro.core.flat_tree.FlatForgivingTree.to_object_engine`)
  replay the next ``crossval`` events and must produce bit-identical
  :class:`~repro.core.events.HealReport`\\ s and final overlays.

Determinism contract: a soak killed at any point and resumed produces
the same event stream, the same heals, and the same deterministic
window fields as the unbroken run — only the ``op`` sub-records
(wall-clock throughput, RSS) differ.  Stretch is measured against the
campaign's *original* baseline diameter, carried through checkpoint
metadata (the harness's own denominator resets at the restore point;
see :meth:`~repro.baselines.forgiving.ForgivingTreeHealer.from_engine`).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from typing import List, Optional, Tuple

from ..baselines.forgiving import ForgivingTreeHealer
from ..churn import (
    Delete,
    FlashCrowd,
    GeneratorChurnAdversary,
    GeneratorConfig,
    Insert,
    InsertWave,
    Outage,
    TraceGenerator,
)
from ..core.errors import ReproError
from ..core.flat_tree import FlatForgivingTree
from ..core.forgiving_tree import WILL_REBUILD, WILL_SPLICE
from ..graphs.incremental import DynamicTreeMetrics
from ..harness.experiment import _stream_round, run_churn_campaign
from ..obs import (
    FlightRecorder,
    JsonlSink,
    MetricsRegistry,
    MetricsStreamer,
    PID_PROTOCOL,
    SamplingTracer,
    SloWatchdog,
    default_slos,
)
from .checkpoint import CheckpointError, SnapshotStore


def _rss_kb() -> int:
    """Resident set size in kB (0 where /proc is absent)."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


@dataclass(frozen=True)
class SoakConfig:
    """Everything one soak campaign is a function of (plus the host).

    ``events`` is the campaign *total*: resumed runs continue until the
    stream reaches it.  ``window`` is the telemetry/SLO granularity and
    ``checkpoint_every`` how many windows pass between checkpoints;
    ``crossval`` is the resume cross-validation depth (events replayed
    against the object oracle before continuing).  ``sample_every``
    head-samples 1-in-k heals into the telemetry stream (0 = tracing
    off).  SLO thresholds feed :func:`~repro.obs.default_slos`.
    """

    out_dir: str
    n0: int = 1000
    events: int = 10_000
    seed: int = 0
    branching: int = 2
    will_mode: str = WILL_SPLICE
    window: int = 1000
    checkpoint_every: int = 1
    crossval: int = 200
    sample_every: int = 100
    recorder: int = 4096
    telemetry_max_bytes: int = 64 * 1024 * 1024
    outages: Tuple[Tuple[float, ...], ...] = ()
    flash_crowds: Tuple[Tuple[int, ...], ...] = ()
    slo_max_stretch: float = 64.0
    slo_p99_messages: float = 200.0
    slo_min_events_per_sec: float = 0.0

    def __post_init__(self) -> None:
        if self.will_mode not in (WILL_SPLICE, WILL_REBUILD):
            raise ReproError(
                f"unknown will mode {self.will_mode!r} "
                f"(one of {(WILL_SPLICE, WILL_REBUILD)})"
            )
        if self.events < 1 or self.window < 1 or self.checkpoint_every < 1:
            raise ReproError("events, window, checkpoint_every must be >= 1")
        if self.crossval < 0 or self.sample_every < 0:
            raise ReproError("crossval and sample_every must be >= 0")

    # -- persistence (config.json pins the campaign for resume) -----------
    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(asdict(self), fh, sort_keys=True, indent=2)

    @classmethod
    def load(cls, path: str) -> "SoakConfig":
        with open(path) as fh:
            raw = json.load(fh)
        raw["outages"] = tuple(tuple(o) for o in raw.get("outages", ()))
        raw["flash_crowds"] = tuple(
            tuple(int(x) for x in f) for f in raw.get("flash_crowds", ())
        )
        return cls(**raw)

    def generator_config(self) -> GeneratorConfig:
        acts: List[object] = [
            Outage(at_event=int(o[0]), fraction=float(o[1]),
                   rejoin_fraction=float(o[2]) if len(o) > 2 else 0.6)
            for o in self.outages
        ]
        acts.extend(
            FlashCrowd(at_event=int(f[0]), joiners=int(f[1]),
                       wave=int(f[2]) if len(f) > 2 else 16)
            for f in self.flash_crowds
        )
        return GeneratorConfig(n0=self.n0, seed=self.seed, acts=tuple(acts))


def _apply_event(healer, event):
    if isinstance(event, Insert):
        return healer.insert(event.nid, event.attach_to)
    if isinstance(event, InsertWave):
        return healer.insert_batch(event.joiners)
    assert isinstance(event, Delete)
    return healer.delete(event.nid)


class SoakService:
    """One soak run: fresh start or resume, then windows until done."""

    def __init__(self, config: SoakConfig):
        self.config = config
        self.store = SnapshotStore(os.path.join(config.out_dir, "checkpoints"))
        self.crossval_result: Optional[dict] = None
        self.summary: Optional[dict] = None

    # -- resume machinery --------------------------------------------------
    def _cross_validate(self, entry: dict) -> dict:
        """Replay a window on scratch copies: restored flat engine vs its
        object-core oracle, bit-identical reports and final overlays."""
        cfg = self.config
        k = min(cfg.crossval, cfg.events - entry["event_index"])
        if k <= 0:
            return {"events": 0, "ok": True}
        flat = FlatForgivingTree.restore(self.store.load_engine_state(entry))
        oracle = FlatForgivingTree.restore(
            self.store.load_engine_state(entry)
        ).to_object_engine()
        flat_h = ForgivingTreeHealer.from_engine(flat)
        oracle_h = ForgivingTreeHealer.from_engine(oracle)
        gen_a = TraceGenerator(cfg.generator_config())
        gen_b = TraceGenerator(cfg.generator_config())
        gen_a.skip(entry["event_index"])
        gen_b.skip(entry["event_index"])
        for i in range(k):
            event = gen_a.next()
            assert event == gen_b.next()
            r_flat = _apply_event(flat_h, event)
            r_oracle = _apply_event(oracle_h, event)
            if r_flat != r_oracle:
                raise CheckpointError(
                    f"cross-validation diverged at replay event {i} "
                    f"(campaign event {entry['event_index'] + i}): "
                    f"flat {r_flat!r} != oracle {r_oracle!r}"
                )
        if flat.adjacency() != oracle.adjacency():
            raise CheckpointError(
                "cross-validation: overlays diverged after identical reports"
            )
        return {"events": k, "ok": True}

    # -- the run -----------------------------------------------------------
    def run(self) -> dict:
        cfg = self.config
        os.makedirs(cfg.out_dir, exist_ok=True)
        config_path = os.path.join(cfg.out_dir, "config.json")
        if not os.path.exists(config_path):
            cfg.save(config_path)

        entry = self.store.latest()
        generator = TraceGenerator(cfg.generator_config())
        if entry is None:
            healer = ForgivingTreeHealer(
                generator.build_initial(),
                branching=cfg.branching,
                will_mode=cfg.will_mode,
            )
            tracker = DynamicTreeMetrics(generator.build_initial())
            start_event = 0
            carry = {
                "d0": tracker.diameter,
                "peak_ddeg": 0,
                "peak_stretch": 0.0,
                "peak_diameter": tracker.diameter,
                "alerts": 0,
                "windows": 0,
                "segments": 0,
            }
        else:
            self.store.verify()
            self.crossval_result = self._cross_validate(entry)
            engine = FlatForgivingTree.restore(
                self.store.load_engine_state(entry)
            )
            healer = ForgivingTreeHealer.from_engine(engine)
            ts = self.store.load_tracker_state(entry)
            tracker = DynamicTreeMetrics.from_parents(
                ts["parents"],
                ids=ts["ids"],
                chords=[tuple(c) for c in ts["chords"]],
            )
            start_event = int(entry["event_index"])
            carry = dict(entry["meta"])
            carry["segments"] = carry.get("segments", 0) + 1

        remaining = cfg.events - start_event
        d0 = carry["d0"]

        # -- instruments (owned here, not by the harness's obs= stack:
        # the service streams and windows; the harness only heals) -------
        telemetry_path = os.path.join(cfg.out_dir, "telemetry.jsonl")
        if os.path.exists(telemetry_path):
            # A killed segment's telemetry is evidence — shelve it, never
            # clobber it.
            i = 1
            while os.path.exists(
                os.path.join(cfg.out_dir, f"telemetry.seg{i}.jsonl")
            ):
                i += 1
            os.replace(
                telemetry_path,
                os.path.join(cfg.out_dir, f"telemetry.seg{i}.jsonl"),
            )
        sink = JsonlSink(telemetry_path, max_bytes=cfg.telemetry_max_bytes)
        cumulative = MetricsRegistry()
        streamer = MetricsStreamer(cumulative, sink)
        recorder = FlightRecorder(cfg.recorder) if cfg.recorder else None
        tracer = (
            SamplingTracer(sink, sample_every=cfg.sample_every)
            if cfg.sample_every
            else None
        )
        watchdog = SloWatchdog(
            default_slos(
                branching=cfg.branching,
                p99_messages=cfg.slo_p99_messages,
                max_stretch=cfg.slo_max_stretch,
                min_events_per_sec=cfg.slo_min_events_per_sec,
            ),
            recorder=recorder,
            tracer=tracer,
            dump_dir=cfg.out_dir,
        )
        carry["alerts"] = int(carry.get("alerts", 0))

        state = {
            "event": start_event,
            "win_reg": MetricsRegistry(),
            "win_events": 0,
            "win_first": start_event,
            "win_peak_ddeg": 0,
            "win_peak_diameter": 0,
            "win_deletes": 0,
            "win_inserts": 0,
            "win_t0": time.perf_counter(),
            "alive": None,
            "rss_peak": _rss_kb(),
        }

        def close_window() -> None:
            if state["win_events"] == 0:
                return
            wall = time.perf_counter() - state["win_t0"]
            rss = _rss_kb()
            state["rss_peak"] = max(state["rss_peak"], rss)
            snap = state["win_reg"].snapshot()
            messages = snap.get("campaign.messages", {})
            peak_stretch = (
                state["win_peak_diameter"] / d0 if d0 else 0.0
            )
            record = {
                "window": carry["windows"],
                "first_event": state["win_first"],
                "last_event": state["event"] - 1,
                "events": state["win_events"],
                "alive": state["alive"],
                "deletes": state["win_deletes"],
                "inserts": state["win_inserts"],
                "peak_degree_increase": state["win_peak_ddeg"],
                "peak_diameter": state["win_peak_diameter"],
                "peak_stretch": peak_stretch,
                "messages": messages,
                "op": {
                    "wall_s": wall,
                    "events_per_sec": (
                        state["win_events"] / wall if wall > 0 else 0.0
                    ),
                    "rss_kb": rss,
                },
            }
            carry["peak_ddeg"] = max(
                carry["peak_ddeg"], state["win_peak_ddeg"]
            )
            carry["peak_diameter"] = max(
                carry["peak_diameter"], state["win_peak_diameter"]
            )
            carry["peak_stretch"] = max(carry["peak_stretch"], peak_stretch)
            cumulative.merge(state["win_reg"])
            streamer.flush(label=carry["windows"])
            sink.emit("window", record)
            for alert in watchdog.evaluate(record):
                carry["alerts"] += 1
                payload = alert.to_dict()
                payload["recorder_dump"] = watchdog.dump_path
                sink.emit("alert", payload)
                if recorder is not None:
                    recorder.record(
                        "alert", clock=float(state["event"]), slo=alert.slo,
                        observed=alert.observed, threshold=alert.threshold,
                    )
            carry["windows"] += 1
            if carry["windows"] % cfg.checkpoint_every == 0:
                self._checkpoint(healer, tracker, state["event"], carry, sink)
            state["win_reg"] = MetricsRegistry()
            state["win_events"] = 0
            state["win_first"] = state["event"]
            state["win_peak_ddeg"] = 0
            state["win_peak_diameter"] = 0
            state["win_deletes"] = 0
            state["win_inserts"] = 0
            state["win_t0"] = time.perf_counter()

        def on_round(record, _healer) -> None:
            state["event"] += 1
            state["win_events"] += 1
            state["alive"] = record.alive
            if record.event == "delete":
                state["win_deletes"] += 1
            else:
                state["win_inserts"] += 1
            if record.max_degree_increase > state["win_peak_ddeg"]:
                state["win_peak_ddeg"] = record.max_degree_increase
            if record.diameter and record.diameter > state["win_peak_diameter"]:
                state["win_peak_diameter"] = record.diameter
            _stream_round(state["win_reg"], record)
            if recorder is not None:
                recorder.record(
                    "event",
                    clock=float(state["event"] - 1),
                    event=record.event,
                    alive=record.alive,
                    messages=record.total_messages,
                    ddeg=record.max_degree_increase,
                    diameter=record.diameter,
                )
            if tracer is not None:
                t = float(state["event"] - 1)
                sid = tracer.begin(
                    f"heal:{record.event}", "heal", t, (PID_PROTOCOL, 0),
                    args={"event_index": state["event"] - 1},
                )
                tracer.end(
                    sid, t + 1.0,
                    args={
                        "messages": record.total_messages,
                        "ddeg": record.max_degree_increase,
                    },
                )
            if state["win_events"] >= cfg.window:
                close_window()

        t_run0 = time.perf_counter()
        rss0 = _rss_kb()
        result = None
        if remaining > 0:
            adversary = GeneratorChurnAdversary(generator, start_at=start_event)
            result = run_churn_campaign(
                healer,
                adversary,
                events=remaining,
                metrics="incremental",
                seed=cfg.seed,
                keep_rounds=False,
                on_round=on_round,
                metrics_tracker=tracker,
            )
            close_window()  # the partial tail window (also checkpoints below)
            if carry["windows"] % cfg.checkpoint_every != 0:
                self._checkpoint(healer, tracker, state["event"], carry, sink)
        wall = time.perf_counter() - t_run0
        if tracer is not None:
            tracer.check_closed()
        segment_events = state["event"] - start_event

        last = self.store.latest()
        self.summary = {
            "deterministic": {
                "n0": cfg.n0,
                "seed": cfg.seed,
                "branching": cfg.branching,
                "will_mode": cfg.will_mode,
                "events_total": state["event"],
                "events_target": cfg.events,
                "segment_events": segment_events,
                "windows": carry["windows"],
                "alerts": carry["alerts"],
                "peak_degree_increase": carry["peak_ddeg"],
                "peak_diameter": carry["peak_diameter"],
                "peak_stretch": carry["peak_stretch"],
                "d0": d0,
                "final_alive": len(healer.alive),
                "checkpoints": (last["index"] + 1) if last else 0,
                "last_checkpoint": last["hash"] if last else None,
                "crossval": self.crossval_result,
                "slo_breached": watchdog.breached,
                "recorder_dump": watchdog.dump_path,
                "traced_heals": tracer.roots_kept if tracer else 0,
            },
            "op": {
                "wall_s": wall,
                "events_per_sec": segment_events / wall if wall > 0 else 0.0,
                "rss_kb_start": rss0,
                "rss_kb_end": _rss_kb(),
                "rss_kb_peak": state["rss_peak"],
            },
        }
        sink.emit("summary", self.summary["deterministic"])
        sink.close()
        with open(os.path.join(cfg.out_dir, "summary.json"), "w") as fh:
            json.dump(self.summary, fh, sort_keys=True, indent=2)
        return self.summary

    def _checkpoint(self, healer, tracker, event_index, carry, sink) -> None:
        entry = self.store.append(
            event_index,
            healer.engine.snapshot_state(),
            tracker.parent_state(),
            meta=dict(carry),
        )
        sink.emit(
            "checkpoint",
            {
                "index": entry["index"],
                "event_index": entry["event_index"],
                "engine": entry["engine"],
                "tracker": entry["tracker"],
                "hash": entry["hash"],
            },
        )
