"""Mutation self-test: prove every certificate class actually bites.

A checker that never fires is indistinguishable from a checker that
checks nothing.  This module seeds one corruption per certificate class
into a *clean* campaign's exported log and re-certifies
(:meth:`AuditInputs.certify` takes the substituted records), asserting
the corruption is caught by the expected certificate with the offending
heal and event-id window named:

=====================  ============  =========================================
corruption             certificate   seeded defect
=====================  ============  =========================================
``dropped-delivery``   accounting    a :class:`DeliverRecord` silently removed
``forged-sender``      locality      a send's ``src`` rewritten to an alien id
``budget-overflow``    budget        a send claiming 99999 carried node ids
``deliver-before-send``  causality   a delivery timestamped before its send
``lease-overlap``      exclusion     a ``lease-release`` deleted, extending the
                                     grant over a region-sharing later heal
``phantom-drop``       accounting    a :class:`DropRecord` duplicated
=====================  ============  =========================================

:func:`run_self_test` drives the whole table over a seeded
lease + drop/dup campaign; ``python -m repro.audit.mutate`` is the CLI
the ``audit-smoke`` CI job runs.  The campaign harness is imported
lazily so :mod:`repro.audit` itself stays importable from telemetry
alone.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Tuple

from .certify import AuditError, AuditInputs, Violation, _delta_key
from .schema import (
    ControlRecord,
    DeliverRecord,
    DropRecord,
    LogRecord,
    SendRecord,
    decode_log,
)

#: A corruption takes the decoded log + its sidecar inputs and returns
#: the mutated log, or ``None`` when the campaign has nothing to corrupt
#: (e.g. no drops recorded) — the self-test treats ``None`` as an error,
#: since its campaign is chosen to exercise every class.
Corruption = Callable[[List[LogRecord], AuditInputs], Optional[List[LogRecord]]]


def _heal_of(rec: LogRecord, inputs: AuditInputs) -> bool:
    """True when ``rec`` belongs to a heal with a matched oracle delta
    (budget/locality only run there)."""
    for stats in inputs.heal_stats:
        if stats.hid == rec.heal:
            return any(
                _delta_key(d) == stats.label for d in inputs.deltas
            )
    return False


def corrupt_dropped_delivery(
    log: List[LogRecord], inputs: AuditInputs
) -> Optional[List[LogRecord]]:
    for i, rec in enumerate(log):
        if isinstance(rec, DeliverRecord):
            return log[:i] + log[i + 1:]
    return None


def corrupt_forged_sender(
    log: List[LogRecord], inputs: AuditInputs
) -> Optional[List[LogRecord]]:
    alien = max(
        max((rec.src for rec in log), default=0),
        max((rec.dst for rec in log), default=0),
    ) + 1000
    for i, rec in enumerate(log):
        if isinstance(rec, SendRecord) and _heal_of(rec, inputs):
            return log[:i] + [replace(rec, src=alien)] + log[i + 1:]
    return None


def corrupt_budget_overflow(
    log: List[LogRecord], inputs: AuditInputs
) -> Optional[List[LogRecord]]:
    for i, rec in enumerate(log):
        if isinstance(rec, SendRecord) and _heal_of(rec, inputs):
            return log[:i] + [replace(rec, ids=99999)] + log[i + 1:]
    return None


def corrupt_deliver_before_send(
    log: List[LogRecord], inputs: AuditInputs
) -> Optional[List[LogRecord]]:
    sends = {
        (rec.heal, rec.seq): rec.t
        for rec in log
        if isinstance(rec, SendRecord) and rec.seq >= 0
    }
    for i, rec in enumerate(log):
        if not isinstance(rec, DeliverRecord) or rec.seq < 0:
            continue
        sent_at = sends.get((rec.heal, rec.seq))
        if sent_at is not None:
            return log[:i] + [replace(rec, t=sent_at - 10.0)] + log[i + 1:]
    return None


def corrupt_lease_overlap(
    log: List[LogRecord], inputs: AuditInputs
) -> Optional[List[LogRecord]]:
    """Delete the ``lease-release`` of an earlier heal whose write
    region intersects a heal granted only *after* that release — the
    earlier grant then reads as held forever, a forged overlap."""
    grants: Dict[int, float] = {}
    releases: Dict[int, Tuple[int, float]] = {}
    for i, rec in enumerate(log):
        if not isinstance(rec, ControlRecord):
            continue
        if rec.ctl == "lease-grant" and rec.ref not in grants:
            grants[rec.ref] = rec.t
        elif rec.ctl == "lease-release" and rec.ref not in releases:
            releases[rec.ref] = (i, rec.t)
    regions: Dict[int, frozenset] = {}
    for stats in inputs.heal_stats:
        for d in inputs.deltas:
            if _delta_key(d) == stats.label:
                regions[stats.hid] = d.region
                break
    for a, (ri, released_at) in sorted(releases.items()):
        for b, granted_at in sorted(grants.items()):
            if b == a or granted_at < released_at:
                continue
            if regions.get(a, frozenset()) & regions.get(b, frozenset()):
                return log[:ri] + log[ri + 1:]
    return None


def corrupt_phantom_drop(
    log: List[LogRecord], inputs: AuditInputs
) -> Optional[List[LogRecord]]:
    for i, rec in enumerate(log):
        if isinstance(rec, DropRecord):
            return log[: i + 1] + [rec] + log[i + 1:]
    return None


#: corruption name -> (certificate class expected to catch it, mutator).
CORRUPTIONS: Dict[str, Tuple[str, Corruption]] = {
    "dropped-delivery": ("accounting", corrupt_dropped_delivery),
    "forged-sender": ("locality", corrupt_forged_sender),
    "budget-overflow": ("budget", corrupt_budget_overflow),
    "deliver-before-send": ("causality", corrupt_deliver_before_send),
    "lease-overlap": ("exclusion", corrupt_lease_overlap),
    "phantom-drop": ("accounting", corrupt_phantom_drop),
}


def _self_test_inputs(seed: int = 11) -> AuditInputs:
    """One clean lease + drop/dup FT campaign's telemetry bundle.

    Harness imports live here (not at module top) so the audit package
    itself never depends on the engines it audits.
    """
    from ..adversaries.churn import RandomChurnAdversary
    from ..baselines.forgiving import ForgivingTreeHealer
    from ..faults.plan import FaultPlan
    from ..graphs import generators
    from ..harness.experiment import run_churn_campaign
    from ..simnet.transport import TransportSpec

    graph = {k: set(v) for k, v in generators.random_tree(24, seed).items()}
    result = run_churn_campaign(
        ForgivingTreeHealer(graph),
        RandomChurnAdversary(p_insert=0.3, seed=seed),
        events=16,
        seed=seed,
        transport=TransportSpec(
            mode="async",
            overlap="lease",
            seed=seed,
            faults=FaultPlan(drop=0.15, dup=0.1, seed=7),
        ),
        obs="audit",
    )
    assert result.audit is not None and result.audit.ok
    assert result.audit_inputs is not None
    return result.audit_inputs


def check_corruption(
    inputs: AuditInputs, name: str
) -> Tuple[bool, str, Optional[Violation]]:
    """Apply one corruption and re-certify.

    Returns ``(caught, detail, violation)`` — caught means the expected
    certificate fired *and* its violation names a real heal (or the
    campaign, for campaign-scoped accounting) with a non-empty event-id
    window.
    """
    expected, mutate = CORRUPTIONS[name]
    log = decode_log(inputs.records)
    mutated = mutate(list(log), inputs)
    if mutated is None:
        return False, "corruption not applicable to this campaign", None
    report = inputs.certify(mutated)
    matches = [
        v for v in report.violations
        if v.cert == expected and v.window[1] >= 0
    ]
    # Prefer the heal-scoped violation — the acceptance bar is that the
    # auditor names the offending heal, not just "somewhere on campaign".
    matches.sort(key=lambda v: v.heal < 0)
    if matches:
        return True, str(matches[0]), matches[0]
    got = sorted({v.cert for v in report.violations})
    return (
        False,
        f"expected a {expected!r} violation, got {got or 'a clean report'}",
        None,
    )


def run_self_test(seed: int = 11) -> Dict[str, str]:
    """Run every corruption; raise :class:`AuditError` on any escape."""
    inputs = _self_test_inputs(seed)
    outcomes: Dict[str, str] = {}
    escaped: List[str] = []
    for name in CORRUPTIONS:
        caught, detail, _ = check_corruption(inputs, name)
        outcomes[name] = detail
        if not caught:
            escaped.append(f"{name}: {detail}")
    if escaped:
        raise AuditError(
            "mutation self-test: corruptions escaped the auditor:\n  "
            + "\n  ".join(escaped)
        )
    return outcomes


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.audit.mutate",
        description="Prove each audit certificate catches its seeded corruption.",
    )
    parser.add_argument("--seed", type=int, default=11)
    opts = parser.parse_args(argv)
    try:
        outcomes = run_self_test(seed=opts.seed)
    except AuditError as exc:
        print(exc)
        return 1
    width = max(len(name) for name in outcomes)
    for name, detail in outcomes.items():
        print(f"caught  {name:<{width}}  {detail}")
    print(f"{len(outcomes)}/{len(CORRUPTIONS)} corruptions caught")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
