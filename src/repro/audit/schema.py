"""Typed, versioned records of the kernel's causal event log.

The async kernel (:class:`repro.simnet.AsyncNetwork`) historically
pinned its determinism artifact as positional 6-tuples
``(t, heal, depth, src, dst, tag)`` with the record kind mangled into
the tag string (``"InsertRequest"``, ``"drop:Deleted"``,
``"lease-grant"``).  Consumers indexed positions blindly and parsed the
tag by convention.  This module is the schema those tuples always
implied, made explicit:

* one frozen dataclass per record kind — :class:`SendRecord`,
  :class:`DeliverRecord`, :class:`DropRecord`, :class:`DupRecord`,
  :class:`DupSuppressedRecord`, :class:`DeadDropRecord`,
  :class:`CrashRecord`, :class:`ControlRecord` — carrying the message
  type, heal id, causal layer, and link endpoints as named fields (send
  records additionally carry the kernel's global send sequence number
  and the message's id count, the quantities the budget and
  happens-before certificates need);
* lossless legacy decoding: :func:`decode_record` turns any historical
  tuple into its typed record (:func:`decode_log` a whole log), and
  :meth:`LogRecord.to_tuple` produces the historical shape back
  (new-only fields — ``seq``, ``ids`` — have no tuple slot and are the
  one thing the round trip forgets);
* a versioned JSONL dialect (``"v": 1`` on every line) via
  :func:`write_jsonl` / :func:`load_jsonl` /
  :func:`record_from_dict`, the interchange format of the
  ``python -m repro.audit.query`` CLI and the certificate checker.

The kernel emits these records directly (see
``AsyncNetwork.event_log``); nothing in this module imports the kernel,
the engines, or the mirror — the schema is the telemetry boundary.
"""

from __future__ import annotations

import functools
import json
from dataclasses import dataclass, fields
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple, Type, Union

#: Version stamped on every JSONL line; bump on any field change.
SCHEMA_VERSION = 1

#: Legacy tag prefixes of the fault-plane rows (``<prefix>:<MsgType>``).
_PREFIXED = {
    "send": "SendRecord",
    "drop": "DropRecord",
    "dup": "DupRecord",
    "dup-suppressed": "DupSuppressedRecord",
    "dead": "DeadDropRecord",
}


@dataclass(frozen=True)
class LogRecord:
    """Base record: when, which heal, which causal layer, which link.

    ``t`` is the kernel's virtual clock (rounded to 9 decimals, exactly
    as the legacy tuples pinned it); ``heal`` the kernel heal id (or a
    control ``ref`` — see :class:`ControlRecord`); ``depth`` the causal
    layer (``-1`` where layering does not apply); ``src``/``dst`` the
    link endpoints (``-1`` where absent).
    """

    t: float
    heal: int
    depth: int
    src: int
    dst: int

    kind = "record"

    def to_tuple(self) -> Tuple[float, int, int, int, int, str]:
        """The historical positional 6-tuple (lossy for ``seq``/``ids``)."""
        return (self.t, self.heal, self.depth, self.src, self.dst, self.tag())

    def tag(self) -> str:
        """The legacy tag string (position 5 of the historical tuple)."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {"v": SCHEMA_VERSION, "kind": self.kind}
        for f in fields(self):
            d[f.name] = getattr(self, f.name)
        return d


@dataclass(frozen=True)
class _MessageRecord(LogRecord):
    """Shared shape of the per-message kinds: the message type name."""

    msg: str = ""

    def tag(self) -> str:
        return f"{self.kind}:{self.msg}"


@dataclass(frozen=True)
class SendRecord(_MessageRecord):
    """One logical protocol send, logged at send time.

    ``seq`` is the kernel's global envelope sequence number (the same
    number delivery records carry, so a delivery is matched to its send
    exactly); ``ids`` the message's id count
    (:meth:`~repro.distributed.messages.Message.id_count`), the quantity
    the FT's O(1)-id and the FG's manifest-id budgets bound.
    """

    seq: int = -1
    ids: int = -1

    kind = "send"


@dataclass(frozen=True)
class DeliverRecord(_MessageRecord):
    """A handled delivery (the recipient's handler ran)."""

    seq: int = -1

    kind = "deliver"

    def tag(self) -> str:
        return self.msg  # legacy deliveries used the bare type name


@dataclass(frozen=True)
class DropRecord(_MessageRecord):
    """One lost transmission attempt, absorbed by the retransmit layer.

    ``seq`` is the sequence number of the logical send whose attempt was
    lost (the envelope that eventually delivers, late).
    """

    seq: int = -1

    kind = "drop"


@dataclass(frozen=True)
class DupRecord(_MessageRecord):
    """A network-injected duplicate copy, logged at send time.

    ``seq`` is the duplicate envelope's *own* sequence number: together
    with :class:`SendRecord` this makes every delivered envelope's
    origin addressable, duplicate copies included.
    """

    seq: int = -1

    kind = "dup"


@dataclass(frozen=True)
class DupSuppressedRecord(_MessageRecord):
    """An arrival discarded by the recipient's seen-window."""

    seq: int = -1

    kind = "dup-suppressed"


@dataclass(frozen=True)
class DeadDropRecord(_MessageRecord):
    """An arrival at a dead (departed or crashed) recipient."""

    seq: int = -1

    kind = "dead"


@dataclass(frozen=True)
class CrashRecord(LogRecord):
    """A silent crash-during-heal: ``src`` is the victim."""

    kind = "crash"

    def tag(self) -> str:
        return "crash"

    @property
    def victim(self) -> int:
        return self.src


@dataclass(frozen=True)
class ControlRecord(LogRecord):
    """A control-plane transition (lease grant/defer/resume/release,
    escalation, repair pass) interleaved on the delivery timeline.

    ``heal`` holds the entry's ``ref`` — a kernel heal id for
    post-injection tags (``lease-grant``/``lease-release``), an
    admission-layer event id for pre-injection ones (``lease-defer``/
    ``lease-resume``/``lease-escalate-*``); the tag names which id
    space applies (see :meth:`AsyncNetwork.log_control`).
    """

    ctl: str = ""

    kind = "control"

    def tag(self) -> str:
        return self.ctl

    @property
    def ref(self) -> int:
        return self.heal


#: Everything :func:`decode_record` can produce, by kind string.
RECORD_TYPES: Dict[str, Type[LogRecord]] = {
    cls.kind: cls
    for cls in (
        SendRecord,
        DeliverRecord,
        DropRecord,
        DupRecord,
        DupSuppressedRecord,
        DeadDropRecord,
        CrashRecord,
        ControlRecord,
    )
}

RawRecord = Union[LogRecord, Tuple[float, int, int, int, int, str]]


def decode_record(row: RawRecord) -> LogRecord:
    """Decode one event-log entry — typed records pass through, legacy
    positional 6-tuples decode losslessly by tag convention.

    The legacy disambiguation rules are exactly the ones consumers used
    to hard-code: prefixed tags (``drop:``/``dup:``/…) are fault-plane
    rows, ``"crash"`` with ``dst == -1`` is a crash, a row with all of
    depth/src/dst ``== -1`` is a control entry, and anything else is a
    delivery tagged with the bare message type name.
    """
    if isinstance(row, LogRecord):
        return row
    if not isinstance(row, (tuple, list)) or len(row) != 6:
        raise ValueError(f"not an event-log record: {row!r}")
    t, heal, depth, src, dst, tag = row
    if not isinstance(tag, str):
        raise ValueError(f"event-log tag must be a string: {row!r}")
    head, _, rest = tag.partition(":")
    if rest and head in _PREFIXED:
        cls = RECORD_TYPES[head]  # prefix == kind for every fault row
        return cls(t, heal, depth, src, dst, msg=rest)  # type: ignore[call-arg]
    if tag == "crash" and depth == -1 and dst == -1:
        return CrashRecord(t, heal, depth, src, dst)
    if depth == -1 and src == -1 and dst == -1:
        return ControlRecord(t, heal, depth, src, dst, ctl=tag)
    return DeliverRecord(t, heal, depth, src, dst, msg=tag)


def decode_log(rows: Iterable[RawRecord]) -> List[LogRecord]:
    """Decode a whole event log (typed records and legacy tuples mix)."""
    return [decode_record(row) for row in rows]


def record_from_dict(d: Dict[str, object]) -> LogRecord:
    """Rebuild a record from its :meth:`LogRecord.to_dict` form."""
    if d.get("v") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported log schema version {d.get('v')!r} "
            f"(this reader speaks v{SCHEMA_VERSION})"
        )
    kind = d.get("kind")
    cls = RECORD_TYPES.get(kind) if isinstance(kind, str) else None
    if cls is None:
        raise ValueError(f"unknown record kind {kind!r}")
    kwargs = {
        f.name: d[f.name] for f in fields(cls) if f.name in d
    }
    missing = {f.name for f in fields(cls)} - set(kwargs)
    if missing:
        raise ValueError(f"record missing fields {sorted(missing)}: {d!r}")
    return cls(**kwargs)  # type: ignore[arg-type]


def write_jsonl(records: Iterable[RawRecord], path: str) -> int:
    """Export a log as versioned JSONL; returns the line count."""
    n = 0
    with open(path, "w") as fh:
        for row in records:
            fh.write(json.dumps(decode_record(row).to_dict()))
            fh.write("\n")
            n += 1
    return n


def load_jsonl(path: str) -> Iterator[LogRecord]:
    """Stream records back from a :func:`write_jsonl` export."""
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield record_from_dict(json.loads(line))


# ---------------------------------------------------------------------------
# HealReport deltas — the oracle-side telemetry the certificates consume.
# ---------------------------------------------------------------------------

def _norm(u: int, v: int) -> Tuple[int, int]:
    return (u, v) if u <= v else (v, u)


@dataclass(frozen=True)
class HealDelta:
    """The exported summary of one oracle event, as the auditor sees it.

    Extracted from a :class:`~repro.core.events.HealReport` by duck
    typing (this module never imports the engines): what kind of event,
    which ids it named, and every edge it touched — the *net* adds and
    removals plus every transient mid-heal edge from the raw event
    stream, which is exactly the universe the locality certificate
    replays.  ``region`` is every node the oracle named (edge endpoints,
    victim, joiners): heal-introduced traffic must stay inside it.
    """

    kind: str  # "delete" | "insert"
    victim: int = -1
    joiners: Tuple[Tuple[int, int], ...] = ()
    added: Tuple[Tuple[int, int], ...] = ()
    removed: Tuple[Tuple[int, int], ...] = ()
    touched: Tuple[Tuple[int, int], ...] = ()

    @functools.cached_property
    def region(self) -> frozenset:
        # cached_property writes straight into __dict__, which a frozen
        # (non-slots) dataclass still has — the auditor reads this on
        # every exclusion/locality pass.
        nodes = set()
        for u, v in self.touched:
            nodes.add(u)
            nodes.add(v)
        if self.victim >= 0:
            nodes.add(self.victim)
        for nid, attach_to in self.joiners:
            nodes.add(nid)
            nodes.add(attach_to)
        return frozenset(nodes)

    @classmethod
    def from_report(cls, report) -> "HealDelta":
        """Extract the delta from a heal report (duck-typed)."""
        touched = set()
        for u, v in report.edges_added:
            touched.add(_norm(u, v))
        for u, v in report.edges_removed:
            touched.add(_norm(u, v))
        for event in report.events:
            u = getattr(event, "u", None)
            v = getattr(event, "v", None)
            if isinstance(u, int) and isinstance(v, int):
                touched.add(_norm(u, v))
        added, removed = report.net_edge_deltas()
        joiners: Tuple[Tuple[int, int], ...] = ()
        if report.inserted_batch:
            joiners = tuple(report.inserted_batch)
        elif report.inserted is not None and report.attached_to is not None:
            joiners = ((report.inserted, report.attached_to),)
        return cls(
            kind="insert" if report.is_insertion else "delete",
            victim=report.deleted if report.deleted >= 0 else -1,
            joiners=joiners,
            added=tuple(sorted(_norm(u, v) for u, v in added)),
            removed=tuple(sorted(_norm(u, v) for u, v in removed)),
            touched=tuple(sorted(touched)),
        )


def normalize_edges(graph_or_edges) -> frozenset:
    """Normalize an adjacency mapping or edge iterable to ``u <= v``
    pairs (the locality certificate's initial-overlay input)."""
    edges = set()
    if hasattr(graph_or_edges, "items"):
        for u, vs in graph_or_edges.items():
            for v in vs:
                edges.add(_norm(u, v))
    else:
        for u, v in graph_or_edges:
            edges.add(_norm(u, v))
    return frozenset(edges)
