"""Per-heal certificates checked from exported telemetry alone.

:func:`certify_campaign` re-proves the protocol guarantees the mirror
normally vouches for, using only what a campaign exports — the typed
causal event log, per-heal :class:`HealStats` tallies, control-track
entries, oracle :class:`~repro.audit.schema.HealDelta` summaries and
the campaign :class:`FaultSummary`.  It imports nothing from the
kernel, the engines, or the mirror; every input is duck-typed.

Five certificate classes (:data:`CERTIFICATE_KINDS`):

``budget``
    Message budgets.  FT: per-node sends stay under the Theorem 1.3
    constant (scaled by wave size for batch inserts) and every message
    carries at most :attr:`AuditParams.ft_msg_ids` node ids.  FG: every
    message's id count stays under the manifest budget
    ``fg_id_base + fg_ids_per_node · |alive|`` — the honest O(L)
    deviation (docs/FORGIVING_GRAPH.md) made checkable.
``locality``
    Every payload travels a current-overlay or heal-introduced edge —
    the overlay universe is reconstructed by replaying the oracle edge
    deltas in order — or stays inside the heal's own region (the nodes
    its delta names; FG report/portion traffic is coordinator-direct by
    design, the documented deviation).
``exclusion``
    Lease mutual exclusion: heals whose control-track
    ``lease-grant``/``lease-release`` intervals overlap in virtual time
    must have disjoint *write regions* (the nodes their oracle delta
    names).  Read-only bystanders — will/weight refresh recipients
    whose adjacency arose between a heal's admission and its deferred
    injection — may be shared.
``causality``
    Happens-before well-formedness: the log's clock is monotone, every
    arrival (delivery, suppressed duplicate, dead drop) matches an
    earlier send/dup record with the same envelope sequence, endpoints
    and message type, per-heal delivery layers are monotone, and every
    delivery lands inside the heal's ``[injected_at, quiesced_at]``
    window.
``accounting``
    Fault accounting: drop records == retransmissions == the heal's
    ``dropped`` tally, dup records == ``duplicated``, suppressed
    arrivals == ``dup_suppressed``, dead arrivals == ``dead_drops``,
    per-node send/receive counts match the kernel's ``sent`` /
    ``received`` dicts node-for-node, and the campaign totals match the
    :class:`FaultSummary`.

Violations name the certificate, the heal, and the event-id window
(indices into the log) so the flight recorder and a human land on the
offending records directly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.errors import ReproError
from .schema import (
    ControlRecord,
    HealDelta,
    LogRecord,
    RawRecord,
    SendRecord,
    decode_record,
    normalize_edges,
)

#: The certificate classes, in reporting order.
CERTIFICATE_KINDS = ("budget", "locality", "exclusion", "causality", "accounting")

_ARRIVAL_KINDS = ("deliver", "dup-suppressed", "dead")


class AuditError(ReproError):
    """A certificate failed: the log contradicts a proven guarantee."""


@dataclass(frozen=True)
class AuditParams:
    """The checkable constants behind the certificates.

    ``ft_node_budget`` is the Theorem 1.3 envelope: no node sends more
    than this many messages per delete heal (the measured worst across
    the committed benchmarks is 4; 12 leaves headroom for generalized
    branching without ever scaling in n).  Batch-insert waves scale it
    by the wave size — each joiner runs its own O(1) handshake.
    ``ft_msg_ids`` is the FT word budget: no message names more than 8
    node ids (``WillPortionMsg`` is the widest).  The FG manifest
    budget is ``fg_id_base + fg_ids_per_node · |alive|`` — manifests
    enumerate region members, and a region can never exceed the alive
    node set the delta replay tracks.
    """

    ft_node_budget: int = 12
    ft_msg_ids: int = 8
    fg_id_base: int = 6
    fg_ids_per_node: int = 2
    clock_eps: float = 1e-6


@dataclass(frozen=True)
class Violation:
    """One certificate failure, pinned to its evidence.

    ``window`` is the inclusive ``(first, last)`` event-log index range
    implicated — the slice to replay, dump, or hand the flight
    recorder.  ``heal`` is the kernel heal id (``-1`` for campaign-wide
    checks such as global clock monotonicity or the fault-summary
    cross-check).
    """

    cert: str
    heal: int
    window: Tuple[int, int]
    detail: str

    def __str__(self) -> str:
        where = f"heal {self.heal}" if self.heal >= 0 else "campaign"
        return (
            f"[{self.cert}] {where} events {self.window[0]}..{self.window[1]}: "
            f"{self.detail}"
        )


@dataclass
class HealCertificate:
    """The audit verdict for one heal."""

    heal: int
    label: str
    checked: Tuple[str, ...] = ()
    skipped: Tuple[str, ...] = ()
    violations: List[Violation] = field(default_factory=list)
    window: Tuple[int, int] = (-1, -1)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class AuditReport:
    """Everything :func:`certify_campaign` proved (or could not).

    ``campaign_violations`` are the checks that belong to no single heal
    (clock monotonicity, lease overlap pairs, fault-summary totals);
    per-heal failures live on their :class:`HealCertificate`.
    """

    protocol: str
    certificates: List[HealCertificate] = field(default_factory=list)
    campaign_violations: List[Violation] = field(default_factory=list)
    records: int = 0

    @property
    def violations(self) -> List[Violation]:
        out = list(self.campaign_violations)
        for cert in self.certificates:
            out.extend(cert.violations)
        return out

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> Dict[str, object]:
        by_cert: Counter = Counter(v.cert for v in self.violations)
        checked: Counter = Counter()
        for cert in self.certificates:
            checked.update(cert.checked)
        return {
            "ok": self.ok,
            "protocol": self.protocol,
            "records": self.records,
            "heals": len(self.certificates),
            "checks": dict(checked),
            "violations": len(self.violations),
            "violations_by_cert": dict(by_cert),
            "first_violation": str(self.violations[0]) if self.violations else None,
        }

    def raise_on_violation(self) -> "AuditReport":
        if not self.ok:
            head = [str(v) for v in self.violations[:5]]
            more = len(self.violations) - len(head)
            if more > 0:
                head.append(f"... and {more} more")
            raise AuditError(
                "audit certificates failed "
                f"({len(self.violations)} violation(s)):\n  " + "\n  ".join(head)
            )
        return self


@dataclass
class AuditInputs:
    """One campaign's exported telemetry, bundled for (re-)certification.

    The harness builds this after the final barrier; the mutation
    self-test (:mod:`repro.audit.mutate`) re-certifies corrupted copies
    of ``records`` against the same sidecar telemetry to prove each
    certificate class actually bites.
    """

    records: Sequence[RawRecord]
    heal_stats: Sequence
    deltas: Sequence[HealDelta] = ()
    initial_edges: frozenset = frozenset()
    protocol: str = "ft"
    fault_summary: object = None
    params: Optional[AuditParams] = None

    def certify(self, records: Optional[Sequence[RawRecord]] = None) -> AuditReport:
        """Run the certificates — over ``records`` if given (the
        mutation hook), else over the campaign's own log."""
        return certify_campaign(
            self.records if records is None else records,
            self.heal_stats,
            deltas=self.deltas,
            initial_edges=self.initial_edges,
            protocol=self.protocol,
            fault_summary=self.fault_summary,
            params=self.params,
        )


def _delta_key(delta: HealDelta) -> Optional[str]:
    """The heal label a delta should match (labels embed the unique id)."""
    if delta.kind == "delete" and delta.victim >= 0:
        return f"delete-{delta.victim}"
    if delta.kind == "insert" and delta.joiners:
        return f"insert-{delta.joiners[0][0]}"
    return None


def certify_campaign(
    records: Sequence[RawRecord],
    heal_stats: Sequence,
    deltas: Sequence[HealDelta] = (),
    initial_edges: Iterable = (),
    protocol: str = "ft",
    fault_summary=None,
    params: Optional[AuditParams] = None,
) -> AuditReport:
    """Check every certificate over one campaign's exported telemetry.

    ``heal_stats`` are the kernel's per-heal tallies (duck-typed
    ``HealStats``: ``hid``/``label``/``sent``/``received`` plus the
    fault fields), ``deltas`` the oracle's :class:`HealDelta` summaries
    in oracle-event order, ``initial_edges`` the overlay before the
    first event.  Setup heals (label ``round-*``) and heals without a
    matching delta (crash catch-up replays) keep their causality and
    accounting certificates but skip budget/locality — there is no
    oracle region to check against.
    """
    params = params or AuditParams()
    report = AuditReport(protocol=protocol)

    # One fused linear pass: decode, campaign-wide clock monotonicity,
    # and bucketing by heal (control rows feed exclusion).  Certification
    # rides every audited campaign, so this pass is the auditor's hot
    # loop — see EXP-AUDIT-OVERHEAD.
    log: List[LogRecord] = [
        row if isinstance(row, LogRecord) else decode_record(row)
        for row in records
    ]
    by_heal: Dict[int, List[Tuple[int, LogRecord]]] = {}
    controls: List[Tuple[int, ControlRecord]] = []
    crashed_hids: Set[int] = set()
    # Per-heal accounting tallies (kind counts, sends/receives per node)
    # accumulate here so _check_accounting never re-walks the records.
    tallies: Dict[int, _Tally] = {}
    regression = params.clock_eps
    prev_t = float("-inf")
    for i, rec in enumerate(log):
        if rec.t < prev_t - regression:
            report.campaign_violations.append(
                Violation(
                    "causality",
                    -1,
                    (i - 1, i),
                    f"clock regressed {prev_t} -> {rec.t}",
                )
            )
        prev_t = rec.t
        kind = rec.kind
        if kind == "control":
            controls.append((i, rec))
            continue
        hid = rec.heal
        if kind == "crash":
            crashed_hids.add(hid)
        bucket = by_heal.get(hid)
        if bucket is None:
            bucket = by_heal[hid] = []
            tally = tallies[hid] = _Tally()
        else:
            tally = tallies[hid]
        bucket.append((i, rec))
        kinds = tally.kinds
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind == "send":
            per = tally.sends_per_node
            per[rec.src] = per.get(rec.src, 0) + 1
        elif kind == "deliver":
            per = tally.recv_per_node
            per[rec.dst] = per.get(rec.dst, 0) + 1
    report.records = len(log)

    # Match heals to oracle deltas by label (ids are never reused, so
    # delete-<victim> / insert-<first joiner> labels are unique).
    delta_index: Dict[str, int] = {}
    for i, delta in enumerate(deltas):
        key = _delta_key(delta)
        if key is not None and key not in delta_index:
            delta_index[key] = i

    stats_by_hid = {s.hid: s for s in heal_stats}

    # Replay the oracle deltas once: the cumulative edge universe and
    # alive-node count at every delta index (locality + FG budget).
    alive: Set[int] = set()
    for u, v in normalize_edges(initial_edges):
        alive.add(u)
        alive.add(v)
    universe: Set[Tuple[int, int]] = set(normalize_edges(initial_edges))
    # Heals are certified in delta order so the universe can grow
    # incrementally; collect (delta_idx, hid) pairs first.
    ordered: List[Tuple[int, int]] = []
    certificates: Dict[int, HealCertificate] = {}

    for stats in heal_stats:
        hid = stats.hid
        recs = by_heal.get(hid, [])
        window = (recs[0][0], recs[-1][0]) if recs else (-1, -1)
        cert = HealCertificate(heal=hid, label=stats.label, window=window)
        certificates[hid] = cert
        checked: List[str] = []
        skipped: List[str] = []

        is_setup = stats.label.startswith("round-")
        didx = delta_index.get(stats.label)
        if is_setup or didx is None:
            skipped.extend(["budget", "locality"])
        else:
            ordered.append((didx, hid))

        _check_causality(cert, recs, stats, params, hid in crashed_hids)
        checked.append("causality")
        _check_accounting(cert, tallies.get(hid) or _Tally(), stats)
        checked.append("accounting")
        cert.checked = tuple(checked)
        cert.skipped = tuple(skipped)

    # Budget + locality, replaying deltas in oracle order.
    ordered.sort()
    next_delta = 0
    for didx, hid in ordered:
        while next_delta <= didx and next_delta < len(deltas):
            d = deltas[next_delta]
            universe.update(d.touched)
            if d.kind == "delete" and d.victim >= 0:
                alive.discard(d.victim)
            else:
                for nid, _ in d.joiners:
                    alive.add(nid)
            next_delta += 1
        cert = certificates[hid]
        delta = deltas[didx]
        recs = by_heal.get(hid, [])
        _check_budget(cert, recs, delta, protocol, len(alive), params)
        _check_locality(cert, recs, delta, universe)
        cert.checked = cert.checked + ("budget", "locality")

    _check_exclusion(report, certificates, controls, by_heal, deltas, delta_index, stats_by_hid)
    _check_fault_summary(report, log, fault_summary)

    report.certificates = [certificates[s.hid] for s in heal_stats]
    return report


# ---------------------------------------------------------------------------
# Individual certificates.
# ---------------------------------------------------------------------------

def _check_causality(
    cert: HealCertificate,
    recs: List[Tuple[int, LogRecord]],
    stats,
    params: AuditParams,
    crashed: bool,
) -> None:
    hid = cert.heal
    eps = params.clock_eps
    # Delivery window bounds.  Crash-corrupted heals are finalized by
    # the recovery path, not by quiescence, so the upper bound is not
    # meaningful there.
    t0 = stats.injected_at - eps
    t1 = stats.quiesced_at + eps
    closed = stats.quiesced_at >= stats.injected_at and not crashed

    # One pass over the heal's records (this function rides every
    # audited campaign — see EXP-AUDIT-OVERHEAD).  Sends and dups are
    # logged at send time, so every arrival's origin record precedes it
    # in the stream and ``origins`` accumulates as the loop walks.
    # Arrival-matching violations are held back until the pass proves
    # the log has send records at all (legacy tuple logs are
    # arrival-only, and matching is then vacuous, not violated).
    origins: Dict[int, Tuple[int, LogRecord]] = {}
    have_sends = False
    pending: List[Violation] = []
    last_depth = -1
    last_idx = -1
    for i, rec in recs:
        kind = rec.kind
        if kind == "send" or kind == "dup":
            if rec.seq >= 0:
                origins[rec.seq] = (i, rec)
                have_sends = have_sends or kind == "send"
            continue
        if kind == "deliver":
            # Delivery layers are monotone: the kernel may not hand
            # layer d+1 to a handler while layer d is still undelivered.
            if rec.depth < last_depth:
                cert.violations.append(
                    Violation(
                        "causality",
                        hid,
                        (last_idx, i),
                        f"layer regressed {last_depth} -> {rec.depth}",
                    )
                )
            last_depth, last_idx = rec.depth, i
            # Deliveries land inside the injection..quiescence window.
            if rec.t < t0 or (closed and rec.t > t1):
                cert.violations.append(
                    Violation(
                        "causality", hid, (i, i),
                        f"delivery at {rec.t} outside heal window "
                        f"[{stats.injected_at}, {stats.quiesced_at}]",
                    )
                )
        elif kind not in _ARRIVAL_KINDS:
            continue
        if rec.seq < 0:
            continue
        origin = origins.get(rec.seq)
        if origin is None:
            pending.append(
                Violation(
                    "causality", hid, (i, i),
                    f"{kind} of seq {rec.seq} has no send record",
                )
            )
            continue
        oi, orec = origin
        if orec.src != rec.src or orec.dst != rec.dst or orec.msg != rec.msg:
            pending.append(
                Violation(
                    "causality", hid, (oi, i),
                    f"arrival {rec.src}->{rec.dst} {rec.msg} does not match "
                    f"its send {orec.src}->{orec.dst} {orec.msg} (seq {rec.seq})",
                )
            )
        if rec.t < orec.t - eps:
            pending.append(
                Violation(
                    "causality", hid, (oi, i),
                    f"deliver-before-send: seq {rec.seq} arrived at {rec.t} "
                    f"but was sent at {orec.t}",
                )
            )
    if have_sends:
        cert.violations.extend(pending)


class _Tally:
    """One heal's accounting counters, filled by the fused log pass."""

    __slots__ = ("kinds", "sends_per_node", "recv_per_node")

    def __init__(self) -> None:
        self.kinds: Dict[str, int] = {}
        self.sends_per_node: Dict[int, int] = {}
        self.recv_per_node: Dict[int, int] = {}


def _check_accounting(
    cert: HealCertificate,
    tally: _Tally,
    stats,
) -> None:
    hid = cert.heal
    window = cert.window
    kinds = tally.kinds
    sends_per_node = tally.sends_per_node
    recv_per_node = tally.recv_per_node
    have_sends = bool(sends_per_node)

    def mismatch(what: str, got: int, want: int) -> None:
        cert.violations.append(
            Violation(
                "accounting", hid, window,
                f"{what}: log says {got}, kernel tallies say {want}",
            )
        )

    drops = kinds.get("drop", 0)
    if drops != stats.dropped:
        mismatch("drops", drops, stats.dropped)
    retrans = sum(stats.retransmitted.values())
    if drops != retrans:
        mismatch("retransmissions != drops", drops, retrans)
    if kinds.get("dup", 0) != stats.duplicated:
        mismatch("duplicates", kinds.get("dup", 0), stats.duplicated)
    if kinds.get("dup-suppressed", 0) != stats.dup_suppressed:
        mismatch(
            "dup_suppressed", kinds.get("dup-suppressed", 0),
            stats.dup_suppressed,
        )
    if kinds.get("dead", 0) != stats.dead_drops:
        mismatch("dead_drops", kinds.get("dead", 0), stats.dead_drops)
    if recv_per_node != {n: c for n, c in stats.received.items() if c}:
        mismatch("received per node", sum(recv_per_node.values()),
                 sum(stats.received.values()))
    if have_sends and sends_per_node != {n: c for n, c in stats.sent.items() if c}:
        mismatch("sent per node", sum(sends_per_node.values()),
                 sum(stats.sent.values()))


def _check_budget(
    cert: HealCertificate,
    recs: List[Tuple[int, LogRecord]],
    delta: HealDelta,
    protocol: str,
    alive_count: int,
    params: AuditParams,
) -> None:
    hid = cert.heal
    sends = [(i, rec) for i, rec in recs if isinstance(rec, SendRecord)]
    if not sends:
        return  # legacy log: no send records to bound
    if protocol == "ft":
        wave = max(1, len(delta.joiners)) if delta.kind == "insert" else 1
        budget = params.ft_node_budget * wave
        per_node: Counter = Counter(rec.src for _, rec in sends)
        for node, count in sorted(per_node.items()):
            if count > budget:
                idxs = [i for i, rec in sends if rec.src == node]
                cert.violations.append(
                    Violation(
                        "budget", hid, (idxs[0], idxs[-1]),
                        f"node {node} sent {count} messages "
                        f"(Theorem 1.3 budget {budget})",
                    )
                )
        id_budget = params.ft_msg_ids
    else:
        id_budget = params.fg_id_base + params.fg_ids_per_node * alive_count
    for i, rec in sends:
        if rec.ids >= 0 and rec.ids > id_budget:
            cert.violations.append(
                Violation(
                    "budget", hid, (i, i),
                    f"{rec.msg} {rec.src}->{rec.dst} carries {rec.ids} ids "
                    f"(budget {id_budget})",
                )
            )


def _check_locality(
    cert: HealCertificate,
    recs: List[Tuple[int, LogRecord]],
    delta: HealDelta,
    universe: Set[Tuple[int, int]],
) -> None:
    hid = cert.heal
    region = delta.region
    payloads = [(i, rec) for i, rec in recs if rec.kind == "send"]
    if not payloads:  # legacy log: fall back to the delivery mirror
        payloads = [(i, rec) for i, rec in recs if rec.kind == "deliver"]
    for i, rec in payloads:
        edge = (rec.src, rec.dst) if rec.src <= rec.dst else (rec.dst, rec.src)
        if edge in universe:
            continue
        if rec.src in region and rec.dst in region:
            continue  # intra-region traffic (FG coordinator-direct, FT relays)
        cert.violations.append(
            Violation(
                "locality", hid, (i, i),
                f"{rec.msg} {rec.src}->{rec.dst} rides no overlay or "
                f"heal-introduced edge and leaves the heal region",
            )
        )


def _check_exclusion(
    report: AuditReport,
    certificates: Dict[int, HealCertificate],
    controls: List[Tuple[int, ControlRecord]],
    by_heal: Dict[int, List[Tuple[int, LogRecord]]],
    deltas: Sequence[HealDelta],
    delta_index: Dict[str, int],
    stats_by_hid: Dict[int, object],
) -> None:
    grants: Dict[int, Tuple[int, float]] = {}
    intervals: Dict[int, Tuple[float, float, int, int]] = {}  # hid -> (g, r, gi, ri)
    for i, rec in controls:
        if rec.ctl == "lease-grant":
            grants[rec.ref] = (i, rec.t)
        elif rec.ctl == "lease-release" and rec.ref in grants:
            gi, gt = grants.pop(rec.ref)
            intervals[rec.ref] = (gt, rec.t, gi, i)
    # A heal granted but never released holds its leases to the end.
    for hid, (gi, gt) in grants.items():
        intervals[hid] = (gt, float("inf"), gi, gi)
    if not intervals:
        return  # not a lease campaign

    def write_region(hid: int) -> Set[int]:
        # The exclusion guarantee is *write* exclusion: concurrently
        # granted heals hold disjoint structural regions (the nodes
        # their oracle delta names).  Message endpoints are deliberately
        # NOT included — a node can legitimately receive will/weight
        # refreshes from two concurrent heals when its adjacency arose
        # between a heal's admission and its (deferred) injection; those
        # are read-only bystanders, outside the leased footprint.
        stats = stats_by_hid.get(hid)
        if stats is not None:
            didx = delta_index.get(stats.label)
            if didx is not None:
                return set(deltas[didx].region)
        return set()

    parts = {hid: write_region(hid) for hid in intervals}
    hids = sorted(intervals)
    for a_pos, a in enumerate(hids):
        ga, ra, gia, _ = intervals[a]
        for b in hids[a_pos + 1:]:
            gb, rb, gib, _ = intervals[b]
            if ga < rb and gb < ra:  # strict overlap in virtual time
                shared = parts[a] & parts[b]
                if shared:
                    violation = Violation(
                        "exclusion",
                        b,
                        (min(gia, gib), max(gia, gib)),
                        f"heals {a} and {b} held overlapping lease intervals "
                        f"but their write regions share nodes "
                        f"{sorted(shared)[:8]}",
                    )
                    target = certificates.get(b) or certificates.get(a)
                    if target is not None:
                        target.violations.append(violation)
                    else:
                        report.campaign_violations.append(violation)
    for hid in hids:
        cert = certificates.get(hid)
        if cert is not None and "exclusion" not in cert.checked:
            cert.checked = cert.checked + ("exclusion",)


def _check_fault_summary(
    report: AuditReport, log: List[LogRecord], fault_summary
) -> None:
    if fault_summary is None:
        return
    kinds = Counter(rec.kind for rec in log)
    window = (0, max(len(log) - 1, 0))
    for what, got, want in (
        ("drops", kinds["drop"], fault_summary.drops),
        ("retransmissions", kinds["drop"], fault_summary.retransmissions),
        ("duplicates", kinds["dup"], fault_summary.duplicates),
        ("dup_suppressed", kinds["dup-suppressed"], fault_summary.dup_suppressed),
        ("dead_drops", kinds["dead"], fault_summary.dead_drops),
        ("crashes", kinds["crash"], fault_summary.crashes),
    ):
        if got != want:
            report.campaign_violations.append(
                Violation(
                    "accounting", -1, window,
                    f"campaign {what}: log says {got}, FaultSummary says {want}",
                )
            )
