"""Composable streaming queries over the typed causal event log.

:class:`LogQuery` wraps any iterable of records (a live
``AsyncNetwork.event_log``, a :func:`~repro.audit.schema.load_jsonl`
stream, a legacy tuple list) and exposes lazy, chainable operators —
``filter`` / ``join`` / ``group_by`` / ``window`` — that never hold more
of the log in memory than the operator semantically requires.  The
canned reports the CLI exposes (:func:`heal_flows`,
:func:`link_table`, :func:`queue_timeline`) are built from the same
operators; nothing here knows how the log was produced.

CLI::

    python -m repro.audit.query flows  log.jsonl [--heal HID]
    python -m repro.audit.query links  log.jsonl [--top N]
    python -m repro.audit.query queues log.jsonl [--bucket DT]

where ``log.jsonl`` is a :func:`repro.audit.schema.write_jsonl` export
(``TransportSummary.event_log`` round-trips through it losslessly).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import OrderedDict
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from .schema import (
    ControlRecord,
    CrashRecord,
    DeliverRecord,
    LogRecord,
    RawRecord,
    SendRecord,
    decode_record,
    load_jsonl,
)


class LogQuery:
    """A lazy pipeline of record operators.

    Every operator returns a new :class:`LogQuery`; the source is only
    consumed when the query is iterated (or collected by a terminal —
    ``count`` / ``to_list`` / ``group_by``).  A query is single-shot,
    like the generator it wraps: build a fresh one per pass, or pass a
    re-iterable (a list) as the source.
    """

    def __init__(self, source: Iterable[RawRecord]):
        self._source = source

    def __iter__(self) -> Iterator[LogRecord]:
        for row in self._source:
            yield decode_record(row)

    # -- transforms ---------------------------------------------------

    def filter(self, pred: Callable[[LogRecord], bool]) -> "LogQuery":
        """Keep records satisfying ``pred``."""
        return LogQuery(r for r in self if pred(r))

    def kind(self, *kinds: str) -> "LogQuery":
        """Keep records whose ``kind`` is one of ``kinds``."""
        wanted = frozenset(kinds)
        return self.filter(lambda r: r.kind in wanted)

    def heal(self, hid: int) -> "LogQuery":
        """Keep records belonging to kernel heal ``hid``."""
        return self.filter(lambda r: r.heal == hid)

    def between(self, t0: float, t1: float) -> "LogQuery":
        """Keep records with ``t0 <= t <= t1``."""
        return self.filter(lambda r: t0 <= r.t <= t1)

    def join(
        self,
        other: Iterable[RawRecord],
        key: Callable[[LogRecord], object],
        other_key: Optional[Callable[[LogRecord], object]] = None,
    ) -> Iterator[Tuple[LogRecord, LogRecord]]:
        """Hash-join: pairs ``(left, right)`` where the keys match.

        ``other`` is materialized into the hash side (it is usually the
        smaller stream — e.g. sends joined against deliveries); the
        left side streams.  A left record matching several right
        records yields one pair per match, in right-stream order.
        """
        other_key = other_key or key
        table: Dict[object, List[LogRecord]] = {}
        for row in other:
            rec = decode_record(row)
            table.setdefault(other_key(rec), []).append(rec)
        for left in self:
            for right in table.get(key(left), ()):
                yield (left, right)

    def group_by(
        self, key: Callable[[LogRecord], object]
    ) -> "OrderedDict[object, List[LogRecord]]":
        """Terminal: buckets in first-seen key order."""
        groups: "OrderedDict[object, List[LogRecord]]" = OrderedDict()
        for rec in self:
            groups.setdefault(key(rec), []).append(rec)
        return groups

    def window(
        self, dt: float, origin: float = 0.0
    ) -> Iterator[Tuple[float, List[LogRecord]]]:
        """Tumbling time windows of width ``dt``, yielded as
        ``(window_start, records)`` as each window closes.

        Requires the stream to be time-ordered (the kernel log is);
        only the open window is buffered.
        """
        if dt <= 0:
            raise ValueError(f"window width must be positive, got {dt}")
        cur_start: Optional[float] = None
        bucket: List[LogRecord] = []
        for rec in self:
            start = origin + ((rec.t - origin) // dt) * dt
            if cur_start is None:
                cur_start = start
            while start > cur_start:
                yield (cur_start, bucket)
                bucket = []
                cur_start += dt
            bucket.append(rec)
        if cur_start is not None:
            yield (cur_start, bucket)

    # -- terminals ----------------------------------------------------

    def count(self) -> int:
        return sum(1 for _ in self)

    def to_list(self) -> List[LogRecord]:
        return list(self)


# ---------------------------------------------------------------------------
# Canned reports (the CLI surface).
# ---------------------------------------------------------------------------

def heal_flows(
    records: Iterable[RawRecord], hid: Optional[int] = None
) -> "OrderedDict[int, Dict[str, object]]":
    """Per-heal message flow: for each heal id, the message-type mix,
    the causal-layer span, and the fault counts — the shape Figure-style
    per-heal narratives are written from."""
    flows: "OrderedDict[int, Dict[str, object]]" = OrderedDict()
    for rec in LogQuery(records):
        if isinstance(rec, (ControlRecord,)):
            continue
        if hid is not None and rec.heal != hid:
            continue
        f = flows.setdefault(
            rec.heal,
            {
                "heal": rec.heal,
                "t_first": rec.t,
                "t_last": rec.t,
                "layers": 0,
                "sends": 0,
                "delivers": 0,
                "drops": 0,
                "dups": 0,
                "dup_suppressed": 0,
                "dead": 0,
                "crashes": 0,
                "msgs": {},
            },
        )
        f["t_first"] = min(f["t_first"], rec.t)
        f["t_last"] = max(f["t_last"], rec.t)
        if rec.depth >= 0:
            f["layers"] = max(f["layers"], rec.depth + 1)
        counter = {
            "send": "sends",
            "deliver": "delivers",
            "drop": "drops",
            "dup": "dups",
            "dup-suppressed": "dup_suppressed",
            "dead": "dead",
            "crash": "crashes",
        }.get(rec.kind)
        if counter:
            f[counter] += 1
        if rec.kind == "deliver":
            msgs: Dict[str, int] = f["msgs"]  # type: ignore[assignment]
            msgs[rec.msg] = msgs.get(rec.msg, 0) + 1
    return flows


def link_table(
    records: Iterable[RawRecord], top: Optional[int] = None
) -> List[Dict[str, object]]:
    """Per-link traffic: delivered / dropped / duplicated counts per
    directed ``src -> dst`` pair, hottest links first."""
    links: Dict[Tuple[int, int], Dict[str, object]] = {}
    for rec in LogQuery(records).kind("deliver", "drop", "dup", "dup-suppressed", "dead"):
        row = links.setdefault(
            (rec.src, rec.dst),
            {"src": rec.src, "dst": rec.dst, "delivered": 0, "dropped": 0,
             "duplicated": 0, "suppressed": 0, "dead": 0, "heals": set()},
        )
        row[{
            "deliver": "delivered",
            "drop": "dropped",
            "dup": "duplicated",
            "dup-suppressed": "suppressed",
            "dead": "dead",
        }[rec.kind]] += 1
        row["heals"].add(rec.heal)  # type: ignore[union-attr]
    out = sorted(
        links.values(),
        key=lambda r: (-(r["delivered"] + r["dropped"]), r["src"], r["dst"]),  # type: ignore[operator]
    )
    for row in out:
        row["heals"] = len(row["heals"])  # type: ignore[arg-type]
    return out[:top] if top else out


def queue_timeline(
    records: Iterable[RawRecord], bucket: float = 1.0
) -> List[Dict[str, float]]:
    """In-flight message depth over time: sends (and dup injections)
    raise the depth, terminal arrivals (deliver / dup-suppressed / dead)
    lower it; sampled once per tumbling ``bucket``.  Logs predating the
    typed schema have no send records — their timeline is arrival-only
    (depth stays ≤ 0 and the per-bucket arrival counts still plot)."""
    timeline: List[Dict[str, float]] = []
    depth = 0
    for start, recs in LogQuery(records).kind(
        "send", "dup", "deliver", "dup-suppressed", "dead"
    ).window(bucket):
        entered = exited = 0
        for rec in recs:
            if rec.kind in ("send", "dup"):
                entered += 1
            else:
                exited += 1
        depth += entered - exited
        timeline.append(
            {"t": start, "entered": entered, "exited": exited, "depth": depth}
        )
    return timeline


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _emit(obj: object, as_json: bool) -> None:
    if as_json:
        json.dump(obj, sys.stdout, indent=2, default=list)
        sys.stdout.write("\n")
        return
    rows = obj if isinstance(obj, list) else list(obj.values())  # type: ignore[union-attr]
    if not rows:
        print("(no records)")
        return
    headers = [k for k in rows[0] if k != "msgs"]
    print("  ".join(f"{h:>12}" for h in headers))
    for row in rows:
        print("  ".join(f"{_fmt(row[h]):>12}" for h in headers))


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.3f}"
    return str(v)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.audit.query",
        description="Query a JSONL causal event-log export.",
    )
    parser.add_argument("report", choices=("flows", "links", "queues"))
    parser.add_argument("log", help="JSONL export (repro.audit.schema.write_jsonl)")
    parser.add_argument("--heal", type=int, default=None, help="restrict flows to one heal id")
    parser.add_argument("--top", type=int, default=None, help="hottest N links only")
    parser.add_argument("--bucket", type=float, default=1.0, help="queue timeline bucket width")
    parser.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    args = parser.parse_args(argv)

    records = load_jsonl(args.log)
    if args.report == "flows":
        _emit(heal_flows(records, hid=args.heal), args.json)
    elif args.report == "links":
        _emit(link_table(records, top=args.top), args.json)
    else:
        _emit(queue_timeline(records, bucket=args.bucket), args.json)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
