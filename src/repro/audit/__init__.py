"""audit — the independent, trace-driven correctness observer.

Everything in this package consumes **exported telemetry only** — the
kernel's typed causal event log (:mod:`repro.audit.schema`), per-heal
``HealStats`` tallies, control-track entries, and the oracle's
:class:`~repro.core.events.HealReport` *deltas* — never the oracle
mirror itself.  That independence is the point: once the clairvoyant
mirror and the centralized lease table go away (the ROADMAP's
decentralization items), the event log is the only place the papers'
guarantees can still be proven, and this package is the machinery that
proves them.

* :mod:`repro.audit.schema` — typed, versioned log records (send /
  deliver / drop / dup / dup-suppressed / dead / crash / control)
  emitted by the async kernel; legacy positional 6-tuples decode
  losslessly.
* :mod:`repro.audit.query` — composable streaming operators
  (filter / join / group / window) over log records, plus the
  ``python -m repro.audit.query`` CLI (per-heal message flows,
  per-link traffic tables, queue-depth timelines from a JSONL export).
* :mod:`repro.audit.certify` — per-heal certificates: message budgets
  (Theorem 1.3 for the FT, the manifest-id budget for the FG),
  payload locality, lease mutual exclusion, happens-before
  well-formedness, and fault accounting — recomputed from the log and
  cross-checked against the kernel tallies.
* :mod:`repro.audit.mutate` — seeded log corruptions and the mutation
  self-test proving each certificate class catches its corruption
  (``python -m repro.audit.mutate``).

Wired into campaigns through ``obs="audit"`` — see
``docs/OBSERVABILITY.md`` and :attr:`CampaignResult.audit`.
"""

from .certify import (
    CERTIFICATE_KINDS,
    AuditError,
    AuditInputs,
    AuditParams,
    AuditReport,
    HealCertificate,
    Violation,
    certify_campaign,
)
from .mutate import CORRUPTIONS, check_corruption, run_self_test
from .query import LogQuery, heal_flows, link_table, queue_timeline
from .schema import (
    SCHEMA_VERSION,
    ControlRecord,
    CrashRecord,
    DeadDropRecord,
    DeliverRecord,
    DropRecord,
    DupRecord,
    DupSuppressedRecord,
    HealDelta,
    LogRecord,
    SendRecord,
    decode_log,
    decode_record,
    load_jsonl,
    record_from_dict,
    write_jsonl,
)

__all__ = [
    "CERTIFICATE_KINDS",
    "CORRUPTIONS",
    "SCHEMA_VERSION",
    "AuditError",
    "AuditInputs",
    "AuditParams",
    "AuditReport",
    "ControlRecord",
    "CrashRecord",
    "DeadDropRecord",
    "DeliverRecord",
    "DropRecord",
    "DupRecord",
    "DupSuppressedRecord",
    "HealCertificate",
    "HealDelta",
    "LogQuery",
    "LogRecord",
    "SendRecord",
    "Violation",
    "certify_campaign",
    "check_corruption",
    "decode_log",
    "decode_record",
    "heal_flows",
    "link_table",
    "load_jsonl",
    "queue_timeline",
    "record_from_dict",
    "run_self_test",
    "write_jsonl",
]
