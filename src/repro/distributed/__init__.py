"""Distributed runtime: the message-level Forgiving Tree and setup phase."""

from .messages import (
    Deleted,
    InsertAck,
    InsertRequest,
    LeafWillMsg,
    LeafWillRetract,
    Message,
    ReplaceChild,
    SimChange,
    WillPortionMsg,
)
from .network import Network, RoundStats
from .node import LeafWill, Portion, ProtocolNode, Role
from .protocol import DistributedForgivingTree

__all__ = [
    "Deleted",
    "DistributedForgivingTree",
    "InsertAck",
    "InsertRequest",
    "LeafWill",
    "LeafWillMsg",
    "LeafWillRetract",
    "Message",
    "Network",
    "Portion",
    "ProtocolNode",
    "ReplaceChild",
    "Role",
    "RoundStats",
    "SimChange",
    "WillPortionMsg",
]
