"""The one-time setup phase (Section 1 / Section 3 of the paper).

Two tasks, both fully message-counted:

1. **Breadth-first spanning tree** of the original network, "with latency
   equal to the diameter of the original network, and, with high
   probability, each node v sending O(log n) messages along every edge
   incident to v as in the algorithm due to Cohen [4]".

   We reproduce the Cohen-style size-estimation/leader-election flood: each
   node draws k = Θ(log n) independent exponential labels; per round every
   node sends its component-wise minimum vector to its neighbors *only when
   it improved*.  Minima stabilize in diameter rounds; the expected number
   of improvements any edge carries is O(log n) (the running-minimum
   argument), which is exactly the w.h.p. bound the paper invokes.  The
   node holding the global minimum label becomes the BFS root; BFS level
   flooding then takes one message per edge per direction.

2. **Initial wills**: every node sends O(1) messages along its tree edges
   (portions + leaf wills), measured by the distributed runtime itself.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.errors import DisconnectedGraphError
from ..graphs.adjacency import Graph, require_connected


@dataclass
class SetupReport:
    """Costs of the setup phase (EXP-SETUP records these)."""

    n: int
    edge_count: int
    election_rounds: int = 0
    bfs_rounds: int = 0
    messages_per_edge: Dict[Tuple[int, int], int] = field(default_factory=dict)
    root: int = -1
    tree: Graph = field(default_factory=dict)

    @property
    def latency(self) -> int:
        """Total sub-rounds; the paper's bound is O(diameter)."""
        return self.election_rounds + self.bfs_rounds

    @property
    def max_messages_per_edge(self) -> int:
        return max(self.messages_per_edge.values(), default=0)

    @property
    def mean_messages_per_edge(self) -> float:
        if not self.messages_per_edge:
            return 0.0
        return sum(self.messages_per_edge.values()) / len(self.messages_per_edge)


def _edge_key(u: int, v: int) -> Tuple[int, int]:
    return (u, v) if u < v else (v, u)


def distributed_bfs_setup(
    graph: Graph,
    seed: int = 0,
    labels_per_node: Optional[int] = None,
) -> SetupReport:
    """Run the setup phase on ``graph``; returns tree + cost accounting.

    The election phase floods min-label vectors (Cohen's size-estimation
    sketches double as leader election: the argmin of the first coordinate
    is unique w.h.p.); the BFS phase floods levels from the elected root.
    Messages are counted per (undirected) edge.
    """
    require_connected(graph)
    n = len(graph)
    rng = random.Random(seed)
    # One exponential label per node suffices for the election (the
    # running-minimum improvement count per edge is H_n = O(log n) in
    # expectation); pass labels_per_node > 1 to flood full Cohen sketches.
    k = labels_per_node or 1

    report = SetupReport(
        n=n,
        edge_count=sum(len(s) for s in graph.values()) // 2,
    )
    messages = report.messages_per_edge
    for u, neighbors in graph.items():
        for v in neighbors:
            messages.setdefault(_edge_key(u, v), 0)

    if n == 1:
        only = next(iter(graph))
        report.root = only
        report.tree = {only: set()}
        return report

    # --- phase 1: Cohen-style min-label flood (leader election) ----------
    labels: Dict[int, List[float]] = {
        node: [rng.expovariate(1.0) for _ in range(k)] for node in graph
    }
    owner: Dict[int, int] = {node: node for node in graph}  # argmin of label[0]
    best: Dict[int, List[float]] = {node: list(labels[node]) for node in graph}
    changed: Set[int] = set(graph)
    rounds = 0
    while changed:
        rounds += 1
        inbox: Dict[int, List[Tuple[int, List[float], int]]] = {}
        for node in sorted(changed):
            snapshot = list(best[node])  # value semantics at send time
            for neighbor in graph[node]:
                messages[_edge_key(node, neighbor)] += 1
                inbox.setdefault(neighbor, []).append(
                    (node, snapshot, owner[node])
                )
        changed = set()
        for node, deliveries in inbox.items():
            vec = best[node]
            improved = False
            for _, other_vec, other_owner in deliveries:
                for i in range(k):
                    if other_vec[i] < vec[i]:
                        vec[i] = other_vec[i]
                        improved = True
                        if i == 0:
                            owner[node] = other_owner
            if improved:
                changed.add(node)
    report.election_rounds = rounds
    roots = {owner[node] for node in graph}
    if len(roots) != 1:  # pragma: no cover - the flood always converges
        raise DisconnectedGraphError("leader election did not converge")
    root = roots.pop()
    report.root = root

    # --- phase 2: BFS level flood from the root --------------------------
    level: Dict[int, int] = {root: 0}
    parent: Dict[int, int] = {}
    frontier = [root]
    bfs_rounds = 0
    while frontier:
        bfs_rounds += 1
        next_frontier: List[int] = []
        for node in sorted(frontier):
            for neighbor in sorted(graph[node]):
                messages[_edge_key(node, neighbor)] += 1
                if neighbor not in level:
                    level[neighbor] = level[node] + 1
                    parent[neighbor] = node
                    next_frontier.append(neighbor)
        frontier = next_frontier
    report.bfs_rounds = bfs_rounds

    tree: Graph = {node: set() for node in graph}
    for child, par in parent.items():
        tree[child].add(par)
        tree[par].add(child)
    report.tree = tree
    return report


def size_estimate(graph: Graph, seed: int = 0, k: Optional[int] = None) -> float:
    """Cohen's size estimator: n̂ = (k - 1) / Σ min-labels.

    Included as the direct reproduction of the size-estimation framework
    the paper cites for its setup bound; tests check the estimate
    concentrates around n.
    """
    require_connected(graph)
    n = len(graph)
    rng = random.Random(seed)
    kk = k or max(2, 8 * math.ceil(math.log2(max(n, 2))))
    mins = [float("inf")] * kk
    for node in graph:
        for i in range(kk):
            mins[i] = min(mins[i], rng.expovariate(1.0))
    total = sum(mins)
    if total <= 0:  # pragma: no cover
        return float(n)
    return (kk - 1) / total
