"""Driver for the distributed Forgiving Tree (binary protocol).

Builds the per-node states from an initial tree, distributes the initial
wills and leaf wills as real messages (the O(1)-per-tree-edge setup cost),
and then heals deletions round by round, returning the network's
communication statistics.  All healing decisions are made inside
:class:`~repro.distributed.node.ProtocolNode` handlers from local state.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.errors import (
    NodeNotFoundError,
    ProtocolError,
    SimulationOverError,
)
from ..core.events import normalize_wave
from ..core.forgiving_tree import _as_adjacency, _check_is_tree
from ..core.slot_tree import SlotTree
from .messages import REAL, Deleted, InsertRequest
from .network import Network, RoundStats
from .node import ProtocolNode


class DistributedForgivingTree:
    """Message-passing Forgiving Tree over an initial tree (binary case).

    The public surface mirrors the sequential engine where it matters for
    validation: ``alive``, ``delete``, ``edges``/``adjacency``,
    ``degree`` / ``max_degree_increase`` — plus the per-round
    :class:`~repro.distributed.network.RoundStats` (Theorem 1.3 metrics).
    """

    def __init__(
        self, tree, root: Optional[int] = None, network: Optional[Network] = None
    ):
        adjacency = _as_adjacency(tree)
        _check_is_tree(adjacency)
        self.root_id = min(adjacency) if root is None else root
        if self.root_id not in adjacency:
            raise NodeNotFoundError(self.root_id, "root")
        # ``network`` plugs in an alternative transport (e.g. the
        # discrete-event :class:`repro.simnet.AsyncNetwork`); the node
        # protocol is transport-agnostic.  Must be empty.
        if network is not None and len(network):
            raise ProtocolError("provided network already has nodes")
        self.network = Network() if network is None else network
        self.original_degree: Dict[int, int] = {
            n: len(neigh) for n, neigh in adjacency.items()
        }
        self._ever: Set[int] = set(adjacency)  # ids may never be reused
        self.rounds = 0
        self._build(adjacency)

    # ------------------------------------------------------------------
    def _build(self, adjacency: Mapping[int, Sequence[int]]) -> None:
        parent: Dict[int, Optional[int]] = {self.root_id: None}
        order: List[int] = [self.root_id]
        queue = deque([self.root_id])
        seen = {self.root_id}
        while queue:
            cur = queue.popleft()
            for nxt in sorted(adjacency[cur]):
                if nxt not in seen:
                    seen.add(nxt)
                    parent[nxt] = cur
                    order.append(nxt)
                    queue.append(nxt)
        children: Dict[int, List[int]] = {n: [] for n in adjacency}
        for n, p in parent.items():
            if p is not None:
                children[p].append(n)

        for nid in adjacency:
            node = ProtocolNode(nid)
            self.network.register(node)
        for nid in adjacency:
            node = self.network.nodes[nid]
            p = parent[nid]
            node.parent_ref = None if p is None else (p, REAL)
            kids = sorted(children[nid])
            node.will = SlotTree(kids, branching=2)
            node.slot_kind = {k: REAL for k in kids}

        # Setup phase: wills and leaf wills travel as counted messages.
        self.network.begin_round(0)
        for nid in adjacency:
            node = self.network.nodes[nid]
            node.refresh_portions()
            node._maybe_deposit_leaf_will()
        self.setup_stats = self.network.run_round(0)

    # ------------------------------------------------------------------
    @property
    def alive(self) -> Set[int]:
        return set(self.network.nodes)

    def __len__(self) -> int:
        return len(self.network)

    def __contains__(self, nid: int) -> bool:
        return nid in self.network

    def check_delete(self, nid: int) -> None:
        """Validate a deletion without mutating anything."""
        if not self.network.nodes:
            raise SimulationOverError("all nodes already deleted")
        if nid not in self.network:
            raise NodeNotFoundError(nid, "delete")

    def heal_coordinator(self, nid: int) -> Optional[int]:
        """Who would anchor the heal of ``nid``, from live local state.

        The Forgiving Tree repair has no single coordinator — it is
        will-driven, every notified neighbor acts from its own portion —
        so the *handoff anchor* (the node a delegated overlapping event
        queues on, see ``docs/LEASES.md``) is defined as the smallest-id
        notified neighbor: deterministic, computable by every notified
        node without extra messages, and the same rule the Forgiving
        Graph protocol already uses for its real coordinator.  ``None``
        for an isolated victim (nobody is notified, nothing to anchor).
        """
        if nid not in self.network:
            raise NodeNotFoundError(nid, "heal_coordinator")
        claims = self.network.nodes[nid].neighbor_claims()
        return min(claims) if claims else None

    def inject_delete(self, nid: int) -> None:
        """Remove the victim and send the failure fan-out *without*
        draining the network.  Async transports use this to overlap
        several heals (delegated events resume this way mid-flight
        under the region-lease policy); :meth:`delete` is the
        inject-then-drain wrapper.  The caller must have opened an
        accounting window."""
        self.check_delete(nid)
        self.rounds += 1
        victim = self.network.remove(nid)
        claims = sorted(victim.neighbor_claims())
        self.network.trace_instant("ft:delete", victim=nid, fanout=len(claims))
        for neighbor in claims:
            self.network.send(
                Deleted(sender=nid, recipient=neighbor, victim=nid)
            )

    def delete(self, nid: int) -> RoundStats:
        """Adversary deletes ``nid``; neighbors detect and heal."""
        self.check_delete(nid)
        self.network.begin_round(self.rounds + 1)
        self.inject_delete(nid)
        stats = self.network.run_round(self.rounds)
        self._check_quiescent()
        return stats

    def insert(self, nid: int, attach_to: int) -> RoundStats:
        """A new node joins under live ``attach_to`` (churn model).

        The joiner registers with the network and runs the INSERT
        handshake as real counted messages: request, (optional leaf-will
        retraction by the attachment point), ack + O(1) will-portion
        refreshes, and the joiner's leaf-will deposit.  Node ids are
        never reused, matching the sequential engine.  A single insert
        *is* a batch wave of one (:meth:`insert_batch`).
        """
        return self.insert_batch([(nid, attach_to)])

    def insert_batch(self, joiners) -> RoundStats:
        """A wave of nodes joins in one round (batch INSERT handshake).

        Mirrors :meth:`~repro.core.forgiving_tree.ForgivingTree.insert_batch`
        semantics: ``joiners`` is an ordered sequence of ``(nid,
        attach_to)`` pairs, attachment points must be alive before the
        wave (a joiner cannot attach to a same-wave joiner), and ids are
        never reused.  Requests for the same attachment point are flagged
        so the adoptee coalesces its will-portion retransmissions into
        one pass for the whole wave (``InsertRequest.final``); the
        per-node message tallies cross-check against the sequential
        engine's synthesized ones exactly.
        """
        wave = normalize_wave(joiners, known_ids=self._ever, alive=self.network)
        self.network.begin_round(self.rounds + 1)
        self._inject_wave(wave)
        stats = self.network.run_round(self.rounds)
        self._check_quiescent()
        return stats

    def inject_insert_batch(self, joiners) -> None:
        """Register a wave's joiners and send their requests *without*
        draining (the async-transport half of :meth:`insert_batch`).
        The caller must have opened an accounting window."""
        self._inject_wave(
            normalize_wave(joiners, known_ids=self._ever, alive=self.network)
        )

    def _inject_wave(self, wave) -> None:
        """The already-validated wave's registration + request fan-out.

        Validation stays in the callers, *before* any accounting window
        opens — a rejected wave must leave no partial state, and on the
        async transport an exception after ``begin_round`` would leave
        the injection context dangling."""
        self.rounds += 1
        self.network.trace_instant("ft:insert-wave", joiners=len(wave))
        groups: Dict[int, List[int]] = {}
        for nid, attach_to in wave:
            groups.setdefault(attach_to, []).append(nid)
        for nid, attach_to in wave:
            node = ProtocolNode(nid)
            self.network.register(node)
            self._ever.add(nid)
            self.original_degree[nid] = 1
            self.original_degree[attach_to] += 1
        for attach_to, group in groups.items():
            for i, nid in enumerate(group):
                self.network.send(
                    InsertRequest(
                        sender=nid,
                        recipient=attach_to,
                        child_ref=(nid, REAL),
                        final=i == len(group) - 1,
                    )
                )

    def _check_quiescent(self) -> None:
        for nid, node in self.network.nodes.items():
            if node.pending:
                raise ProtocolError(
                    f"node {nid} still awaiting {sorted(node.pending)}"
                )

    def integrity_violations(self) -> List[Tuple[str, int, str]]:
        """Protocol-specific corruption scan for the repair pass.

        Unlike :meth:`_check_quiescent` / ``image_edges`` (which *raise*
        at the first illegality), this tolerantly enumerates everything
        wrong with the current overlay: heals frozen halfway (pending
        obligations that will never clear because the messages died
        with a crashed sender) and dangling pointers — real-position,
        helper-role, will stand-in, or deposited leaf-will references
        naming a node that no longer exists.  Returns
        ``(kind, node, detail)`` tuples in the
        :data:`repro.faults.VIOLATION_KINDS` taxonomy.
        """
        out: List[Tuple[str, int, str]] = []
        alive = set(self.network.nodes)
        for nid, node in self.network.nodes.items():
            if node.pending:
                out.append(
                    (
                        "half-applied-heal",
                        nid,
                        f"awaiting {sorted(node.pending)}",
                    )
                )
            refs: List[Tuple[str, int]] = []
            if node.parent_ref is not None:
                refs.append(("parent_ref", node.parent_ref[0]))
            refs.extend(("will", s) for s in node.will.stand_ins)
            if node.role is not None:
                if node.role.hparent is not None:
                    refs.append(("role.hparent", node.role.hparent[0]))
                refs.extend(("role.hchild", c[0]) for c in node.role.hchildren)
            refs.extend(("leaf_will", holder) for holder in node.leaf_wills)
            for where, ref in refs:
                if ref != nid and ref not in alive:
                    out.append(
                        (
                            "dangling-pointer",
                            nid,
                            f"{where} names dead node {ref}",
                        )
                    )
        return out

    # ------------------------------------------------------------------
    def edges(self) -> Set[Tuple[int, int]]:
        """Current overlay from both endpoints' local state (validated)."""
        return self.network.image_edges()

    def adjacency(self) -> Dict[int, Set[int]]:
        adj: Dict[int, Set[int]] = {n: set() for n in self.network.nodes}
        for u, v in self.edges():
            adj[u].add(v)
            adj[v].add(u)
        return adj

    def degree(self, nid: int) -> int:
        return len(self.adjacency()[nid])

    def max_degree_increase(self) -> int:
        adj = self.adjacency()
        if not adj:
            return 0
        return max(len(s) - self.original_degree[n] for n, s in adj.items())

    # -- Theorem 1.3 metrics ----------------------------------------------
    def last_stats(self) -> RoundStats:
        return self.network.stats_history[-1]

    def peak_messages_per_node(self) -> int:
        return max(
            (
                max(s.max_sent_per_node, s.max_received_per_node)
                for s in self.network.stats_history[1:]  # skip setup
            ),
            default=0,
        )

    def peak_latency(self) -> int:
        return max(
            (s.sub_rounds for s in self.network.stats_history[1:]), default=0
        )
