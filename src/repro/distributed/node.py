"""Per-node state and handlers of the distributed Forgiving Tree protocol.

Each :class:`ProtocolNode` owns exactly the fields of the paper's Table 1 —
current fields (``parent``, ``children``/will), helper fields
(``hparent``/``hchildren``), reconstruction fields (the stored
:class:`Portion` of its parent's will), flags, plus deposited leaf wills —
and acts **only** on this local state and incoming messages.  The global
picture (the virtual tree) is never consulted: integration tests recover it
by running the sequential engine side by side and comparing image graphs.

Protocol summary (binary case, Algorithms 3.1-3.9 with the gap-fills of
DESIGN.md §2):

* A will owner keeps a :class:`~repro.core.slot_tree.SlotTree` over its
  child *stand-ins* and (re)transmits changed portions (``MakeWill``).
* On ``Deleted(v)``, stand-ins of v deploy their portions (``makeRT`` /
  ``MakeHelper``): ready heirs bypass themselves and broker their anchor,
  non-heirs spin up internal helpers, the heir inherits v's helper role or
  interposes the ready heir and *claims* v's slot at the parent
  (``ReplaceChild``).
* Leaf deaths are healed by the parent-position holder using the deposited
  leaf will (``MakeLeafWill`` / ``FixLeafDeletion``): short-circuit the
  redundant helper, inherit the orphaned one, notify affected neighbors
  with O(1) ``SimChange`` messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from ..core.errors import ProtocolError
from ..core.slot_tree import AddDelta, SlotTree
from .messages import (
    REAL,
    HELPER,
    AnchorIs,
    ChildHello,
    Deleted,
    InsertAck,
    InsertRequest,
    LeafWillMsg,
    LeafWillRetract,
    Message,
    Ref,
    RemoveHChild,
    ReparentTo,
    ReplaceChild,
    SimChange,
    WillPortionMsg,
)

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network


@dataclass(frozen=True)
class Portion:
    """One child's slice of its parent's will (Figure 2).

    ``next_parent`` — where the child's real position re-attaches
    (``None``: at the top, i.e. the dead parent's own parent).
    ``next_hparent`` / ``next_hchildren`` — the helper role to assume
    (for the heir: the inherited role when ``inherits_role``).
    ``top_parent`` — the dead node's parent reference (claim target).
    ``iam_rv`` — this stand-in simulates the SubRT root and must claim the
    dead node's slot itself (the ``nexthparent(rv) <- p`` case).
    """

    will_parent: int
    is_heir: bool
    inherits_role: bool
    next_parent: Optional[Ref]
    next_hparent: Optional[Ref]
    next_hchildren: Tuple[Ref, ...]
    top_parent: Optional[Ref]
    iam_rv: bool
    root_sim: Optional[int] = None  # sim of the SubRT root helper (d > 1)


@dataclass
class Role:
    """The helper node this real node currently simulates."""

    hparent: Optional[Ref]  # None: the helper is the virtual root
    hchildren: List[Ref] = field(default_factory=list)

    @property
    def is_ready_heir(self) -> bool:
        return len(self.hchildren) == 1


@dataclass
class LeafWill:
    """A leaf's deposited will: its helper links (empty if roleless)."""

    hparent: Optional[Ref] = None
    hchildren: Tuple[Ref, ...] = ()

    @property
    def has_role(self) -> bool:
        return bool(self.hchildren) or self.hparent is not None


class ProtocolNode:
    """One processor running the Forgiving Tree protocol (see module doc)."""

    def __init__(self, nid: int):
        self.nid = nid
        self.network: Optional["Network"] = None
        # current fields -------------------------------------------------
        self.parent_ref: Optional[Ref] = None  # upward link of my real position
        self.will: SlotTree = SlotTree([])  # my children stand-ins
        self.slot_kind: Dict[int, str] = {}  # stand-in -> REAL | HELPER
        # helper fields ----------------------------------------------------
        self.role: Optional[Role] = None
        # reconstruction fields ---------------------------------------------
        self.portion: Optional[Portion] = None
        # deposits ----------------------------------------------------------
        self.leaf_wills: Dict[int, LeafWill] = {}  # child/hchild -> its will
        # round bookkeeping --------------------------------------------------
        self.pending: Set[Tuple[int, str]] = set()
        self._leafwill_sent_to: Optional[Tuple[Optional[Ref], str]] = None
        self._leafwill_holder: Optional[int] = None
        # batch insert waves: touched stand-ins accumulated across the
        # wave's non-final requests, flushed by the final one.
        self._wave_touched: Set[int] = set()

    # ------------------------------------------------------------------
    # local views
    # ------------------------------------------------------------------
    @property
    def is_tree_leaf(self) -> bool:
        return len(self.will) == 0

    @property
    def ishelper(self) -> bool:
        return self.role is not None

    @property
    def isreadyheir(self) -> bool:
        return self.role is not None and self.role.is_ready_heir

    def neighbor_claims(self) -> Set[int]:
        """Real nodes I currently hold an edge to (both endpoints claim)."""
        out: Set[int] = set()
        if self.parent_ref is not None and self.parent_ref[0] != self.nid:
            out.add(self.parent_ref[0])
        for s in self.will.stand_ins:
            if s != self.nid:
                out.add(s)
        if self.role is not None:
            if self.role.hparent is not None and self.role.hparent[0] != self.nid:
                out.add(self.role.hparent[0])
            for sim, _kind in self.role.hchildren:
                if sim != self.nid:
                    out.add(sim)
        return out

    # ------------------------------------------------------------------
    # sending helpers
    # ------------------------------------------------------------------
    def _send(self, message: Message) -> None:
        assert self.network is not None
        self.network.send(message)

    def _maybe_deposit_leaf_will(self) -> None:
        """Leaves (re)deposit their leaf will whenever it changed."""
        if not self.is_tree_leaf:
            return
        holder: Optional[int] = None
        if self.parent_ref is not None and self.parent_ref[0] != self.nid:
            holder = self.parent_ref[0]
        elif self.role is not None:
            # My parent is my own helper (or absent): the will goes to the
            # nearest distinct ancestor (the paper's "parent(v) =
            # hparent(v) = p") — or, when my helper is the virtual root,
            # *down* to the surviving sibling, which applies it when I die
            # (DESIGN.md gap-fill).
            if self.role.hparent is not None and self.role.hparent[0] != self.nid:
                holder = self.role.hparent[0]
            else:
                others = [c for c in self.role.hchildren if c[0] != self.nid]
                if others:
                    holder = others[0][0]
        if holder is None:
            # My deposit location vanished (e.g. my own helper became the
            # virtual root): retract the stale copy so the tracked holder
            # always matches the state-derived rule.
            if self._leafwill_holder is not None:
                self._send(
                    LeafWillRetract(
                        sender=self.nid, recipient=self._leafwill_holder
                    )
                )
                self._leafwill_holder = None
                self._leafwill_sent_to = None
            return
        role = self.role
        lw_state = (
            self.parent_ref,
            repr((role.hparent, tuple(role.hchildren)) if role else None),
        )
        if self._leafwill_sent_to == lw_state:
            return
        self._leafwill_sent_to = lw_state
        self._leafwill_holder = holder
        self._send(
            LeafWillMsg(
                sender=self.nid,
                recipient=holder,
                hparent=role.hparent if role else None,
                hchildren=tuple(role.hchildren) if role else (),
            )
        )

    # ------------------------------------------------------------------
    # will (owner side)
    # ------------------------------------------------------------------
    def make_portion(self, s: int) -> Portion:
        """Compute stand-in ``s``'s slice of my will (Algorithm 3.6)."""
        will = self.will
        heir = will.heir
        att = will.attachment_sim(s)
        is_heir = s == heir
        iam_rv = False
        # Does my own real position sit below my own helper?  (Then my
        # slot is inside the helper my heir will inherit, and the claim
        # resolves locally at the heir.)
        own_slot = self.role is not None and self.parent_ref == self.role.hparent
        if not is_heir:
            ihp = will.internal_parent_sim(s)
            if ihp is not None:
                next_hparent: Optional[Ref] = (ihp, HELPER)
            elif self.role is not None:
                if own_slot:
                    assert heir is not None
                    next_hparent = (heir, HELPER)  # inside the inherited helper
                else:
                    next_hparent = self.parent_ref  # rv attaches to my parent
                    iam_rv = True
            else:
                assert heir is not None
                next_hparent = (heir, HELPER)  # rv hangs below the ready heir
            if att is not None:
                next_parent: Optional[Ref] = (att, HELPER)
            else:
                # My leaf sits directly under the SubRT root (my own
                # helper): it attaches wherever the root's parent goes.
                next_parent = next_hparent
            next_hchildren = tuple(
                (x, REAL) if kind == "leaf" else (x, HELPER)
                for kind, x in will.internal_children_refs(s)
            )
            inherits = False
        else:
            next_parent = (att, HELPER) if att is not None else None
            inherits = self.role is not None
            if inherits:
                assert self.role is not None
                next_hparent = self.role.hparent
                next_hchildren = tuple(self.role.hchildren)
            else:
                next_hparent = None
                if len(will) > 1:
                    next_hchildren = ((will.root_sim(), HELPER),)
                else:
                    next_hchildren = ()  # vacuous ready heir: skipped
        return Portion(
            will_parent=self.nid,
            is_heir=is_heir,
            inherits_role=inherits,
            next_parent=next_parent,
            next_hparent=next_hparent,
            next_hchildren=next_hchildren,
            top_parent=self.parent_ref,
            iam_rv=iam_rv,
            root_sim=will.root_sim() if len(will) > 1 else None,
        )

    def refresh_portions(self, only: Optional[Set[int]] = None) -> None:
        """(Re)send will portions (MakeWill); ``only`` limits recipients."""
        targets = self.will.stand_ins if only is None else [s for s in only if s in self.will]
        for s in targets:
            self._send(
                WillPortionMsg(
                    sender=self.nid, recipient=s, portion=self.make_portion(s)
                )
            )

    def refresh_all_dependents(self) -> None:
        """My role/parent changed: the heir's and rv's portions depend on
        them; resend those two (O(1))."""
        if not self.will:
            self._maybe_deposit_leaf_will()
            return
        affected = {self.will.heir, self.will.root_sim()}
        self.refresh_portions(only={s for s in affected if s is not None})

    def _refresh_after_will_change(self, delta) -> None:
        """Retransmit the portions a will mutation invalidated.

        Besides the slot tree's own touched set, the heir's and the SubRT
        root's portions embed cross-references (the ready-heir child, the
        rv attachment), so they always refresh — still O(1) messages.
        """
        touched = set(delta.touched)
        if self.will:
            if self.will.heir is not None:
                touched.add(self.will.heir)
            touched.add(self.will.root_sim())
        self.refresh_portions(only=touched)

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------
    def handle(self, message: Message) -> None:
        before = (self.parent_ref, repr(self.role))
        self._dispatch(message)
        after = (self.parent_ref, repr(self.role))
        if before != after and self.will:
            # My parent/role feed the heir's and the SubRT root's portions
            # of my own will: refresh them (O(1) messages).
            self.refresh_all_dependents()
        self._maybe_deposit_leaf_will()

    def _dispatch(self, message: Message) -> None:
        if isinstance(message, Deleted):
            self._on_deleted(message.victim)
        elif isinstance(message, WillPortionMsg):
            self.portion = message.portion  # type: ignore[assignment]
        elif isinstance(message, LeafWillMsg):
            self.leaf_wills[message.sender] = LeafWill(
                hparent=message.hparent, hchildren=message.hchildren
            )
        elif isinstance(message, ReplaceChild):
            self._on_replace_child(message)
        elif isinstance(message, SimChange):
            self._on_sim_change(message)
        elif isinstance(message, ReparentTo):
            self._on_reparent(message)
        elif isinstance(message, AnchorIs):
            self._on_anchor_is(message)
        elif isinstance(message, RemoveHChild):
            self._on_remove_hchild(message)
        elif isinstance(message, ChildHello):
            pass  # edge establishment; both sides already know from wills
        elif isinstance(message, InsertRequest):
            self._on_insert_request(message)
        elif isinstance(message, InsertAck):
            self.parent_ref = message.parent_ref
        elif isinstance(message, LeafWillRetract):
            self.leaf_wills.pop(message.sender, None)
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"{self.nid}: unknown message {message!r}")

    # ------------------------------------------------------------------
    # insertion handling (churn model)
    # ------------------------------------------------------------------
    def _on_insert_request(self, msg: InsertRequest) -> None:
        """Adopt the joining node as a fresh child slot of my will.

        I stop being a tree leaf, so any deposited leaf will is retracted
        first; the joiner gets an ack carrying its parent link, and the
        O(1) will portions the new slot touched are retransmitted.  For a
        batch wave (``final=False``) the retransmission is deferred: the
        touched stand-ins accumulate and the wave's final request flushes
        them in one coalesced pass."""
        new = msg.child_ref[0]
        if new in self.will:
            raise ProtocolError(f"{self.nid}: duplicate insert of {new}")
        if self.is_tree_leaf and self._leafwill_holder is not None:
            self._send(
                LeafWillRetract(sender=self.nid, recipient=self._leafwill_holder)
            )
            self._leafwill_holder = None
            self._leafwill_sent_to = None
        delta = self.will.add(new)
        self.slot_kind[new] = msg.child_ref[1]
        self._send(
            InsertAck(sender=self.nid, recipient=new, parent_ref=(self.nid, REAL))
        )
        self._wave_touched.update(delta.touched)
        if msg.final:
            touched = self._wave_touched
            self._wave_touched = set()
            self._refresh_after_will_change(AddDelta(touched=tuple(touched)))

    # ------------------------------------------------------------------
    # deletion handling
    # ------------------------------------------------------------------
    def _on_deleted(self, v: int) -> None:
        # 0. v simulated the virtual root helper with me below it and left
        #    me its (downward-deposited) will: apply it.
        self._orphaned_root_check(v)
        # 1. I am a stand-in of v's will: deploy my portion (makeRT).
        if self.portion is not None and self.portion.will_parent == v:
            self._deploy(v)
        # 2. v stood in my will (it was my child slot).
        if v in self.will:
            self._child_slot_died(v)
        # 3. v is adjacent to my helper node.
        if self.role is not None:
            self._helper_neighbor_died(v)
        # 4. my real-position parent was v's real node (not via will: only
        #    possible when I had no portion — the root's child corner) —
        #    covered by (1) in every reachable state.

    def _orphaned_root_check(self, v: int) -> None:
        lw = self.leaf_wills.get(v)
        if lw is None or (v, REAL) not in lw.hchildren:
            return
        if lw.hparent is not None:
            return  # not the root-helper case: the normal flows apply
        dead_ref = (v, HELPER)
        applied = False
        if self.parent_ref == dead_ref:
            self.parent_ref = lw.hparent
            applied = True
        if self.role is not None and self.role.hparent == dead_ref:
            self.role.hparent = lw.hparent
            applied = True
        if applied:
            self.leaf_wills.pop(v, None)

    # -- (1) stand-in deployment ----------------------------------------
    def _deploy(self, v: int) -> None:
        portion = self.portion
        assert portion is not None
        self.portion = None
        role = self.role
        bypassing = (
            role is not None
            and role.hparent is not None
            and role.hparent == (v, REAL)
            and role.is_ready_heir
        )
        anchor: Optional[Ref] = None
        bypassed_vacuous = False
        if bypassing:
            # I was a ready heir standing in for a previously healed slot:
            # bypass my helper; its child is the slot's real occupant.
            assert role is not None
            anchor = role.hchildren[0]
            self.role = None
            if anchor == (self.nid, REAL):
                # Vacuous ready heir (its only child was my own real
                # position): nothing to broker — re-attach normally and
                # fall through to the direct-claim flows below.
                anchor = None
                bypassed_vacuous = True
                if portion.next_parent is not None:
                    self.parent_ref = portion.next_parent
                else:
                    self.parent_ref = portion.top_parent
        else:
            # My real position re-attaches (nextparent).
            if portion.next_parent is not None:
                self.parent_ref = portion.next_parent
                self._send(
                    ChildHello(
                        sender=self.nid,
                        recipient=portion.next_parent[0],
                        child_ref=(self.nid, REAL),
                        target_kind=portion.next_parent[1],
                    )
                )
            else:
                # Top attachment (heir with d == 1, or heir inheriting).
                self.parent_ref = portion.top_parent

        # Assume helper duties (MakeHelper).
        if not portion.is_heir:
            self.role = Role(
                hparent=portion.next_hparent,
                hchildren=list(portion.next_hchildren),
            )
            if portion.iam_rv and portion.top_parent is not None:
                # nexthparent(rv) <- p: I take v's place below its parent.
                self._send(
                    ReplaceChild(
                        sender=self.nid,
                        recipient=portion.top_parent[0],
                        old=v,
                        new_ref=(self.nid, HELPER),
                    )
                )
        else:
            if portion.inherits_role:
                # The inherited helper may hold v's own real position as a
                # child — its occupant is now the root of my SubRT (d > 1),
                # my own real position (d == 1), or my bypassed anchor.
                if portion.root_sim is not None:
                    rv_ref: Ref = (portion.root_sim, HELPER)
                elif bypassing and anchor is not None:
                    rv_ref = anchor
                else:
                    rv_ref = (self.nid, REAL)
                substituted = any(ref == (v, REAL) for ref in portion.next_hchildren)
                inherited = [
                    rv_ref if ref == (v, REAL) else ref
                    for ref in portion.next_hchildren
                ]
                self.role = Role(
                    hparent=portion.next_hparent,
                    hchildren=inherited,
                )
                if self.parent_ref == (v, HELPER):
                    # v's real position hung below its own helper
                    # (own-helper-skip) and I inherited that helper with
                    # my real position below it: my parent link mirrors
                    # the inherited hparent, as everywhere else.
                    self.parent_ref = portion.next_hparent
                if (
                    not substituted
                    and portion.root_sim is None
                    and (not bypassing or bypassed_vacuous)
                    and portion.top_parent is not None
                ):
                    # d == 1 and v's real position sat elsewhere: my real
                    # position takes its slot — claim it.  (A vacuously
                    # bypassed heir reduces to this case: its real
                    # position moved up into its dissolved helper's spot.)
                    self._send(
                        ReplaceChild(
                            sender=self.nid,
                            recipient=portion.top_parent[0],
                            old=v,
                            new_ref=(self.nid, REAL),
                        )
                    )
                self._announce_sim_change(old=v, role=self.role)
            elif portion.next_hchildren or (bypassing and anchor is not None):
                # Become the ready heir.  With a bypassed one-slot will the
                # child list is filled with the anchor below.
                self.role = Role(
                    hparent=portion.top_parent,
                    hchildren=list(portion.next_hchildren),
                )
                if portion.top_parent is not None:
                    self._send(
                        ReplaceChild(
                            sender=self.nid,
                            recipient=portion.top_parent[0],
                            old=v,
                            new_ref=(self.nid, HELPER),
                        )
                    )
            else:
                # d == 1: no ready heir needed; my real position took the
                # slot directly — claim it.
                self.role = None
                if portion.top_parent is not None:
                    self._send(
                        ReplaceChild(
                            sender=self.nid,
                            recipient=portion.top_parent[0],
                            old=v,
                            new_ref=(self.nid, REAL),
                        )
                    )
        if bypassing and anchor is not None:
            # Broker the anchor into my leaf slot (the bypass intros).
            target = portion.next_parent
            if target is None:
                # I was the heir of a 1-slot will: the anchor is the whole
                # SubRT; route it per my new duties.
                if portion.inherits_role:
                    if any(ref == (v, REAL) for ref in portion.next_hchildren):
                        pass  # consumed locally as the inherited rv_ref
                    elif portion.top_parent is not None:
                        self._send(
                            ReplaceChild(
                                sender=self.nid,
                                recipient=portion.top_parent[0],
                                old=v,
                                new_ref=anchor,
                            )
                        )
                        self._send(
                            ReparentTo(
                                sender=self.nid,
                                recipient=anchor[0],
                                target=portion.top_parent,
                                relation="real-parent" if anchor[1] == REAL else "hparent",
                            )
                        )
                elif self.role is not None and portion.is_heir:
                    self.role.hchildren = [anchor]
                    self._send(
                        ReparentTo(
                            sender=self.nid,
                            recipient=anchor[0],
                            target=(self.nid, HELPER),
                            relation="real-parent" if anchor[1] == REAL else "hparent",
                        )
                    )
                elif portion.top_parent is not None:
                    # Claimed directly: hand the slot to the anchor instead.
                    self._send(
                        ReplaceChild(
                            sender=self.nid,
                            recipient=portion.top_parent[0],
                            old=self.nid,
                            new_ref=anchor,
                        )
                    )
                    self._send(
                        ReparentTo(
                            sender=self.nid,
                            recipient=anchor[0],
                            target=portion.top_parent,
                            relation="real-parent" if anchor[1] == REAL else "hparent",
                        )
                    )
            elif (
                self.role is not None
                and (self.nid, REAL) in self.role.hchildren
            ):
                # My leaf slot sits under my *own* new internal helper
                # (the own-helper-skip case): apply the anchor locally.
                idx = self.role.hchildren.index((self.nid, REAL))
                self.role.hchildren[idx] = anchor
                self._send(
                    ReparentTo(
                        sender=self.nid,
                        recipient=anchor[0],
                        target=(self.nid, HELPER),
                        relation="real-parent" if anchor[1] == REAL else "hparent",
                    )
                )
            else:
                self._send(
                    AnchorIs(
                        sender=self.nid,
                        recipient=target[0],
                        slot_standin=self.nid,
                        anchor=anchor,
                    )
                )
                self._send(
                    ReparentTo(
                        sender=self.nid,
                        recipient=anchor[0],
                        target=(target[0], HELPER),
                        relation="real-parent" if anchor[1] == REAL else "hparent",
                    )
                )

    def _announce_sim_change(self, old: int, role: Role) -> None:
        """I took over a helper formerly simulated by ``old``: notify its
        neighbors so their fields follow (O(1) messages)."""
        if role.hparent is not None and role.hparent[0] != self.nid:
            self._send(
                SimChange(
                    sender=self.nid,
                    recipient=role.hparent[0],
                    old=old,
                    new=self.nid,
                    relation="your-hchild",
                )
            )
        for sim, kind in role.hchildren:
            if sim == self.nid:
                continue
            self._send(
                SimChange(
                    sender=self.nid,
                    recipient=sim,
                    old=old,
                    new=self.nid,
                    relation="your-parent" if kind == REAL else "your-hparent",
                )
            )

    # -- (2) a will slot died --------------------------------------------
    def _child_slot_died(self, v: int) -> None:
        kind = self.slot_kind.get(v, REAL)
        lw = self.leaf_wills.pop(v, None)
        if kind == REAL and lw is not None and not lw.has_role:
            # A roleless leaf child: heal locally (FixLeafDeletion, simple
            # case): splice the will and retransmit changed portions.
            self._will_remove_slot(v)
            return
        if kind == REAL and lw is None:
            # An internal child: its heir will claim the slot.
            self.pending.add((v, "slot-claim"))
            return
        if kind == REAL and lw is not None and lw.has_role:
            # A leaf child of mine with helper duties: only possible when I
            # am its will parent AND hold the leaf will — inherit per
            # Algorithm 3.7/3.4 cannot occur for plain slots in the binary
            # protocol (invariant I4): treat as protocol error.
            raise ProtocolError(
                f"{self.nid}: plain child {v} died holding a role (I4)"
            )
        # kind == HELPER: the slot is v's ready-heir helper.
        if lw is not None:
            # v died as a leaf *directly below its own slot helper*: the
            # helper dissolves; its surviving child (if any) takes the slot.
            survivors = [c for c in lw.hchildren if c[0] != v]
            if not survivors:
                self._will_remove_slot(v)
            else:
                s_ref = survivors[0]
                delta = self.will.replace(v, s_ref[0])
                self.slot_kind.pop(v, None)
                self.slot_kind[s_ref[0]] = s_ref[1]
                self._send(
                    ReparentTo(
                        sender=self.nid,
                        recipient=s_ref[0],
                        target=(self.nid, REAL),
                        relation="real-parent" if s_ref[1] == REAL else "hparent",
                    )
                )
                self._refresh_after_will_change(delta)
            return
        # Otherwise v died elsewhere (leaf inheritance: SimChange arrives)
        # or internally (the heir/rv re-claims the slot: ReplaceChild).
        self.pending.add((v, "slot-claim"))

    def _will_remove_slot(self, v: int) -> None:
        delta = self.will.remove(v)
        self.slot_kind.pop(v, None)
        self.leaf_wills.pop(v, None)
        if not delta.emptied:
            self._refresh_after_will_change(delta)
        self._maybe_deposit_leaf_will()

    # -- (3) my helper lost/changed a neighbor -----------------------------
    def _helper_neighbor_died(self, v: int) -> None:
        role = self.role
        assert role is not None
        # my helper's parent died: the dead node's will machinery renames
        # or re-attaches me — handled by incoming messages; nothing local.
        matches = [ref for ref in role.hchildren if ref[0] == v]
        if not matches:
            return
        ref = matches[0]
        lw = self.leaf_wills.pop(v, None)
        if ref[1] == HELPER:
            if lw is not None:
                # v's own helper was my hchild and v died as a leaf: the
                # helper dissolves; its surviving child connects to me
                # (the paper's "remove v from hchildren and add itself").
                survivors = [c for c in lw.hchildren if c[0] != v]
                role.hchildren.remove(ref)
                if survivors:
                    # A replacement, not a loss: the helper keeps its arity.
                    role.hchildren.append(survivors[0])
                    if survivors[0][0] == self.nid:
                        if survivors[0][1] == REAL:
                            self.parent_ref = (self.nid, HELPER)
                    else:
                        self._send(
                            ReparentTo(
                                sender=self.nid,
                                recipient=survivors[0][0],
                                target=(self.nid, HELPER),
                                relation=(
                                    "real-parent" if survivors[0][1] == REAL else "hparent"
                                ),
                            )
                        )
                else:
                    self._after_hchild_loss()
            else:
                # v died internally: its heir inherits the helper and sends
                # SimChange; or the slot is re-claimed (ReplaceChild).
                self.pending.add((v, "hchild-claim"))
            return
        # ref kind == REAL: v's real position hung below my helper.
        if lw is None:
            # v was internal: await the heir's claim.
            self.pending.add((v, "hchild-claim"))
            return
        # v was a leaf below my helper (FixLeafDeletion at a helper parent).
        role.hchildren.remove(ref)
        freed = self._after_hchild_loss()
        if lw.has_role:
            # Algorithm 3.4 lines 7-16: I short-circuited my helper (which
            # freed me) and now inherit v's helper duties.
            if freed is None:
                raise ProtocolError(
                    f"{self.nid}: leaf {v} had a role but my helper was not freed"
                )
            survivor, old_hparent = freed
            my_old = (self.nid, HELPER)
            new_hparent = lw.hparent
            if new_hparent == my_old:
                new_hparent = old_hparent
            new_children = [
                survivor if (ref2 == my_old and survivor is not None) else ref2
                for ref2 in lw.hchildren
            ]
            new_role = Role(hparent=new_hparent, hchildren=new_children)
            self.role = new_role
            # If my real position hung below the inherited helper, my
            # parent reference follows the own-helper-skip convention.
            if self.parent_ref == (v, HELPER):
                self.parent_ref = new_hparent
            self._announce_sim_change(old=v, role=new_role)

    def _after_hchild_loss(self):
        """My helper lost a child: short-circuit it if redundant.

        Returns ``None`` when the helper survives; otherwise the pair
        ``(survivor_ref, old_hparent)`` of the dissolved helper (the
        survivor is ``None`` when the helper was already childless).
        """
        role = self.role
        assert role is not None
        remaining = len(role.hchildren)
        if remaining >= 2:
            return None
        old_hparent = role.hparent
        survivor = None
        if remaining == 1:
            # Redundant virtual node: bypass (connect child to parent).
            other = role.hchildren[0]
            survivor = other
            if role.hparent is not None:
                self._send(
                    ReplaceChild(
                        sender=self.nid,
                        recipient=role.hparent[0],
                        old=self.nid,
                        new_ref=other,
                    )
                )
            if other[0] == self.nid:
                # My own real position moves up: apply synchronously so a
                # same-round takeover sees the final state.
                if other[1] == REAL:
                    self.parent_ref = role.hparent
            else:
                self._send(
                    ReparentTo(
                        sender=self.nid,
                        recipient=other[0],
                        target=role.hparent,  # type: ignore[arg-type]
                        relation="real-parent" if other[1] == REAL else "hparent",
                    )
                )
        else:
            # Childless helper: vanish and cascade upward.
            if role.hparent is not None:
                self._send(
                    RemoveHChild(
                        sender=self.nid,
                        recipient=role.hparent[0],
                        gone=(self.nid, HELPER),
                    )
                )
        self.role = None
        return (survivor, old_hparent)

    # ------------------------------------------------------------------
    # field-update handlers
    # ------------------------------------------------------------------
    def _on_replace_child(self, msg: ReplaceChild) -> None:
        old, new_ref = msg.old, msg.new_ref
        self.pending.discard((old, "slot-claim"))
        self.pending.discard((old, "hchild-claim"))
        if old in self.will:
            if new_ref[0] == old:
                # Same stand-in, new endpoint kind (e.g. a bypassed helper
                # replaced by its simulator's own real position).
                self.slot_kind[old] = new_ref[1]
                return
            if new_ref[0] in self.will:
                raise ProtocolError(
                    f"{self.nid}: stand-in collision {new_ref[0]} in will"
                )
            delta = self.will.replace(old, new_ref[0])
            self.slot_kind.pop(old, None)
            self.slot_kind[new_ref[0]] = new_ref[1]
            self.leaf_wills.pop(old, None)
            self._refresh_after_will_change(delta)
            return
        if self.role is not None:
            for i, (sim, kind) in enumerate(self.role.hchildren):
                if sim == old:
                    self.role.hchildren[i] = new_ref
                    return
        # A claim for something I no longer track (e.g. concurrent splice):
        # protocol error in the binary protocol.
        raise ProtocolError(f"{self.nid}: unmatched ReplaceChild({old})")

    def _on_sim_change(self, msg: SimChange) -> None:
        old, new = msg.old, msg.new
        self.pending.discard((old, "slot-claim"))
        self.pending.discard((old, "hchild-claim"))
        if msg.relation == "your-hchild":
            if old in self.will:
                delta = self.will.replace(old, new)
                self.slot_kind[new] = self.slot_kind.pop(old, HELPER)
                lw = self.leaf_wills.pop(old, None)
                if lw is not None:
                    self.leaf_wills[new] = lw
                self._refresh_after_will_change(delta)
                return
            if self.role is not None:
                for i, (sim, kind) in enumerate(self.role.hchildren):
                    if sim == old:
                        self.role.hchildren[i] = (new, kind)
                        return
            raise ProtocolError(f"{self.nid}: unmatched SimChange hchild {old}->{new}")
        if msg.relation == "your-hparent":
            if self.role is not None:
                old_ref = self.role.hparent
                self.role.hparent = (new, HELPER)
                # Own-helper-skip encoding: when my real position sits under
                # my own helper, my parent_ref mirrors my role's hparent.
                if old_ref is not None and self.parent_ref == old_ref:
                    self.parent_ref = (new, HELPER)
            return
        if msg.relation == "your-parent":
            old_pref = self.parent_ref
            self.parent_ref = (new, HELPER)
            if (
                self.role is not None
                and old_pref is not None
                and self.role.hparent == old_pref
            ):
                self.role.hparent = (new, HELPER)
            return
        raise ProtocolError(f"{self.nid}: unknown SimChange relation {msg.relation}")

    def _on_reparent(self, msg: ReparentTo) -> None:
        if msg.relation == "real-parent":
            old_pref = self.parent_ref
            self.parent_ref = msg.target
            if (
                self.role is not None
                and old_pref is not None
                and self.role.hparent == old_pref
            ):
                self.role.hparent = msg.target
        elif msg.relation == "hparent":
            if self.role is None:
                raise ProtocolError(f"{self.nid}: ReparentTo(hparent) without a role")
            old_ref = self.role.hparent
            self.role.hparent = msg.target
            # Own-helper-skip: my leaf may attach through my own helper.
            if old_ref is not None and self.parent_ref == old_ref:
                self.parent_ref = msg.target
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"{self.nid}: unknown relation {msg.relation}")

    def _on_anchor_is(self, msg: AnchorIs) -> None:
        if self.role is None:
            raise ProtocolError(f"{self.nid}: AnchorIs without a role")
        for i, (sim, kind) in enumerate(self.role.hchildren):
            if sim == msg.slot_standin and kind == REAL:
                self.role.hchildren[i] = msg.anchor
                return
        raise ProtocolError(
            f"{self.nid}: AnchorIs for unknown slot {msg.slot_standin}"
        )

    def _on_remove_hchild(self, msg: RemoveHChild) -> None:
        gone = msg.gone
        if gone[0] in self.will and self.slot_kind.get(gone[0]) == HELPER:
            self._will_remove_slot(gone[0])
            return
        if self.role is not None:
            for ref in list(self.role.hchildren):
                if ref == gone:
                    self.role.hchildren.remove(ref)
                    self._after_hchild_loss()
                    return
        raise ProtocolError(f"{self.nid}: unmatched RemoveHChild({gone})")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ProtocolNode({self.nid}, parent={self.parent_ref}, "
            f"slots={self.will.stand_ins}, role={self.role})"
        )
