"""Message types of the distributed Forgiving Tree protocol.

Every message carries O(1) node ids, matching Theorem 1.3's "each message
contains O(1) bits and node IDs".  ``bits()`` gives the accounting size
used by the network counters (ids are charged ``ceil(log2 n)`` bits by the
network, constants one bit each).

References to positions are ``Ref = (sim, kind)`` pairs: ``kind`` says
whether the endpoint is the real node itself (``"real"``) or the helper
node it simulates (``"helper"``) — the paper's ``ly`` vs ``hy`` distinction
from Algorithm 3.6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

Ref = Tuple[int, str]  # (node id, "real" | "helper")

REAL = "real"
HELPER = "helper"


def ref_ids(ref: Optional[Ref]) -> int:
    return 0 if ref is None else 1


@dataclass(frozen=True)
class Message:
    """Base message; ``sender`` is filled by the network on send."""

    sender: int
    recipient: int

    def id_count(self) -> int:
        """Node ids carried (for bit accounting)."""
        return 2


@dataclass(frozen=True)
class Deleted(Message):
    """Failure notification: ``victim`` has been deleted (from the
    detector; the model says neighbors become aware of the deletion)."""

    victim: int

    def id_count(self) -> int:
        return 3


@dataclass(frozen=True)
class WillPortionMsg(Message):
    """A will owner (re)transmits one child's reconstruction fields."""

    portion: "object"  # distributed.node.Portion

    def id_count(self) -> int:
        return 8  # bounded: next_parent/hparent + 2 hchildren + tops


@dataclass(frozen=True)
class LeafWillMsg(Message):
    """A leaf deposits its leaf will (possibly empty) with its parent
    holder (Algorithm 3.7); doubles as the "I am a leaf" flag."""

    hparent: Optional[Ref]
    hchildren: Tuple[Ref, ...]

    def id_count(self) -> int:
        return 2 + ref_ids(self.hparent) + len(self.hchildren)


@dataclass(frozen=True)
class ReplaceChild(Message):
    """'I answer for the slot formerly stood by ``old``' — sent by a ready
    heir (or inheritor) to the dead node's parent-position holder
    (Algorithm 3.3 lines 3-6)."""

    old: int
    new_ref: Ref

    def id_count(self) -> int:
        return 4


@dataclass(frozen=True)
class SimChange(Message):
    """'The helper adjacent to you formerly simulated by ``old`` is now
    simulated by me' — heir inheritance / leaf-will takeover."""

    old: int
    new: int
    relation: str  # "your-hparent" | "your-hchild" | "your-parent"

    def id_count(self) -> int:
        return 4


@dataclass(frozen=True)
class AnchorIs(Message):
    """Bypass brokerage: 'the occupant of my leaf slot is ``anchor``'
    (sent by a bypassed ready heir to the new RT neighbor)."""

    slot_standin: int
    anchor: Ref

    def id_count(self) -> int:
        return 4


@dataclass(frozen=True)
class ReparentTo(Message):
    """Bypass brokerage: 'your parent-side endpoint is now ``target``'."""

    target: Ref
    # which of the recipient's upward links to rewrite:
    relation: str  # "real-parent" | "hparent"

    def id_count(self) -> int:
        return 3


@dataclass(frozen=True)
class ChildHello(Message):
    """Edge establishment: 'my ``kind`` endpoint now attaches below your
    ``target_kind`` endpoint'."""

    child_ref: Ref
    target_kind: str  # "real" | "helper"

    def id_count(self) -> int:
        return 3


@dataclass(frozen=True)
class RemoveHChild(Message):
    """'My helper vanished; drop it from your children' (cascade step)."""

    gone: Ref

    def id_count(self) -> int:
        return 3


@dataclass(frozen=True)
class InsertRequest(Message):
    """Churn model: a joining node asks a live node to adopt it as a new
    child slot (the INSERT handshake's first half).

    ``final`` supports batch insert waves: when ``False``, more requests
    of the same wave follow for this attachment point, so the adoptee's
    will-portion retransmissions are deferred and coalesced until the
    final request arrives — that is the amortization that makes waves
    cost one portion pass per touched stand-in rather than one per
    joiner.  A lone insert is simply a wave of one (``final=True``)."""

    child_ref: Ref
    final: bool = True

    def id_count(self) -> int:
        return 3


@dataclass(frozen=True)
class InsertAck(Message):
    """Churn model: the attachment point confirms adoption and hands the
    joiner its parent link (the INSERT handshake's second half)."""

    parent_ref: Ref

    def id_count(self) -> int:
        return 3


@dataclass(frozen=True)
class LeafWillRetract(Message):
    """'I stopped being a tree leaf (a node joined under me): discard the
    leaf will I deposited with you.'"""

    def id_count(self) -> int:
        return 2
