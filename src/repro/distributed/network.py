"""Synchronous message-passing network simulator.

The model (Section 2): after each deletion, the neighbors of the deleted
vertex are informed; nodes then communicate asynchronously in parallel with
immediate neighbors (messages may carry names of other vertices, and a node
may then insert edges joining it to those named nodes).  We simulate this
with *sub-rounds*: all messages sent in sub-round t are delivered at
sub-round t+1.  The recovery latency of a heal round is its number of
sub-rounds, which Theorem 1.3 bounds by O(1).

The network counts, per heal round and per node, messages sent, messages
received, and id-bits carried — the quantities of success metrics 3 and 4
of Model 2.1.
"""

from __future__ import annotations

import math
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from ..core.errors import ProtocolError
from .messages import Message

if TYPE_CHECKING:  # pragma: no cover
    from .node import ProtocolNode


@dataclass
class RoundStats:
    """Communication accounting for one heal round.

    ``dead_drops`` counts messages whose recipient was gone at delivery
    time (deleted this round, or crashed without announcing) — dropped
    permanently, but never silently: the reliable-delivery layer of the
    async kernel retransmits *lost* messages, and this tally is how it
    (and the tests) distinguish "recipient dead" from "message lost".
    """

    round: int
    sub_rounds: int = 0
    sent: Dict[int, int] = field(default_factory=dict)
    received: Dict[int, int] = field(default_factory=dict)
    bits: int = 0
    dead_drops: int = 0

    @property
    def total_messages(self) -> int:
        return sum(self.sent.values())

    @property
    def max_sent_per_node(self) -> int:
        return max(self.sent.values(), default=0)

    @property
    def max_received_per_node(self) -> int:
        return max(self.received.values(), default=0)


class Network:
    """Routes messages between protocol nodes in synchronous sub-rounds."""

    def __init__(self, max_sub_rounds: int = 64):
        self.nodes: Dict[int, "ProtocolNode"] = {}
        self._outbox: deque = deque()
        self.max_sub_rounds = max_sub_rounds
        self.stats_history: List[RoundStats] = []
        self._current: Optional[RoundStats] = None
        self._id_bits = 1

    # -- membership -------------------------------------------------------
    def register(self, node: "ProtocolNode") -> None:
        self.nodes[node.nid] = node
        node.network = self
        self._id_bits = max(1, math.ceil(math.log2(max(len(self.nodes), 2))))

    def remove(self, nid: int) -> "ProtocolNode":
        return self.nodes.pop(nid)

    def __contains__(self, nid: int) -> bool:
        return nid in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)

    # -- observability ----------------------------------------------------
    def trace_instant(self, name: str, **args) -> None:
        """Driver-level trace mark.  The synchronous network records no
        trace (there is no virtual clock to stamp it with); the async
        kernel overrides this to feed the attached tracer, so the
        protocol drivers can emit marks transport-agnostically."""

    # -- messaging --------------------------------------------------------
    def send(self, message: Message) -> None:
        """Queue a message for the next sub-round."""
        if self._current is not None:
            self._current.sent[message.sender] = (
                self._current.sent.get(message.sender, 0) + 1
            )
            self._current.bits += message.id_count() * self._id_bits + 8
        self._outbox.append(message)

    def run_round(self, round_no: int) -> RoundStats:
        """Deliver queued messages until quiescence; return the stats."""
        stats = self._current or RoundStats(round=round_no)
        stats.round = round_no
        self._current = stats
        while self._outbox:
            stats.sub_rounds += 1
            if stats.sub_rounds > self.max_sub_rounds:
                raise ProtocolError(
                    f"round {round_no}: no quiescence after "
                    f"{self.max_sub_rounds} sub-rounds"
                )
            batch = list(self._outbox)
            self._outbox.clear()
            for message in batch:
                node = self.nodes.get(message.recipient)
                if node is None:
                    # Recipient died this round; the drop is counted,
                    # never silent (see RoundStats.dead_drops).
                    stats.dead_drops += 1
                    continue
                stats.received[message.recipient] = (
                    stats.received.get(message.recipient, 0) + 1
                )
                node.handle(message)
        self._current = None
        self.stats_history.append(stats)
        return stats

    def begin_round(self, round_no: int) -> None:
        """Open an accounting window before injecting notifications."""
        self._current = RoundStats(round=round_no)

    # -- derived global views (used by tests and validation only) ---------
    def image_edges(self) -> set:
        """Edge set derived from both endpoints' local state.

        Strict symmetry: an edge counts only if *both* sides claim it; an
        edge claimed by a single side raises, catching protocol bugs.
        """
        claims: Dict[tuple, set] = defaultdict(set)
        for nid, node in self.nodes.items():
            for other in node.neighbor_claims():
                if other == nid:
                    continue
                key = (min(nid, other), max(nid, other))
                claims[key].add(nid)
        edges = set()
        for key, claimants in claims.items():
            if len(claimants) != 2:
                one = next(iter(claimants))
                raise ProtocolError(
                    f"asymmetric edge {key}: only {one} claims it"
                )
            edges.add(key)
        return edges
