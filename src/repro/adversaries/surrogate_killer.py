"""The Θ(n)-degree attack on surrogate healing (Section 1, "Our Results").

"A naive approach ... is simply to 'surrogate' one neighbor of the deleted
node to take on the role of the deleted node ... an intelligent adversary
can always cause this approach to increase the degree of some node by Θ(n)."

The attack: repeatedly delete the current *highest-degree* survivor.  Under
surrogate healing, each such deletion dumps the hub's edges onto one of its
neighbors — a node whose original degree was small — creating a new
over-degree hub, which is deleted next, and so on.  The maximum degree
increase grows linearly while the Forgiving Tree holds it at three under
the very same attack (benchmark EXP-BASE-DEG).
"""

from __future__ import annotations

from ..baselines.base import Healer
from .base import Adversary


class SurrogateKillerAdversary(Adversary):
    """Deletes the max-degree survivor, tie-breaking toward the node whose
    surrogate would suffer the largest degree *increase* (white-box twist
    exploiting the deterministic smallest-id surrogate rule)."""

    name = "surrogate-killer"

    def choose(self, healer: Healer) -> int:
        graph = healer.graph()
        if len(graph) == 1:
            return next(iter(graph))
        max_deg = max(len(s) for s in graph.values())
        hubs = sorted(n for n, s in graph.items() if len(s) == max_deg)

        def surrogate_pain(victim: int) -> int:
            neighbors = graph[victim]
            if not neighbors:
                return -1
            surrogate = min(neighbors)
            # Edges the surrogate would absorb beyond what it already has.
            absorbed = len(neighbors - graph[surrogate] - {surrogate})
            return absorbed

        return max(hubs, key=lambda h: (surrogate_pain(h), -h))
