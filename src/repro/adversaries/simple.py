"""Topology-driven adversaries (no lookahead)."""

from __future__ import annotations

import random
from typing import Optional

from ..baselines.base import Healer
from ..graphs.metrics import center
from .base import Adversary


class RandomAdversary(Adversary):
    """Deletes a uniformly random survivor (baseline noise)."""

    name = "random"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(self, healer: Healer) -> int:
        return self._rng.choice(sorted(healer.alive))

    def reset(self) -> None:
        self._rng = random.Random(self.seed)


class MaxDegreeAdversary(Adversary):
    """Always deletes the highest-degree survivor (hub attack).

    This is the attack that breaks power-law overlays in the cascading-
    failure literature the paper cites; ties break to the smallest id for
    determinism.
    """

    name = "max-degree"

    def choose(self, healer: Healer) -> int:
        graph = healer.graph()
        return max(sorted(graph), key=lambda n: len(graph[n]))


class MinDegreeAdversary(Adversary):
    """Always deletes a lowest-degree survivor (leaf-first attack).

    Exercises the leaf-will machinery (Algorithm 3.7) heavily: every
    deletion is a ``FixLeafDeletion``.
    """

    name = "min-degree"

    def choose(self, healer: Healer) -> int:
        graph = healer.graph()
        return min(sorted(graph), key=lambda n: len(graph[n]))


class CenterAdversary(Adversary):
    """Deletes a center (minimum-eccentricity node) of the healed graph.

    Greedy diameter pressure without lookahead: removing central nodes
    forces detours through the reconstruction trees.
    """

    name = "center"

    def choose(self, healer: Healer) -> int:
        graph = healer.graph()
        if len(graph) == 1:
            return next(iter(graph))
        return min(center(graph))


class RootAdversary(Adversary):
    """Deletes the smallest surviving id each round.

    On BFS trees rooted at the minimum id this repeatedly decapitates the
    root region, stressing heir promotion chains.
    """

    name = "root"

    def choose(self, healer: Healer) -> int:
        return min(healer.alive)
