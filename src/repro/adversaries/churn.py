"""Churn adversaries: strategies over mixed insert/delete streams.

The churn game (The Forgiving Graph, PODC 2009) lets the omniscient
adversary *insert* nodes as well as delete them.  A
:class:`ChurnAdversary` emits one :class:`~repro.churn.ChurnEvent` per
round after seeing the current healed network:

* :class:`RandomChurnAdversary` — Bernoulli coin per round between a
  join (fresh node, configurable attachment preference) and a uniform
  deletion; the baseline churn workload.
* :class:`GrowthThenMassacreAdversary` — grow the network by a join
  wave, then hand victim choice to any deletion
  :class:`~repro.adversaries.base.Adversary` (default: hub-killing) —
  the "build it up, then tear it down" attack.
* :class:`OscillatingChurnAdversary` — alternating join and leave
  phases of fixed length, modeling diurnal churn.
* :class:`TraceReplayAdversary` — replays a recorded
  :class:`~repro.churn.ChurnTrace` exactly and fails loudly on an
  inconsistent trace.
* :class:`ScatterChurnAdversary` / :class:`OverlapChurnAdversary` —
  the async-transport pair: scatter keeps consecutive heal regions
  *disjoint* (maximizing concurrency), overlap deliberately fires the
  next event *inside* a recent heal's region (and sometimes at its
  would-be coordinator), the worst case for the region-lease handoff
  protocol.  Both probe regions through the shared :func:`region_ball`
  helper.

Deletion-only strategies compose: :class:`DeletionOnlyChurnAdversary`
lifts any classic :class:`Adversary` into the churn interface.
"""

from __future__ import annotations

import abc
import random
from typing import Optional

from ..baselines.base import Healer
from ..churn.events import ChurnEvent, Delete, Insert, InsertWave
from ..churn.traces import ChurnTrace
from ..core.errors import ReproError, SimulationOverError
from .base import Adversary
from .simple import MaxDegreeAdversary


class ChurnAdversary(abc.ABC):
    """Chooses the next churn event each round (insert or delete).

    Like the deletion adversaries, churn adversaries are omniscient:
    they see the healed graph before every choice.  Inserted node ids
    are always fresh — ids are never reused across the whole campaign.
    """

    name: str = "abstract-churn"

    def __init__(self) -> None:
        self._next_id: Optional[int] = None

    @abc.abstractmethod
    def next_event(self, healer: Healer) -> ChurnEvent:
        """Return the next event (insert target must be alive)."""

    def reset(self) -> None:
        """Forget any per-campaign state (called between runs)."""
        self._next_id = None

    def _fresh_id(self, healer: Healer) -> int:
        """A node id never seen before (monotone counter).

        Seeds from every id the healer has *ever* seen — not just the
        alive set: if the highest-id node died before the first insert,
        ``max(alive) + 1`` would re-issue its id."""
        if self._next_id is None:
            known = getattr(healer, "known_ids", None) or healer.alive
            self._next_id = max(known, default=-1) + 1
        nid = self._next_id
        self._next_id += 1
        return nid


def region_ball(graph, centers, radius: int) -> set:
    """Union of the ``radius``-hop balls around ``centers`` in ``graph``.

    The shared region-probing primitive of the concurrency-aware churn
    adversaries: a heal's footprint is concentrated around its trigger,
    so the ball around recent victims/attachment points approximates the
    in-flight regions — scatter avoids it, overlap aims into it.  Dead
    centers (no longer in the graph) contribute nothing.
    """
    ball: set = set()
    for center in centers:
        if center not in graph:
            continue
        seen = {center}
        frontier = [center]
        for _ in range(radius):
            frontier = [m for x in frontier for m in graph[x] if m not in seen]
            seen.update(frontier)
        ball |= seen
    return ball


def _pick_attachment(
    healer: Healer,
    rng: random.Random,
    prefer: str,
    alive: Optional[list] = None,
    graph=None,
) -> int:
    """Choose a live attachment point: uniform, hub-seeking, or leaf.

    ``alive`` (sorted) and ``graph`` may be passed in when the caller
    already has them — a wave adversary picks many attachment points per
    event and should not re-sort or re-copy per joiner.
    """
    if alive is None:
        alive = sorted(healer.alive)
    if not alive:
        raise SimulationOverError("no live node to attach to")
    if prefer == "random":
        return rng.choice(alive)
    if graph is None:
        graph = healer.graph()
    if prefer == "hub":
        return max(alive, key=lambda x: (len(graph[x]), -x))
    if prefer == "leaf":
        return min(alive, key=lambda x: (len(graph[x]), x))
    raise ValueError(f"unknown attachment preference {prefer!r}")


class RandomChurnAdversary(ChurnAdversary):
    """Coin-flip churn: insert with probability ``p_insert``, else delete
    a uniform victim.  Forces a join when one node remains so campaigns
    of any length stay playable.

    ``fast_sample=True`` opts into the healer's O(1) ``sample_alive``
    capability for uniform picks instead of the classic
    ``sorted(alive)`` draw — same uniform distribution, but a *different*
    (still seed-deterministic) random stream, so it is opt-in: committed
    baselines and regression traces keep the classic stream.  Without
    the capability (or with ``attach != "random"``) it falls back to the
    classic path.  The sorted draw is O(n log n) per event — the single
    largest harness cost at ladder scale (n = 10k..1M)."""

    name = "random-churn"

    def __init__(
        self,
        p_insert: float = 0.5,
        seed: int = 0,
        attach: str = "random",
        fast_sample: bool = False,
    ) -> None:
        super().__init__()
        if not 0.0 <= p_insert <= 1.0:
            raise ValueError("p_insert must be within [0, 1]")
        self.p_insert = p_insert
        self.seed = seed
        self.attach = attach
        self.fast_sample = fast_sample
        self._rng = random.Random(seed)

    def next_event(self, healer: Healer) -> ChurnEvent:
        sampler = (
            getattr(healer, "sample_alive", None)
            if self.fast_sample and self.attach == "random"
            else None
        )
        if sampler is not None:
            n_alive = len(healer.alive)
            if not n_alive:
                raise SimulationOverError("network is empty")
            if n_alive <= 1 or self._rng.random() < self.p_insert:
                return Insert(self._fresh_id(healer), sampler(self._rng))
            return Delete(sampler(self._rng))
        alive = sorted(healer.alive)
        if not alive:
            raise SimulationOverError("network is empty")
        if len(alive) <= 1 or self._rng.random() < self.p_insert:
            target = _pick_attachment(healer, self._rng, self.attach)
            return Insert(self._fresh_id(healer), target)
        return Delete(self._rng.choice(alive))

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.seed)


class WaveChurnAdversary(ChurnAdversary):
    """Batch churn: whole join *waves* against single deletions.

    With probability ``p_wave`` the round is an :class:`InsertWave` of
    ``wave`` fresh joiners, each attached to an independently chosen live
    node (attachment points are drawn from the pre-wave alive set, so the
    wave satisfies the engines' batch semantics by construction);
    otherwise a uniform victim is deleted.  Models flash-crowd joins —
    the workload the amortized ``insert_batch`` path exists for."""

    name = "wave-churn"

    def __init__(
        self,
        wave: int = 8,
        p_wave: float = 0.5,
        seed: int = 0,
        attach: str = "random",
    ) -> None:
        super().__init__()
        if wave < 1:
            raise ValueError("wave must be >= 1")
        if not 0.0 <= p_wave <= 1.0:
            raise ValueError("p_wave must be within [0, 1]")
        self.wave = wave
        self.p_wave = p_wave
        self.seed = seed
        self.attach = attach
        self._rng = random.Random(seed)

    def next_event(self, healer: Healer) -> ChurnEvent:
        alive = sorted(healer.alive)
        if not alive:
            raise SimulationOverError("network is empty")
        if len(alive) <= 1 or self._rng.random() < self.p_wave:
            # Attachment points are chosen against the pre-wave state
            # (wave semantics), so alive/graph are computed once per wave.
            graph = healer.graph() if self.attach in ("hub", "leaf") else None
            joiners = tuple(
                (
                    self._fresh_id(healer),
                    _pick_attachment(
                        healer, self._rng, self.attach, alive=alive, graph=graph
                    ),
                )
                for _ in range(self.wave)
            )
            return InsertWave(joiners)
        return Delete(self._rng.choice(alive))

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.seed)


class ScatterChurnAdversary(ChurnAdversary):
    """Concurrency-seeking churn: consecutive events far apart.

    Built for the async transport (``transport="async"`` campaigns):
    each event avoids the ``radius``-hop neighborhoods of the last
    ``spread`` victims/attachment points, so consecutive heals touch
    disjoint regions and can stay *in flight simultaneously* instead of
    being serialized behind conflict barriers.  With probability
    ``p_insert`` the event is a join (attached to a scattered node),
    otherwise a scattered deletion.  Falls back to uniform choice when
    the hot zone swallows the whole alive set.
    """

    name = "scatter-churn"

    def __init__(
        self,
        p_insert: float = 0.2,
        spread: int = 8,
        radius: int = 2,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not 0.0 <= p_insert <= 1.0:
            raise ValueError("p_insert must be within [0, 1]")
        if spread < 0 or radius < 0:
            raise ValueError("spread and radius must be >= 0")
        self.p_insert = p_insert
        self.spread = spread
        self.radius = radius
        self.seed = seed
        self._rng = random.Random(seed)
        self._recent: list = []

    def _scattered_pick(self, healer: Healer, alive: list) -> int:
        hot = region_ball(healer.graph(), self._recent, self.radius)
        cold = [x for x in alive if x not in hot]
        choice = self._rng.choice(cold if cold else alive)
        self._recent.append(choice)
        if len(self._recent) > self.spread:
            self._recent.pop(0)
        return choice

    def next_event(self, healer: Healer) -> ChurnEvent:
        alive = sorted(healer.alive)
        if not alive:
            raise SimulationOverError("network is empty")
        if len(alive) <= 1 or self._rng.random() < self.p_insert:
            return Insert(self._fresh_id(healer), self._scattered_pick(healer, alive))
        return Delete(self._scattered_pick(healer, alive))

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.seed)
        self._recent = []


class OverlapChurnAdversary(ChurnAdversary):
    """Conflict-seeking churn: events deliberately land inside the
    regions of recent heals.

    The adversarial mirror of :class:`ScatterChurnAdversary`, built for
    the region-lease overlap policy (``overlap="lease"`` campaigns):
    with probability ``p_overlap`` the next victim (or attachment point)
    is drawn from the :func:`region_ball` around the last ``spread``
    event centers — on the async transport those regions are typically
    *still healing*, so the event's footprint intersects an in-flight
    repair and must go through coordinator handoff.  With probability
    ``p_coordinator`` the victim is a recorded **coordinator candidate**
    (the smallest-id image neighbor of a recent victim at its deletion
    time — the node the protocols elect to coordinate that heal), the
    shot that exercises the coordinator-death escalation.  Remaining
    rounds fall back to uniform churn; ``p_insert`` splits joins from
    deletions throughout.
    """

    name = "overlap-churn"

    def __init__(
        self,
        p_insert: float = 0.2,
        p_overlap: float = 0.65,
        p_coordinator: float = 0.1,
        spread: int = 6,
        radius: int = 2,
        seed: int = 0,
    ) -> None:
        super().__init__()
        for label, p in (
            ("p_insert", p_insert),
            ("p_overlap", p_overlap),
            ("p_coordinator", p_coordinator),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{label} must be within [0, 1]")
        if spread < 1 or radius < 0:
            raise ValueError("spread must be >= 1 and radius >= 0")
        self.p_insert = p_insert
        self.p_overlap = p_overlap
        self.p_coordinator = p_coordinator
        self.spread = spread
        self.radius = radius
        self.seed = seed
        self._rng = random.Random(seed)
        self._recent: list = []
        self._coordinators: list = []

    def _remember(self, center: int, graph) -> None:
        # A deletion's heal region lives around the victim's *surviving
        # neighbors* (the victim itself leaves the graph, so a ball
        # centered on it alone would evaporate); remember those as the
        # event's anchor group, plus the center for insertions.  One
        # group per event, the last ``spread`` events kept — the same
        # event-counting semantics ``spread`` has for the scatter
        # adversary.
        neighbors = sorted(m for m in graph.get(center, ()) if m != center)
        self._recent.append((center, *neighbors[:3]))
        if len(self._recent) > self.spread:
            self._recent.pop(0)
        # The would-be coordinator of this event's heal: the smallest-id
        # surviving neighbor (the election rule both protocols share).
        if neighbors:
            self._coordinators.append(neighbors[0])
            if len(self._coordinators) > self.spread:
                self._coordinators.pop(0)

    def _anchors(self) -> list:
        return [a for group in self._recent for a in group]

    def _overlapping_pick(self, healer: Healer, alive: list) -> int:
        graph = healer.graph()
        hot = sorted(region_ball(graph, self._anchors(), self.radius) & set(alive))
        choice = self._rng.choice(hot if hot else alive)
        self._remember(choice, graph)
        return choice

    def _uniform_pick(self, healer: Healer, alive: list) -> int:
        choice = self._rng.choice(alive)
        self._remember(choice, healer.graph())
        return choice

    def next_event(self, healer: Healer) -> ChurnEvent:
        alive = sorted(healer.alive)
        if not alive:
            raise SimulationOverError("network is empty")
        if len(alive) <= 1 or self._rng.random() < self.p_insert:
            pick = (
                self._overlapping_pick(healer, alive)
                if self._rng.random() < self.p_overlap
                else self._uniform_pick(healer, alive)
            )
            return Insert(self._fresh_id(healer), pick)
        if self._rng.random() < self.p_coordinator:
            live_coords = [c for c in self._coordinators if c in healer.alive]
            if live_coords:
                victim = self._rng.choice(sorted(set(live_coords)))
                self._remember(victim, healer.graph())
                return Delete(victim)
        if self._rng.random() < self.p_overlap:
            return Delete(self._overlapping_pick(healer, alive))
        return Delete(self._uniform_pick(healer, alive))

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.seed)
        self._recent = []
        self._coordinators = []


class HostileChurnAdversary(ChurnAdversary):
    """Deletion-heavy hot-region churn, tuned for hostile networks.

    The fault subsystem's companion adversary (``faults=`` campaigns):
    where :class:`OverlapChurnAdversary` maximizes *admission* conflict,
    this one maximizes what a lossy, crashing network stresses —
    deletions dominate (each one fans a heal out over links that drop
    and duplicate, and every heal is a crash-during-heal target), and
    victims concentrate in a slowly drifting **hot region** (the ball
    around recent victims' survivors), so repeated heals rework the
    same overlay neighborhood that a crash may have just corrupted and
    a repair pass just rebuilt.  ``p_insert`` keeps a trickle of joins
    so the network does not simply evaporate; attachment points land in
    the hot region too.
    """

    name = "hostile-churn"

    def __init__(
        self,
        p_insert: float = 0.1,
        p_hot: float = 0.75,
        spread: int = 4,
        radius: int = 2,
        seed: int = 0,
    ) -> None:
        super().__init__()
        for label, p in (("p_insert", p_insert), ("p_hot", p_hot)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{label} must be within [0, 1]")
        if spread < 1 or radius < 0:
            raise ValueError("spread must be >= 1 and radius >= 0")
        self.p_insert = p_insert
        self.p_hot = p_hot
        self.spread = spread
        self.radius = radius
        self.seed = seed
        self._rng = random.Random(seed)
        self._recent: list = []

    def _remember(self, center: int, graph) -> None:
        neighbors = sorted(m for m in graph.get(center, ()) if m != center)
        self._recent.append((center, *neighbors[:3]))
        if len(self._recent) > self.spread:
            self._recent.pop(0)

    def _pick(self, healer: Healer, alive: list) -> int:
        graph = healer.graph()
        if self._rng.random() < self.p_hot and self._recent:
            anchors = [a for group in self._recent for a in group]
            hot = sorted(region_ball(graph, anchors, self.radius) & set(alive))
            choice = self._rng.choice(hot if hot else alive)
        else:
            choice = self._rng.choice(alive)
        self._remember(choice, graph)
        return choice

    def next_event(self, healer: Healer) -> ChurnEvent:
        alive = sorted(healer.alive)
        if not alive:
            raise SimulationOverError("network is empty")
        if len(alive) <= 1 or self._rng.random() < self.p_insert:
            return Insert(self._fresh_id(healer), self._pick(healer, alive))
        return Delete(self._pick(healer, alive))

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.seed)
        self._recent = []


class GrowthThenMassacreAdversary(ChurnAdversary):
    """``growth`` joins first, then pure deletions chosen by ``killer``.

    The default killer is the hub attack
    (:class:`~repro.adversaries.MaxDegreeAdversary`): let the healer
    integrate a join wave, then test whether the grown structure still
    heals under the classic overlay attack."""

    name = "growth-then-massacre"

    def __init__(
        self,
        growth: int = 50,
        killer: Optional[Adversary] = None,
        seed: int = 0,
        attach: str = "hub",
    ) -> None:
        super().__init__()
        self.growth = growth
        self.killer = killer if killer is not None else MaxDegreeAdversary()
        self.seed = seed
        self.attach = attach
        self._rng = random.Random(seed)
        self._joined = 0

    def next_event(self, healer: Healer) -> ChurnEvent:
        if self._joined < self.growth:
            self._joined += 1
            target = _pick_attachment(healer, self._rng, self.attach)
            return Insert(self._fresh_id(healer), target)
        return Delete(self.killer.choose(healer))

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.seed)
        self._joined = 0
        self.killer.reset()


class OscillatingChurnAdversary(ChurnAdversary):
    """Joins for ``period`` rounds, leaves for ``period`` rounds, repeat.

    Models diurnal membership swings; the leave phase deletes uniform
    victims (joining when a leave would empty the network)."""

    name = "oscillating-churn"

    def __init__(self, period: int = 20, seed: int = 0, attach: str = "random"):
        super().__init__()
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = period
        self.seed = seed
        self.attach = attach
        self._rng = random.Random(seed)
        self._tick = 0

    def next_event(self, healer: Healer) -> ChurnEvent:
        phase_join = (self._tick // self.period) % 2 == 0
        self._tick += 1
        alive = sorted(healer.alive)
        if not alive:
            raise SimulationOverError("network is empty")
        if phase_join or len(alive) <= 1:
            target = _pick_attachment(healer, self._rng, self.attach)
            return Insert(self._fresh_id(healer), target)
        return Delete(self._rng.choice(alive))

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.seed)
        self._tick = 0


class TraceReplayAdversary(ChurnAdversary):
    """Replays a recorded :class:`~repro.churn.ChurnTrace` exactly.

    Strict like :class:`~repro.adversaries.ScriptedAdversary`: a victim
    that is already dead or an attachment point that is not alive raises
    :class:`~repro.core.errors.ReproError` — the trace is part of the
    experiment's specification."""

    name = "trace-replay"

    def __init__(self, trace: ChurnTrace):
        super().__init__()
        self.trace = trace
        self._pos = 0

    def next_event(self, healer: Healer) -> ChurnEvent:
        if self._pos >= len(self.trace.events):
            raise SimulationOverError("trace exhausted")
        event = self.trace.events[self._pos]
        self._pos += 1
        alive = healer.alive
        if isinstance(event, Delete) and event.nid not in alive:
            raise ReproError(f"trace victim {event.nid} is already deleted")
        if isinstance(event, Insert) and event.attach_to not in alive:
            raise ReproError(
                f"trace attach point {event.attach_to} is not alive"
            )
        return event

    def reset(self) -> None:
        super().reset()
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self.trace.events) - self._pos


class DeletionOnlyChurnAdversary(ChurnAdversary):
    """Lift a classic deletion adversary into the churn interface."""

    name = "deletion-only"

    def __init__(self, inner: Adversary):
        super().__init__()
        self.inner = inner
        self.name = f"deletion-only({inner.name})"

    def next_event(self, healer: Healer) -> ChurnEvent:
        return Delete(self.inner.choose(healer))

    def reset(self) -> None:
        super().reset()
        self.inner.reset()


CHURN_ADVERSARY_CATALOG = {
    cls.name: cls
    for cls in (
        RandomChurnAdversary,
        WaveChurnAdversary,
        ScatterChurnAdversary,
        OverlapChurnAdversary,
        HostileChurnAdversary,
        GrowthThenMassacreAdversary,
        OscillatingChurnAdversary,
        TraceReplayAdversary,
    )
}
