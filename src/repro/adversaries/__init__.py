"""Adversary strategies for the Delete and Repair game.

The paper's adversary is *omniscient*: it "knows the network topology and
our algorithms" and picks each victim after seeing the healed graph.  These
strategies realize the attacks the paper reasons about:

* :class:`RandomAdversary` — baseline noise.
* :class:`MaxDegreeAdversary` — always the highest-degree survivor
  (hub-killing; the classic overlay attack).
* :class:`MinDegreeAdversary` — leaf-first deletion (stresses leaf wills).
* :class:`CenterAdversary` — always a center of the current graph
  (diameter-focused).
* :class:`SurrogateKillerAdversary` — the intro's Θ(n)-degree attack on
  surrogate healing: kill the current surrogate's neighbors so their edges
  pile onto it.
* :class:`DiameterGreedyAdversary` — one-step lookahead maximizing the
  post-heal diameter (expensive; used at modest n).
* :class:`DegreeGreedyAdversary` — one-step lookahead maximizing the
  post-heal max degree increase.
* :class:`FixedOrderAdversary` / :class:`ScriptedAdversary` — replay a
  given order (used by the figure reproductions).

Churn adversaries (mixed insert/delete streams, the Forgiving Graph
model) live in :mod:`repro.adversaries.churn`:
:class:`RandomChurnAdversary`, :class:`WaveChurnAdversary` (batch join
waves), :class:`ScatterChurnAdversary` (region-disjoint events, built
for the async transport's concurrent heals),
:class:`OverlapChurnAdversary` (events aimed *inside* in-flight heal
regions — the region-lease handoff stressor),
:class:`GrowthThenMassacreAdversary`,
:class:`OscillatingChurnAdversary`, :class:`TraceReplayAdversary`, and
the :class:`DeletionOnlyChurnAdversary` adapter.
"""

from .base import Adversary, FixedOrderAdversary, ScriptedAdversary
from .churn import (
    CHURN_ADVERSARY_CATALOG,
    ChurnAdversary,
    DeletionOnlyChurnAdversary,
    GrowthThenMassacreAdversary,
    HostileChurnAdversary,
    OscillatingChurnAdversary,
    OverlapChurnAdversary,
    RandomChurnAdversary,
    ScatterChurnAdversary,
    TraceReplayAdversary,
    WaveChurnAdversary,
    region_ball,
)
from .simple import (
    CenterAdversary,
    MaxDegreeAdversary,
    MinDegreeAdversary,
    RandomAdversary,
    RootAdversary,
)
from .greedy import DegreeGreedyAdversary, DiameterGreedyAdversary
from .surrogate_killer import SurrogateKillerAdversary

ADVERSARY_CATALOG = {
    cls.name: cls
    for cls in (
        RandomAdversary,
        MaxDegreeAdversary,
        MinDegreeAdversary,
        CenterAdversary,
        RootAdversary,
        SurrogateKillerAdversary,
        DiameterGreedyAdversary,
        DegreeGreedyAdversary,
    )
}

__all__ = [
    "ADVERSARY_CATALOG",
    "CHURN_ADVERSARY_CATALOG",
    "Adversary",
    "CenterAdversary",
    "ChurnAdversary",
    "DegreeGreedyAdversary",
    "DeletionOnlyChurnAdversary",
    "DiameterGreedyAdversary",
    "FixedOrderAdversary",
    "GrowthThenMassacreAdversary",
    "HostileChurnAdversary",
    "MaxDegreeAdversary",
    "MinDegreeAdversary",
    "OscillatingChurnAdversary",
    "OverlapChurnAdversary",
    "RandomAdversary",
    "RandomChurnAdversary",
    "RootAdversary",
    "ScatterChurnAdversary",
    "ScriptedAdversary",
    "SurrogateKillerAdversary",
    "TraceReplayAdversary",
    "WaveChurnAdversary",
    "region_ball",
]
