"""Adversary interface and scripted adversaries."""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional, Sequence

from ..baselines.base import Healer
from ..core.errors import ReproError, SimulationOverError


class Adversary(abc.ABC):
    """Chooses which node to delete each round.

    The adversary is *omniscient* (Section 1): it sees the current healed
    graph — and, for the white-box strategies, the healer object itself —
    before every choice.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def choose(self, healer: Healer) -> int:
        """Return the id of the next victim (must be alive)."""

    def reset(self) -> None:
        """Forget any per-campaign state (called between runs)."""


class FixedOrderAdversary(Adversary):
    """Deletes nodes in a predetermined order, skipping already-dead ones."""

    name = "fixed-order"

    def __init__(self, order: Sequence[int]):
        self._order: List[int] = list(order)
        self._pos = 0

    def choose(self, healer: Healer) -> int:
        alive = healer.alive
        while self._pos < len(self._order):
            candidate = self._order[self._pos]
            self._pos += 1
            if candidate in alive:
                return candidate
        raise SimulationOverError("scripted order exhausted")

    def reset(self) -> None:
        self._pos = 0


class ScriptedAdversary(Adversary):
    """Replays an exact script and *fails* if a victim is already dead.

    Used by the figure reproductions, where the deletion sequence is part
    of the specification.
    """

    name = "scripted"

    def __init__(self, script: Iterable[int]):
        self._script: List[int] = list(script)
        self._pos = 0

    def choose(self, healer: Healer) -> int:
        if self._pos >= len(self._script):
            raise SimulationOverError("script exhausted")
        victim = self._script[self._pos]
        self._pos += 1
        if victim not in healer.alive:
            raise ReproError(f"scripted victim {victim} is already deleted")
        return victim

    def reset(self) -> None:
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._script) - self._pos
