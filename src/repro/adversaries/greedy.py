"""Omniscient one-step-lookahead adversaries.

These realize the paper's adversary model most literally: the adversary
"knows the network topology and our algorithms".  Each round it *simulates*
deleting every candidate on a deep copy of the healer and keeps the victim
whose healed result maximizes the target metric.  O(n) candidate trials per
round make these O(n²·heal) per campaign — used by the benchmarks at modest
sizes, which is where the Θ(n) baseline blow-ups already show clearly.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterable, Optional

from ..baselines.base import Healer
from ..graphs.metrics import diameter_double_sweep
from .base import Adversary


class _LookaheadAdversary(Adversary):
    """Shared simulate-every-candidate machinery."""

    #: cap on candidates tried per round (all if 0)
    max_candidates: int = 0

    def _score(self, healer: Healer) -> float:
        raise NotImplementedError

    def _candidates(self, healer: Healer) -> Iterable[int]:
        alive = sorted(healer.alive)
        if self.max_candidates and len(alive) > self.max_candidates:
            # Deterministic thinning: evenly spaced candidates.
            step = len(alive) / self.max_candidates
            return [alive[int(i * step)] for i in range(self.max_candidates)]
        return alive

    def choose(self, healer: Healer) -> int:
        best_victim: Optional[int] = None
        best_score = float("-inf")
        for victim in self._candidates(healer):
            trial = copy.deepcopy(healer)
            try:
                trial.delete(victim)
            except Exception:
                continue
            score = self._score(trial) if trial.alive else float("-inf")
            if score > best_score:
                best_score = score
                best_victim = victim
        if best_victim is None:  # every simulation failed: fall back
            best_victim = min(healer.alive)
        return best_victim


class DiameterGreedyAdversary(_LookaheadAdversary):
    """Maximizes the post-heal diameter (double-sweep; exact on trees)."""

    name = "diameter-greedy"

    def __init__(self, max_candidates: int = 0):
        self.max_candidates = max_candidates

    def _score(self, healer: Healer) -> float:
        graph = healer.graph()
        if len(graph) <= 1:
            return 0.0
        from ..graphs.adjacency import is_connected

        if not is_connected(graph):
            return float("inf")  # a disconnection is the ultimate stretch
        return float(diameter_double_sweep(graph))


class DegreeGreedyAdversary(_LookaheadAdversary):
    """Maximizes the post-heal maximum degree increase."""

    name = "degree-greedy"

    def __init__(self, max_candidates: int = 0):
        self.max_candidates = max_candidates

    def _score(self, healer: Healer) -> float:
        return float(healer.max_degree_increase())
