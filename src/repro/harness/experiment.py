"""Attack/heal campaign loop and time-series collection.

A *campaign* plays the Delete and Repair game: an adversary picks victims,
a healer repairs, and we record the paper's success metrics each round
(Model 2.1): max degree increase, diameter (and stretch), connectivity, and
communication.  :func:`run_churn_campaign` plays the extended churn game
(the Forgiving Graph model): the adversary emits a mixed insert/delete
stream and the per-round records additionally track alive-set growth.
Campaigns power every benchmark table.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from ..adversaries.base import Adversary
from ..adversaries.churn import ChurnAdversary
from ..audit.certify import AuditInputs, AuditReport
from ..audit.schema import HealDelta, normalize_edges
from ..baselines.base import Healer
from ..churn.events import Delete, Insert, InsertWave
from ..core.errors import NotATreeError, ReproError, SimulationOverError
from ..core.events import HealReport
from ..faults.plan import FaultInput, FaultSummary, resolve_faults
from ..graphs.adjacency import Graph, is_connected, max_degree
from ..graphs.incremental import DynamicTreeMetrics
from ..graphs.metrics import diameter_double_sweep, diameter_exact
from ..obs.spec import ObsInput, ObsState, ObsSummary, resolve_obs
from ..simnet.transport import (
    TRANSPORT_MODES,
    TransportInput,
    TransportMirror,
    TransportSummary,
    resolve_transport,
)


@dataclass
class RoundRecord:
    """Metrics after one churn event (deletion + heal, or insertion).

    ``deleted`` is ``-1`` on insertion rounds; ``inserted`` is ``None``
    on deletion rounds (and on batch waves); ``event`` names the kind
    either way — ``"crash"`` marks the extra oracle deletion a planned
    transport crash forced (the victim died silently in the distributed
    runtime; the oracle catches up so the repair pass has a target).
    ``wave_size`` is non-zero only for batch insert waves.
    ``stretch`` is ``diameter / initial_diameter`` when both are
    measurable (the paper's Model 2.1 metric 2, tracked per round).
    """

    round: int
    deleted: int
    alive: int
    max_degree_increase: int
    diameter: Optional[int]  # None when disconnected or when not measured
    connected: bool
    edges_added: int
    total_messages: int
    max_messages_per_node: int
    event: str = "delete"
    inserted: Optional[int] = None
    wave_size: int = 0
    stretch: Optional[float] = None


#: ``metrics=`` modes for the campaign runners.  ``"auto"`` uses the
#: incremental engine when the initial overlay is a tree and silently
#: degrades to the double sweep the first time a round's deltas
#: disconnect the overlay (e.g. the no-repair baseline);
#: ``"incremental"`` insists (raises instead of degrading);
#: ``"double-sweep"`` and ``"exact"`` force the per-round BFS paths;
#: ``"none"`` skips diameter entirely.
METRICS_MODES = ("auto", "incremental", "double-sweep", "exact", "none")


class _DiameterMeter:
    """Per-round connectivity + diameter measurement for campaigns.

    Wraps the mode resolution: incremental maintenance via
    :class:`DynamicTreeMetrics` (O(depth)/round) with BFS fallback.
    While the tracker is live, connectivity is implied by the maintained
    spanning-tree invariant — no per-round BFS at all.

    Measurement semantics: on tree overlays every mode agrees exactly.
    On overlays with heal chords (a Forgiving Tree deployment keeps
    short cycles), the incremental value is the tree-overlay diameter —
    an upper bracket on the exact diameter, the mirror of the double
    sweep's lower bracket; both brackets live inside the Theorem 1.2
    envelope.  ``seed`` threads the campaign's RNG seed into the double
    sweep's start-node choice so repeated runs are reproducible end to
    end.
    """

    def __init__(
        self,
        mode: str,
        initial: Graph,
        seed: int = 0,
        tracker: Optional[DynamicTreeMetrics] = None,
    ):
        if mode not in METRICS_MODES:
            raise ValueError(f"unknown metrics mode {mode!r} (one of {METRICS_MODES})")
        self.mode = mode
        self.seed = seed
        self.tracker: Optional[DynamicTreeMetrics] = None
        if tracker is not None:
            # Injected pre-built tracker (checkpoint resume): the overlay
            # may legitimately carry heal chords mid-campaign, so the
            # fresh-start "must be a tree" gate does not apply.
            if mode not in ("auto", "incremental"):
                raise ValueError(
                    f"metrics_tracker= requires an incremental mode, not {mode!r}"
                )
            self.tracker = tracker
            return
        if mode in ("auto", "incremental"):
            try:
                self.tracker = DynamicTreeMetrics(initial)
                if self.tracker.n_chords:
                    raise NotATreeError("initial overlay is not a tree")
            except ReproError:
                self.tracker = None
                if mode == "incremental":
                    raise
                self.mode = "double-sweep"

    def measure(self, report, graph_fn: Callable[[], Graph], fast_stats=None):
        """Return ``(connected, diameter, alive_count)`` for this round.

        ``graph_fn`` is only called when the incremental tracker is not
        (or no longer) usable — the measurement itself never materializes
        the graph on the fast path.  (The campaign loop's *degree* metric
        still does; see the runner docstrings.)

        ``fast_stats`` is the healer's O(1) ``(connected, alive_count)``
        capability (when it has one): with ``metrics="none"`` those two
        are the *only* values this round needs, so the graph is never
        materialized at all — the difference between O(1) and O(n) per
        event on the n = 10k..1M churn ladder.  Healers that maintain a
        spanning overlay report exactly what the BFS would.
        """
        if self.tracker is not None:
            try:
                self.tracker.apply_report(report)
                n = len(self.tracker)
                # n <= 1 yields None, matching the BFS paths below so the
                # recorded series is mode-independent.
                return True, (self.tracker.diameter if n > 1 else None), n
            except ReproError:
                # The overlay stopped being a tree (disconnection or a
                # cycle-keeping baseline): degrade to BFS permanently.
                self.tracker = None
                if self.mode == "incremental":
                    raise
                self.mode = "double-sweep"
        if self.mode == "none" and fast_stats is not None:
            connected, alive = fast_stats()
            return connected, None, alive
        graph = graph_fn()
        connected = is_connected(graph)
        diameter: Optional[int] = None
        if self.mode != "none" and connected and len(graph) > 1:
            # The double sweep is exact on trees (all Forgiving Tree
            # overlays); on baselines' general graphs it is a lower bound.
            diameter = (
                diameter_exact(graph)
                if self.mode == "exact"
                else diameter_double_sweep(graph, seed=self.seed)
            )
        return connected, diameter, len(graph)


@dataclass
class CampaignResult:
    """Everything a benchmark needs from one campaign.

    Campaigns run with ``keep_rounds=False`` stream every record through
    :meth:`fold` instead of storing it, so the aggregate properties stay
    O(1) in memory at ladder scale (n = 1M sustained churn) while
    reporting exactly what the kept-rounds path would; only
    :attr:`rounds` itself (and :meth:`series`) are then empty.
    """

    healer_name: str
    adversary_name: str
    n0: int
    initial_diameter: int
    initial_max_degree: int
    rounds: List[RoundRecord] = field(default_factory=list)
    #: What the transport mirror observed (``transport=`` campaigns only).
    transport: Optional[TransportSummary] = None
    #: What the observability stack saw (``obs=`` campaigns only):
    #: metrics snapshot, profile summary, trace export paths/handle.
    obs: Optional[ObsSummary] = None
    #: The guarantee auditor's verdict (``obs="audit"``/``"full"``
    #: campaigns only): per-heal certificates re-proved from the
    #: exported event log — see :mod:`repro.audit`.
    audit: Optional[AuditReport] = None
    #: The telemetry bundle the certificates ran over (kept for
    #: re-certification, e.g. the mutation self-test).
    audit_inputs: Optional[AuditInputs] = field(default=None, repr=False)
    # Streaming aggregates (folded per round; authoritative when the
    # records themselves are not kept).
    _peak_ddeg: int = field(default=0, repr=False)
    _peak_diameter: int = field(default=0, repr=False)
    _peak_msgs: int = field(default=0, repr=False)
    _all_connected: bool = field(default=True, repr=False)
    _n_inserts: int = field(default=0, repr=False)
    _n_deletes: int = field(default=0, repr=False)
    _last_alive: Optional[int] = field(default=None, repr=False)

    def fold(self, record: RoundRecord) -> None:
        """Fold one round into the streaming aggregates (O(1) memory)."""
        if record.max_degree_increase > self._peak_ddeg:
            self._peak_ddeg = record.max_degree_increase
        if record.diameter is not None and record.diameter > self._peak_diameter:
            self._peak_diameter = record.diameter
        if record.max_messages_per_node > self._peak_msgs:
            self._peak_msgs = record.max_messages_per_node
        self._all_connected = self._all_connected and record.connected
        if record.event == "insert":
            self._n_inserts += 1
        elif record.event == "delete":
            self._n_deletes += 1
        self._last_alive = record.alive

    @property
    def peak_degree_increase(self) -> int:
        if self.rounds:
            return max(r.max_degree_increase for r in self.rounds)
        return self._peak_ddeg

    @property
    def peak_diameter(self) -> int:
        if self.rounds:
            return max(
                (r.diameter for r in self.rounds if r.diameter is not None), default=0
            )
        return self._peak_diameter

    @property
    def peak_stretch(self) -> float:
        if self.initial_diameter == 0:
            return 1.0
        return self.peak_diameter / self.initial_diameter

    @property
    def stayed_connected(self) -> bool:
        if self.rounds:
            return all(r.connected for r in self.rounds)
        return self._all_connected

    @property
    def peak_messages_per_node(self) -> int:
        if self.rounds:
            return max(r.max_messages_per_node for r in self.rounds)
        return self._peak_msgs

    # -- churn-campaign views ---------------------------------------------
    @property
    def n_inserts(self) -> int:
        if self.rounds:
            return sum(1 for r in self.rounds if r.event == "insert")
        return self._n_inserts

    @property
    def n_deletes(self) -> int:
        if self.rounds:
            return sum(1 for r in self.rounds if r.event == "delete")
        return self._n_deletes

    @property
    def final_alive(self) -> int:
        if self.rounds:
            return self.rounds[-1].alive
        return self._last_alive if self._last_alive is not None else self.n0

    @property
    def net_growth(self) -> int:
        """Alive-set change over the whole campaign (can be negative)."""
        return self.final_alive - self.n0

    @property
    def faults(self) -> Optional[FaultSummary]:
        """Hostile-network tallies (``faults=`` campaigns only)."""
        return self.transport.faults if self.transport is not None else None

    def series(self, attr: str) -> List:
        """Extract one column as a list (for figure-style output).

        Empty under ``keep_rounds=False`` — streaming campaigns trade the
        per-round series for O(1) memory."""
        return [getattr(r, attr) for r in self.rounds]


def _resolve_metrics(
    metrics: Optional[str],
    measure_diameter: bool,
    exact_diameter: bool,
    default: str = "double-sweep",
) -> str:
    """Back-compat resolution of the legacy flags into a metrics mode."""
    if metrics is not None:
        return metrics
    if not measure_diameter:
        return "none"
    return "exact" if exact_diameter else default


def _initial_diameter(meter: _DiameterMeter, initial: Graph) -> int:
    """The campaign's baseline diameter, measured with its own instrument.

    ``diameter_exact`` here would be O(n·m) — at the n = 10k+ scale the
    incremental path exists for, that one startup call would cost more
    than every per-round measurement combined.  The stretch denominator
    therefore uses the same measurement the rounds use (and 0 when the
    campaign measures no diameters at all — stretch is then vacuous).
    """
    if len(initial) <= 1 or meter.mode == "none":
        return 0
    if meter.mode == "exact":
        return diameter_exact(initial)
    if meter.tracker is not None:
        return meter.tracker.diameter
    return diameter_double_sweep(initial, seed=meter.seed)


def _record_round(
    t: int,
    report: HealReport,
    healer: Healer,
    meter: _DiameterMeter,
    d0: int,
) -> RoundRecord:
    """The per-event measurement + bookkeeping shared by both runners."""
    connected, diameter, alive = meter.measure(
        report, healer.graph, fast_stats=getattr(healer, "fast_stats", None)
    )
    return RoundRecord(
        round=t + 1,
        deleted=report.deleted,
        alive=alive,
        max_degree_increase=healer.max_degree_increase(),
        diameter=diameter,
        connected=connected,
        edges_added=len(report.edges_added),
        total_messages=report.total_messages,
        max_messages_per_node=report.max_messages_per_node,
        event="insert" if report.is_insertion else "delete",
        inserted=report.inserted,
        # A wave of one is indistinguishable from a single insert (the
        # engines route singles through the batch path), so only true
        # multi-joiner waves mark the record.
        wave_size=(
            len(report.inserted_batch) if len(report.inserted_batch) > 1 else 0
        ),
        stretch=(diameter / d0) if diameter is not None and d0 > 0 else None,
    )


def _make_mirror(
    healer: Healer,
    transport: TransportInput,
    seed: int,
    obs_state: Optional[ObsState] = None,
    faults: FaultInput = None,
) -> Optional[TransportMirror]:
    """Resolve the ``transport=`` knob into a live mirror (or None).

    ``faults`` folds a hostile-network plan into the transport spec; it
    needs a live async mirror to mean anything, so a plan without one
    raises rather than silently running a reliable campaign.
    """
    spec = resolve_transport(transport, seed=seed)
    plan = resolve_faults(faults)
    if plan is not None:
        if spec is None or spec.mode != "async":
            raise ValueError(
                "faults= needs an async transport "
                "(transport='async' or 'lease')"
            )
        spec = replace(spec, faults=plan)
    if spec is None:
        return None
    if (
        obs_state is not None
        and obs_state.spec.audit
        and spec.mode == "async"
        and not spec.record_log
    ):
        # The certificates are checked from the event log: auditing
        # forces the kernel to keep it.
        spec = replace(spec, record_log=True)
    return TransportMirror(healer, spec, obs=obs_state)


def _recover_crash(
    mirror: TransportMirror,
    healer: Healer,
    obs_state: Optional[ObsState],
    meter: "_DiameterMeter",
    d0: int,
    t: int,
    result: CampaignResult,
    keep_rounds: bool,
    on_round: Optional[Callable[[RoundRecord, Healer], None]],
    audit_deltas: Optional[List[HealDelta]] = None,
) -> None:
    """A planned crash fired in the transport mirror.

    The victim is dead in the distributed runtime but still alive in the
    oracle: apply the death to the oracle as an extra, adversary-
    invisible deletion, hand the resulting report to the mirror's repair
    pass (reset-replay + node-for-node re-validation), and record the
    round as ``event="crash"`` so the incremental metrics tracker stays
    in step with the oracle overlay.
    """
    report = _oracle_step(
        obs_state, "oracle:delete", healer.delete, mirror.pending_crash
    )
    mirror.recover_from_crash(report)
    if audit_deltas is not None:
        audit_deltas.append(HealDelta.from_report(report))
    record = _record_round(t, report, healer, meter, d0)
    record.event = "crash"
    result.fold(record)
    if keep_rounds:
        result.rounds.append(record)
    if obs_state is not None and obs_state.metrics is not None:
        _stream_round(obs_state.metrics, record)
    if on_round is not None:
        on_round(record, healer)


def _make_obs(obs: ObsInput, transport: TransportInput) -> Optional[ObsState]:
    """Resolve the ``obs=`` knob into live instruments (or None).

    Tracing rides the async kernel's virtual clock, so ``obs="trace"``
    (or a spec with ``trace=True``) requires an async transport mirror —
    without one there is nothing to trace and the knob raises rather
    than silently producing an empty file.
    """
    spec = resolve_obs(obs)
    if spec is None:
        return None
    if spec.trace:
        tspec = resolve_transport(transport)
        if tspec is None or tspec.mode != "async":
            raise ValueError(
                "obs tracing needs an async transport "
                "(transport='async' or 'lease')"
            )
    if spec.audit:
        tspec = resolve_transport(transport)
        if tspec is None or tspec.mode != "async":
            raise ValueError(
                "obs auditing needs an async transport "
                "(transport='async' or 'lease')"
            )
    return ObsState(spec)


def _oracle_step(obs_state: Optional[ObsState], phase: str, fn, *args):
    """Run one oracle operation, timed when profiling is on."""
    if obs_state is None or obs_state.profiler is None:
        return fn(*args)
    t0 = time.perf_counter_ns()
    out = fn(*args)
    obs_state.profiler.add(phase, time.perf_counter_ns() - t0)
    return out


def _stream_round(registry, record: RoundRecord) -> None:
    """Fold one round's record into the streaming metrics (O(1) memory)."""
    registry.counter("campaign.rounds").inc()
    plural = "crashes" if record.event == "crash" else f"{record.event}s"
    registry.counter(f"campaign.{plural}").inc()
    registry.gauge("campaign.alive").set(record.alive)
    registry.histogram("campaign.messages").observe(record.total_messages)
    if record.diameter is not None:
        registry.gauge("campaign.diameter").set(record.diameter)


def _run_audit(
    result: CampaignResult,
    obs_state: Optional[ObsState],
    deltas: List[HealDelta],
    initial_edges: frozenset,
) -> None:
    """Re-prove the per-heal guarantees from the exported telemetry.

    Runs after the mirror has quiesced and summarized.  The auditor sees
    only what a real deployment could export — the kernel event log,
    per-heal tallies, the fault summary, and the oracle's
    :class:`HealDelta` edge summaries — never the oracle overlay itself.
    Violations arm the flight recorder (dumped under an ``audit`` label)
    before the caller's strictness check decides whether to raise.
    """
    summary = result.transport
    if summary is None or summary.event_log is None:
        return
    inputs = AuditInputs(
        records=tuple(summary.event_log),
        heal_stats=tuple(summary.heal_stats or ()),
        deltas=tuple(deltas),
        initial_edges=initial_edges,
        protocol="fg" if "graph" in result.healer_name else "ft",
        fault_summary=summary.faults,
    )
    report = inputs.certify()
    result.audit = report
    result.audit_inputs = inputs
    recorder = obs_state.recorder if obs_state is not None else None
    if recorder is not None and not report.ok:
        for violation in report.violations[:32]:
            recorder.record(
                "audit-violation",
                cert=violation.cert,
                heal=violation.heal,
                window=list(violation.window),
                detail=violation.detail,
            )
        path = None
        rng = recorder.id_range
        if obs_state.spec.recorder_dir is not None and rng is not None:
            path = os.path.join(
                obs_state.spec.recorder_dir, f"audit-{rng[0]}-{rng[1]}.jsonl"
            )
        recorder.dump(path, label="audit")


def run_campaign(
    healer: Healer,
    adversary: Adversary,
    rounds: Optional[int] = None,
    measure_diameter: bool = True,
    exact_diameter: bool = False,
    stop_fraction: float = 0.0,
    on_round: Optional[Callable[[RoundRecord, Healer], None]] = None,
    metrics: Optional[str] = None,
    seed: int = 0,
    transport: TransportInput = None,
    obs: ObsInput = None,
    keep_rounds: bool = True,
    faults: FaultInput = None,
) -> CampaignResult:
    """Play the Delete and Repair game.

    Parameters
    ----------
    rounds:
        Number of deletions (default: until one node remains).
    measure_diameter:
        Compute the diameter each round (double sweep unless
        ``exact_diameter`` — exact on trees either way).  Legacy flags;
        ``metrics`` overrides both when given.
    stop_fraction:
        Stop once fewer than this fraction of nodes survive.
    on_round:
        Optional observer called after each round.
    metrics:
        One of :data:`METRICS_MODES`.  The deletion game keeps its
        historical default (the double sweep — a lower bracket on cyclic
        healed overlays, exact on trees); pass ``"auto"`` or
        ``"incremental"`` to opt into O(depth)-per-round maintenance
        (churn campaigns default to it, see :func:`run_churn_campaign`).
    seed:
        Campaign seed threaded into the double sweep's start-node choice,
        making repeated runs reproducible end to end.
    transport:
        One of :data:`~repro.simnet.TRANSPORT_MODES` or a
        :class:`~repro.simnet.TransportSpec`.  ``"sync"``/``"async"``
        additionally mirror every event onto the matching *distributed*
        runtime — over the synchronous network, or the discrete-event
        async one with concurrent in-flight heals — cross-validating the
        healed images at every quiesce barrier; the observations land in
        :attr:`CampaignResult.transport`.  ``"lease"`` (shorthand for
        ``TransportSpec(mode="async", overlap="lease")``) additionally
        admits events whose heal footprints *intersect* in-flight
        repairs through the region-lease handoff protocol
        (:mod:`repro.regions`) instead of serializing them behind a
        global barrier; lease waits and escalations are reported in the
        summary.  Default: off.
    obs:
        One of :data:`~repro.obs.OBS_MODES` or an
        :class:`~repro.obs.ObsSpec` — attaches the observability stack
        (streaming metrics, causal tracing over the async kernel,
        per-phase profiling, a flight recorder) and lands its summary
        in :attr:`CampaignResult.obs`.  ``"trace"``/``"full"`` require
        an async ``transport``.  Default: off (every hook is a no-op).
    keep_rounds:
        When ``False``, per-round records are folded into the result's
        streaming aggregates instead of being stored — O(1) memory for
        million-event campaigns; ``rounds``/``series()`` are then empty
        but every peak/count property reports the same values.
    faults:
        A :class:`~repro.faults.FaultPlan` (or kwargs mapping) turning
        the mirrored network hostile: seeded message loss absorbed by
        the timeout/retransmit layer, duplication cancelled by
        seen-windows, and planned crash-during-heal kills recovered by
        the self-stabilizing repair pass.  Needs an async ``transport``;
        the tallies land on :attr:`CampaignResult.faults`.  The oracle
        and adversary never see the faults (their streams are identical
        across fault plans) — except a planned crash, which the oracle
        absorbs as one extra ``event="crash"`` deletion round.
    """
    initial = healer.graph()
    n0 = len(initial)
    meter = _DiameterMeter(
        _resolve_metrics(metrics, measure_diameter, exact_diameter), initial, seed
    )
    d0 = _initial_diameter(meter, initial)
    result = CampaignResult(
        healer_name=healer.name,
        adversary_name=adversary.name,
        n0=n0,
        initial_diameter=d0,
        initial_max_degree=max_degree(initial),
    )
    obs_state = _make_obs(obs, transport)
    mirror = _make_mirror(healer, transport, seed, obs_state, faults)
    auditing = mirror is not None and obs_state is not None and obs_state.spec.audit
    audit_deltas: Optional[List[HealDelta]] = [] if auditing else None
    audit_initial = normalize_edges(initial) if auditing else frozenset()
    adversary.reset()
    budget = rounds if rounds is not None else n0 - 1
    for t in range(budget):
        if len(healer.alive) <= max(1, int(stop_fraction * n0)):
            break
        try:
            victim = adversary.choose(healer)
            report = _oracle_step(obs_state, "oracle:delete", healer.delete, victim)
        except SimulationOverError:
            break
        if mirror is not None:
            mirror.apply(report)
        if audit_deltas is not None:
            audit_deltas.append(HealDelta.from_report(report))
        record = _record_round(t, report, healer, meter, d0)
        result.fold(record)
        if keep_rounds:
            result.rounds.append(record)
        if obs_state is not None and obs_state.metrics is not None:
            _stream_round(obs_state.metrics, record)
        if on_round is not None:
            on_round(record, healer)
        if mirror is not None and mirror.pending_crash is not None:
            _recover_crash(
                mirror, healer, obs_state, meter, d0, t, result,
                keep_rounds, on_round, audit_deltas,
            )
    if mirror is not None:
        result.transport = mirror.finish()
        if audit_deltas is not None:
            _run_audit(result, obs_state, audit_deltas, audit_initial)
    if obs_state is not None:
        result.obs = obs_state.finish()
    if (
        result.audit is not None
        and not result.audit.ok
        and obs_state is not None
        and obs_state.spec.audit_strict
    ):
        result.audit.raise_on_violation()
    return result


def duel(
    graph: Graph,
    healers: Sequence[Callable[[Graph], Healer]],
    adversary_factory: Callable[[], Adversary],
    rounds: Optional[int] = None,
    exact_diameter: bool = False,
    metrics: Optional[str] = None,
    seed: int = 0,
    transport: TransportInput = None,
) -> Dict[str, CampaignResult]:
    """Run the same attack against several healers on the same graph."""
    out: Dict[str, CampaignResult] = {}
    for factory in healers:
        healer = factory({k: set(v) for k, v in graph.items()})
        result = run_campaign(
            healer,
            adversary_factory(),
            rounds=rounds,
            exact_diameter=exact_diameter,
            metrics=metrics,
            seed=seed,
            transport=transport,
        )
        out[result.healer_name] = result
    return out


def run_churn_campaign(
    healer: Healer,
    adversary: ChurnAdversary,
    events: int,
    measure_diameter: bool = True,
    exact_diameter: bool = False,
    on_round: Optional[Callable[[RoundRecord, Healer], None]] = None,
    metrics: Optional[str] = None,
    seed: int = 0,
    transport: TransportInput = None,
    obs: ObsInput = None,
    keep_rounds: bool = True,
    metrics_tracker: Optional[DynamicTreeMetrics] = None,
    faults: FaultInput = None,
) -> CampaignResult:
    """Play the churn game: a mixed insert/delete stream against one healer.

    Each round the adversary emits an :class:`~repro.churn.Insert`, an
    :class:`~repro.churn.InsertWave` (batch join, applied through
    :meth:`~repro.baselines.base.Healer.insert_batch`), or a
    :class:`~repro.churn.Delete` after seeing the healed graph; the healer
    applies it; the record tracks the usual success metrics plus alive-set
    growth and per-round stretch.  Stops early when the adversary runs out
    of events (:class:`SimulationOverError`) or the network empties.

    ``metrics`` selects the diameter measurement (:data:`METRICS_MODES`);
    churn campaigns default to ``"auto"``: the diameter is maintained
    incrementally in O(depth) per round — exact on tree overlays, the
    tree-overlay upper bracket when heals keep chords — which is cheap
    enough that per-round diameter/stretch stays on by default at
    n = 10k+.  Campaigns over non-tree inputs (or that disconnect) fall
    back to the BFS double sweep.  ``seed`` threads the campaign seed
    into the fallback sweep for end-to-end reproducibility.

    ``transport`` mirrors the campaign onto the matching distributed
    runtime (``"sync"`` per-event, ``"async"`` with concurrent in-flight
    heals over the discrete-event simnet, ``"lease"`` additionally
    interleaving *overlapping* heals via region leases and coordinator
    handoff), cross-validating the healed image at every quiesce
    barrier — see :func:`run_campaign`.  ``obs`` attaches the
    observability stack (metrics / trace / profile / full) the same way.
    ``keep_rounds=False`` streams the per-round records into O(1)
    aggregates instead of storing them — the mode the n = 10k..1M
    sustained-churn ladder runs in (see :func:`run_campaign`).

    ``metrics_tracker`` injects a pre-built
    :class:`~repro.graphs.incremental.DynamicTreeMetrics` instead of
    constructing one from the healer's graph — the checkpoint-resume
    path, where the restored overlay may already carry heal chords that
    the fresh-start tree gate would reject.  The caller owns making the
    tracker match the healer's overlay (the soak service rebuilds it
    from the snapshot's ``parent_state``).

    ``faults`` attaches a hostile-network plan (loss, duplication,
    crash-during-heal) to the mirrored transport — see
    :func:`run_campaign`.
    """
    initial = healer.graph()
    n0 = len(initial)
    meter = _DiameterMeter(
        _resolve_metrics(metrics, measure_diameter, exact_diameter, default="auto"),
        initial,
        seed,
        tracker=metrics_tracker,
    )
    d0 = _initial_diameter(meter, initial)
    result = CampaignResult(
        healer_name=healer.name,
        adversary_name=adversary.name,
        n0=n0,
        initial_diameter=d0,
        initial_max_degree=max_degree(initial),
    )
    obs_state = _make_obs(obs, transport)
    mirror = _make_mirror(healer, transport, seed, obs_state, faults)
    auditing = mirror is not None and obs_state is not None and obs_state.spec.audit
    audit_deltas: Optional[List[HealDelta]] = [] if auditing else None
    audit_initial = normalize_edges(initial) if auditing else frozenset()
    adversary.reset()
    for t in range(events):
        if not healer.alive:
            break
        try:
            event = adversary.next_event(healer)
            if isinstance(event, Insert):
                report = _oracle_step(
                    obs_state,
                    "oracle:insert",
                    healer.insert,
                    event.nid,
                    event.attach_to,
                )
            elif isinstance(event, InsertWave):
                report = _oracle_step(
                    obs_state,
                    "oracle:insert",
                    healer.insert_batch,
                    event.joiners,
                )
            else:
                assert isinstance(event, Delete)
                report = _oracle_step(
                    obs_state, "oracle:delete", healer.delete, event.nid
                )
        except SimulationOverError:
            break
        if mirror is not None:
            mirror.apply(report)
        if audit_deltas is not None:
            audit_deltas.append(HealDelta.from_report(report))
        record = _record_round(t, report, healer, meter, d0)
        result.fold(record)
        if keep_rounds:
            result.rounds.append(record)
        if obs_state is not None and obs_state.metrics is not None:
            _stream_round(obs_state.metrics, record)
        if on_round is not None:
            on_round(record, healer)
        if mirror is not None and mirror.pending_crash is not None:
            _recover_crash(
                mirror, healer, obs_state, meter, d0, t, result,
                keep_rounds, on_round, audit_deltas,
            )
    if mirror is not None:
        result.transport = mirror.finish()
        if audit_deltas is not None:
            _run_audit(result, obs_state, audit_deltas, audit_initial)
    if obs_state is not None:
        result.obs = obs_state.finish()
    if (
        result.audit is not None
        and not result.audit.ok
        and obs_state is not None
        and obs_state.spec.audit_strict
    ):
        result.audit.raise_on_violation()
    return result


def churn_duel(
    graph: Graph,
    healers: Sequence[Callable[[Graph], Healer]],
    adversary_factory: Callable[[], ChurnAdversary],
    events: int,
    exact_diameter: bool = False,
    metrics: Optional[str] = None,
    seed: int = 0,
    transport: TransportInput = None,
) -> Dict[str, CampaignResult]:
    """Run the same churn stream against several healers on the same graph."""
    out: Dict[str, CampaignResult] = {}
    for factory in healers:
        healer = factory({k: set(v) for k, v in graph.items()})
        result = run_churn_campaign(
            healer,
            adversary_factory(),
            events=events,
            exact_diameter=exact_diameter,
            metrics=metrics,
            seed=seed,
            transport=transport,
        )
        out[result.healer_name] = result
    return out
