"""Attack/heal campaign loop and time-series collection.

A *campaign* plays the Delete and Repair game: an adversary picks victims,
a healer repairs, and we record the paper's success metrics each round
(Model 2.1): max degree increase, diameter (and stretch), connectivity, and
communication.  :func:`run_churn_campaign` plays the extended churn game
(the Forgiving Graph model): the adversary emits a mixed insert/delete
stream and the per-round records additionally track alive-set growth.
Campaigns power every benchmark table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..adversaries.base import Adversary
from ..adversaries.churn import ChurnAdversary
from ..baselines.base import Healer
from ..churn.events import Delete, Insert
from ..core.errors import SimulationOverError
from ..graphs.adjacency import Graph, is_connected, max_degree
from ..graphs.metrics import diameter_double_sweep, diameter_exact


@dataclass
class RoundRecord:
    """Metrics after one churn event (deletion + heal, or insertion).

    ``deleted`` is ``-1`` on insertion rounds; ``inserted`` is ``None``
    on deletion rounds; ``event`` names the kind either way.
    """

    round: int
    deleted: int
    alive: int
    max_degree_increase: int
    diameter: Optional[int]  # None when disconnected or when not measured
    connected: bool
    edges_added: int
    total_messages: int
    max_messages_per_node: int
    event: str = "delete"
    inserted: Optional[int] = None


@dataclass
class CampaignResult:
    """Everything a benchmark needs from one campaign."""

    healer_name: str
    adversary_name: str
    n0: int
    initial_diameter: int
    initial_max_degree: int
    rounds: List[RoundRecord] = field(default_factory=list)

    @property
    def peak_degree_increase(self) -> int:
        return max((r.max_degree_increase for r in self.rounds), default=0)

    @property
    def peak_diameter(self) -> int:
        return max((r.diameter for r in self.rounds if r.diameter is not None), default=0)

    @property
    def peak_stretch(self) -> float:
        if self.initial_diameter == 0:
            return 1.0
        return self.peak_diameter / self.initial_diameter

    @property
    def stayed_connected(self) -> bool:
        return all(r.connected for r in self.rounds)

    @property
    def peak_messages_per_node(self) -> int:
        return max((r.max_messages_per_node for r in self.rounds), default=0)

    # -- churn-campaign views ---------------------------------------------
    @property
    def n_inserts(self) -> int:
        return sum(1 for r in self.rounds if r.event == "insert")

    @property
    def n_deletes(self) -> int:
        return sum(1 for r in self.rounds if r.event == "delete")

    @property
    def final_alive(self) -> int:
        return self.rounds[-1].alive if self.rounds else self.n0

    @property
    def net_growth(self) -> int:
        """Alive-set change over the whole campaign (can be negative)."""
        return self.final_alive - self.n0

    def series(self, attr: str) -> List:
        """Extract one column as a list (for figure-style output)."""
        return [getattr(r, attr) for r in self.rounds]


def run_campaign(
    healer: Healer,
    adversary: Adversary,
    rounds: Optional[int] = None,
    measure_diameter: bool = True,
    exact_diameter: bool = False,
    stop_fraction: float = 0.0,
    on_round: Optional[Callable[[RoundRecord, Healer], None]] = None,
) -> CampaignResult:
    """Play the Delete and Repair game.

    Parameters
    ----------
    rounds:
        Number of deletions (default: until one node remains).
    measure_diameter:
        Compute the diameter each round (double sweep unless
        ``exact_diameter`` — exact on trees either way).
    stop_fraction:
        Stop once fewer than this fraction of nodes survive.
    on_round:
        Optional observer called after each round.
    """
    initial = healer.graph()
    n0 = len(initial)
    result = CampaignResult(
        healer_name=healer.name,
        adversary_name=adversary.name,
        n0=n0,
        initial_diameter=diameter_exact(initial) if n0 > 1 else 0,
        initial_max_degree=max_degree(initial),
    )
    adversary.reset()
    budget = rounds if rounds is not None else n0 - 1
    for t in range(budget):
        if len(healer.alive) <= max(1, int(stop_fraction * n0)):
            break
        try:
            victim = adversary.choose(healer)
            report = healer.delete(victim)
        except SimulationOverError:
            break
        graph = healer.graph()
        connected = is_connected(graph)
        diameter: Optional[int] = None
        if measure_diameter and connected and len(graph) > 1:
            diameter = (
                diameter_exact(graph)
                if exact_diameter
                else diameter_double_sweep(graph)
            )
        record = RoundRecord(
            round=t + 1,
            deleted=victim,
            alive=len(graph),
            max_degree_increase=healer.max_degree_increase(),
            diameter=diameter,
            connected=connected,
            edges_added=len(report.edges_added),
            total_messages=report.total_messages,
            max_messages_per_node=report.max_messages_per_node,
        )
        result.rounds.append(record)
        if on_round is not None:
            on_round(record, healer)
    return result


def duel(
    graph: Graph,
    healers: Sequence[Callable[[Graph], Healer]],
    adversary_factory: Callable[[], Adversary],
    rounds: Optional[int] = None,
    exact_diameter: bool = False,
) -> Dict[str, CampaignResult]:
    """Run the same attack against several healers on the same graph."""
    out: Dict[str, CampaignResult] = {}
    for factory in healers:
        healer = factory({k: set(v) for k, v in graph.items()})
        result = run_campaign(
            healer,
            adversary_factory(),
            rounds=rounds,
            exact_diameter=exact_diameter,
        )
        out[result.healer_name] = result
    return out


def run_churn_campaign(
    healer: Healer,
    adversary: ChurnAdversary,
    events: int,
    measure_diameter: bool = True,
    exact_diameter: bool = False,
    on_round: Optional[Callable[[RoundRecord, Healer], None]] = None,
) -> CampaignResult:
    """Play the churn game: a mixed insert/delete stream against one healer.

    Each round the adversary emits an :class:`~repro.churn.Insert` or a
    :class:`~repro.churn.Delete` after seeing the healed graph; the healer
    applies it; the record tracks the usual success metrics plus alive-set
    growth.  Stops early when the adversary runs out of events
    (:class:`SimulationOverError`) or the network empties.
    """
    initial = healer.graph()
    n0 = len(initial)
    result = CampaignResult(
        healer_name=healer.name,
        adversary_name=adversary.name,
        n0=n0,
        initial_diameter=diameter_exact(initial) if n0 > 1 else 0,
        initial_max_degree=max_degree(initial),
    )
    adversary.reset()
    for t in range(events):
        if not healer.alive:
            break
        try:
            event = adversary.next_event(healer)
            if isinstance(event, Insert):
                report = healer.insert(event.nid, event.attach_to)
            else:
                assert isinstance(event, Delete)
                report = healer.delete(event.nid)
        except SimulationOverError:
            break
        graph = healer.graph()
        connected = is_connected(graph)
        diameter: Optional[int] = None
        if measure_diameter and connected and len(graph) > 1:
            diameter = (
                diameter_exact(graph)
                if exact_diameter
                else diameter_double_sweep(graph)
            )
        record = RoundRecord(
            round=t + 1,
            deleted=report.deleted,
            alive=len(graph),
            max_degree_increase=healer.max_degree_increase(),
            diameter=diameter,
            connected=connected,
            edges_added=len(report.edges_added),
            total_messages=report.total_messages,
            max_messages_per_node=report.max_messages_per_node,
            event="insert" if report.is_insertion else "delete",
            inserted=report.inserted,
        )
        result.rounds.append(record)
        if on_round is not None:
            on_round(record, healer)
    return result


def churn_duel(
    graph: Graph,
    healers: Sequence[Callable[[Graph], Healer]],
    adversary_factory: Callable[[], ChurnAdversary],
    events: int,
    exact_diameter: bool = False,
) -> Dict[str, CampaignResult]:
    """Run the same churn stream against several healers on the same graph."""
    out: Dict[str, CampaignResult] = {}
    for factory in healers:
        healer = factory({k: set(v) for k, v in graph.items()})
        result = run_churn_campaign(
            healer,
            adversary_factory(),
            events=events,
            exact_diameter=exact_diameter,
        )
        out[result.healer_name] = result
    return out
