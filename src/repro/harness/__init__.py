"""Experiment harness: campaigns, sweeps, bounds and report tables."""

from . import bounds, report
from .experiment import (
    METRICS_MODES,
    TRANSPORT_MODES,
    CampaignResult,
    RoundRecord,
    churn_duel,
    duel,
    run_campaign,
    run_churn_campaign,
)

__all__ = [
    "METRICS_MODES",
    "TRANSPORT_MODES",
    "CampaignResult",
    "RoundRecord",
    "bounds",
    "churn_duel",
    "duel",
    "report",
    "run_campaign",
    "run_churn_campaign",
]
