"""Experiment harness: campaigns, sweeps, bounds and report tables."""

from ..obs.spec import OBS_MODES, ObsSpec, ObsSummary
from . import bounds, report
from .experiment import (
    METRICS_MODES,
    TRANSPORT_MODES,
    CampaignResult,
    RoundRecord,
    churn_duel,
    duel,
    run_campaign,
    run_churn_campaign,
)

__all__ = [
    "METRICS_MODES",
    "OBS_MODES",
    "TRANSPORT_MODES",
    "CampaignResult",
    "ObsSpec",
    "ObsSummary",
    "RoundRecord",
    "bounds",
    "churn_duel",
    "duel",
    "report",
    "run_campaign",
    "run_churn_campaign",
]
