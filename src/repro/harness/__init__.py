"""Experiment harness: campaigns, sweeps, bounds and report tables."""

from . import bounds, report
from .experiment import CampaignResult, RoundRecord, duel, run_campaign

__all__ = [
    "CampaignResult",
    "RoundRecord",
    "bounds",
    "duel",
    "report",
    "run_campaign",
]
