"""ASCII tables and series rendering for benchmark output.

Benchmarks print their rows through these helpers so the output of
``pytest benchmarks/ --benchmark-only`` doubles as the data recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Monospace table with a header rule."""
    str_rows: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = []
    out.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    out.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in str_rows:
        out.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(out)


def format_series(label: str, values: Sequence[object], width: int = 72) -> str:
    """One labelled series, wrapped (figure-style data dump)."""
    text = " ".join(_cell(v) for v in values)
    lines = []
    while len(text) > width:
        cut = text.rfind(" ", 0, width)
        cut = cut if cut > 0 else width
        lines.append(text[:cut])
        text = text[cut + 1 :]
    lines.append(text)
    pad = " " * (len(label) + 2)
    return f"{label}: " + ("\n" + pad).join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Tiny unicode sparkline for series in benchmark output."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    if hi == lo:
        return blocks[0] * len(values)
    scale = (len(blocks) - 1) / (hi - lo)
    return "".join(blocks[int((v - lo) * scale)] for v in values)


def banner(title: str) -> str:
    bar = "=" * max(8, len(title) + 4)
    return f"\n{bar}\n  {title}\n{bar}"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
