"""Theoretical bounds from the paper, as checkable formulas.

Each function returns the quantity a theorem guarantees so benchmarks can
print *measured vs bound* side by side (EXPERIMENTS.md records both).
"""

from __future__ import annotations

import math


def thm1_degree_bound(branching: int = 2) -> int:
    """Theorem 1.1: degree increase is at most 3 (generalized: b + 1)."""
    return branching + 1


def thm1_diameter_bound(original_diameter: int, max_degree: int, branching: int = 2) -> int:
    """Theorem 1.2 envelope: ``O(D log ∆)`` with explicit safe constants.

    The proof charges each original edge on a root path at most
    ``⌈log_b ∆⌉ + 1`` healed hops (RT depth plus the ready heir), doubled
    for the two root paths; ``(⌈log_b ∆⌉ + 2)·(D + 1) + 2`` dominates it
    for every instance we generate.
    """
    if max_degree <= 1:
        return max(original_diameter, 1) + 2
    log_delta = max(1, math.ceil(math.log(max_degree, branching)))
    return (log_delta + 2) * (original_diameter + 1) + 2


def thm2_lower_bound_holds(alpha: int, beta: float, delta: int) -> bool:
    """Theorem 2: any healer with degree increase ≤ α and stretch ≤ β on
    the star of max degree ∆ satisfies ``α^(2β+1) ≥ ∆`` (α ≥ 3)."""
    if alpha < 1:
        return delta <= 1
    return alpha ** (2 * beta + 1) >= delta


def thm2_min_stretch(alpha: int, delta: int) -> float:
    """The β any (α, ·)-healer must pay on the star: β ≥ (log_α ∆ − 1)/2."""
    if delta <= 1 or alpha <= 1:
        return 0.0
    return max(0.0, (math.log(delta, alpha) - 1) / 2)


def section42_stretch_bound(alpha: int, delta: int) -> float:
    """Section 4.2 remark: the modified Forgiving Tree achieves
    ``β ≤ 2·log_α ∆ + 2`` for any α ≥ 3."""
    if delta <= 1:
        return 2.0
    if alpha < 3:
        raise ValueError("the remark requires alpha >= 3")
    return 2 * math.log(delta, alpha) + 2


def setup_messages_bound(n: int, constant: float = 4.0) -> float:
    """Setup phase: w.h.p. ``O(log n)`` messages per edge (Cohen [4])."""
    return constant * math.log2(max(n, 2))
