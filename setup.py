"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs PEP 517 + wheel; offline
boxes that lack ``wheel`` can instead use the legacy path::

    pip install -e . --no-build-isolation --no-use-pep517

which requires this file.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
