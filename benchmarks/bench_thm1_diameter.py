"""EXP-T1-DIAM — Theorem 1.2: diameter stays within O(D log ∆).

Reports, per family, the worst healed diameter over a full adversarial
campaign against the original diameter D, the log∆ factor, and the
explicit envelope from harness.bounds.
"""

import math

from repro.adversaries import CenterAdversary, MaxDegreeAdversary
from repro.baselines import ForgivingTreeHealer
from repro.graphs import generators, metrics
from repro.harness import bounds, report, run_campaign

from benchmarks.conftest import dump_bench, emit, table

FAMILIES = ["star", "random", "broom", "caterpillar", "spider", "binary"]
N = 100


def run_sweep():
    rows = []
    for family in FAMILIES:
        tree = generators.TREE_FAMILIES[family](N, 3)
        d0 = metrics.diameter_exact(tree)
        delta = max(len(v) for v in tree.values())
        envelope = bounds.thm1_diameter_bound(d0, delta)
        worst = 0
        for adv in (CenterAdversary(), MaxDegreeAdversary()):
            healer = ForgivingTreeHealer({k: set(v) for k, v in tree.items()})
            result = run_campaign(healer, adv, measure_diameter=True)
            worst = max(worst, result.peak_diameter)
            assert result.stayed_connected
        rows.append(
            [
                family,
                len(tree),
                d0,
                delta,
                worst,
                f"{worst / max(d0, 1):.2f}x",
                envelope,
                "OK" if worst <= envelope else "VIOLATION",
            ]
        )
    return rows


def test_thm1_diameter_bound(benchmark, capsys):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    assert all(r[7] == "OK" for r in rows)
    dump_bench(
        "thm1_diameter",
        {"sweep": table(
            ["family", "n", "D0", "delta", "peak_D", "stretch", "bound", "verdict"],
            rows,
        )},
    )
    emit(capsys, report.banner("EXP-T1-DIAM  Theorem 1.2: diameter = O(D log ∆)"))
    emit(
        capsys,
        report.format_table(
            ["family", "n", "D0", "∆", "peak D", "stretch", "bound", "verdict"],
            rows,
        ),
    )
    emit(
        capsys,
        "\nshape check: the star (D0=2) heals to ~2·log2 ∆ — the log ∆ factor"
        " is real, not slack.",
    )
