#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file (the CI smoke gate).

Checks the structural schema Perfetto/chrome://tracing relies on: known
phases, integer pid/tid, numeric non-negative timestamps, balanced and
time-ordered B/E stacks per track (see
:func:`repro.obs.validate_chrome_trace`).

Run:  PYTHONPATH=src python benchmarks/validate_trace.py trace.json [...]

Exits non-zero (with the structural violation) on the first bad file.
"""

import json
import sys

from repro.obs import validate_chrome_trace


def main(argv) -> int:
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    for path in argv[1:]:
        with open(path) as fh:
            doc = json.load(fh)
        try:
            n = validate_chrome_trace(doc)
        except ValueError as exc:
            print(f"{path}: INVALID — {exc}")
            return 1
        print(f"{path}: OK ({n} trace events)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
