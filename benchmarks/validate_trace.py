#!/usr/bin/env python3
"""Validate trace files — Chrome trace-event JSON or streamed JSONL.

The CI smoke gate for everything the tracing stack writes:

* **Chrome mode** (default): the structural schema Perfetto /
  chrome://tracing relies on — known phases, integer pid/tid, numeric
  timestamps, balanced and time-ordered B/E stacks per track
  (:func:`repro.obs.validate_chrome_trace`).
* **JSONL mode** (``--jsonl``): the line-oriented dialect shared by
  :meth:`Tracer.export_jsonl` and the streaming telemetry sinks —
  exact per-phase field sets, every E closing a seen B, no span left
  open (:func:`repro.obs.validate_trace_jsonl`).  Mixed telemetry
  streams (metrics/window/alert records interleaved with trace
  records) validate too; non-trace kinds are counted, not schema-checked.

Usage::

    PYTHONPATH=src python benchmarks/validate_trace.py trace.json [...]
    PYTHONPATH=src python benchmarks/validate_trace.py --jsonl telemetry.jsonl

Exit codes: 0 all files valid; 1 a file failed validation;
2 usage error (argparse).  Positional-only invocation stays compatible
with the historical CLI (``validate_trace.py <file>``).
"""

import argparse
import json
import sys

from repro.obs import validate_chrome_trace, validate_trace_jsonl


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="validate_trace.py",
        description="validate Chrome trace JSON or streamed trace JSONL",
    )
    parser.add_argument("paths", nargs="+", metavar="FILE",
                        help="trace file(s) to validate")
    parser.add_argument("--jsonl", action="store_true",
                        help="treat files as JSONL (export_jsonl / "
                             "telemetry sink dialect) instead of Chrome "
                             "trace JSON")
    parser.add_argument("--quiet", action="store_true",
                        help="print nothing on success")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    for path in args.paths:
        try:
            with open(path) as fh:
                text = fh.read()
            if args.jsonl:
                n = validate_trace_jsonl(text)
                what = "jsonl records"
            else:
                n = validate_chrome_trace(json.loads(text))
                what = "trace events"
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            print(f"{path}: INVALID — {exc}", file=sys.stderr)
            return 1
        if not args.quiet:
            print(f"{path}: OK ({n} {what})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
