"""EXP-T1-MSG — Theorem 1.3: O(1) messages per node and O(1) latency.

Runs the *distributed* runtime across network sizes and reports the peak
per-node messages (sent/received) per heal round and the peak sub-round
latency — both must stay flat as n grows.
"""

import random

from repro.distributed import DistributedForgivingTree
from repro.graphs import generators
from repro.harness import report

from benchmarks.conftest import dump_bench, emit, table

SIZES = (8, 16, 24)  # the distributed runtime's validated envelope
SEED = 3


def run_sweep():
    rows = []
    for n in SIZES:
        tree = generators.random_tree(n, seed=SEED)
        dist = DistributedForgivingTree(tree)
        order = sorted(tree)
        random.Random(SEED).shuffle(order)
        peak_sub_rounds = 0
        for victim in order:
            stats = dist.delete(victim)
            peak_sub_rounds = max(peak_sub_rounds, stats.sub_rounds)
        rows.append(
            [
                n,
                dist.peak_messages_per_node(),
                peak_sub_rounds,
                dist.setup_stats.total_messages,
                f"{dist.setup_stats.total_messages / max(1, n - 1):.1f}",
            ]
        )
    return rows


def test_thm1_messages_and_latency(benchmark, capsys):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    peaks = [r[1] for r in rows]
    latencies = [r[2] for r in rows]
    # Flat in n: the largest network is within a constant of the smallest.
    assert peaks[-1] <= peaks[0] + 6
    assert max(latencies) <= 8
    dump_bench(
        "thm1_messages",
        {"sweep": table(
            ["n", "peak_msgs_node_round", "peak_sub_rounds", "setup_msgs",
             "setup_msgs_tree_edge"],
            rows,
        )},
    )
    emit(
        capsys,
        report.banner("EXP-T1-MSG  Theorem 1.3: O(1) msgs/node, O(1) latency"),
    )
    emit(
        capsys,
        report.format_table(
            ["n", "peak msgs/node/round", "peak sub-rounds", "setup msgs", "setup msgs/tree-edge"],
            rows,
        ),
    )
