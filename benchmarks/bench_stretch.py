"""EXP-STRETCH-DUEL — the 2009 paper's headline metric, head-to-head.

The Forgiving Tree (2008) bounds the healed *diameter*; the Forgiving
Graph (2009) bounds per-pair *stretch* on general graphs under churn.
This bench races the three healer families over identical churn streams
and records the per-round stretch trajectory (``RoundRecord.stretch``,
measured by the incremental engine by default):

* **forgiving-graph** — weight-balanced RT healing: degree increase
  <= 3 *and* stretch inside the ``2 log2 n + 2`` envelope;
* **forgiving-tree** — spanning-tree wills: same degree bound, but the
  stretch rides the O(log Δ)-per-deletion diameter envelope instead;
* **binary-tree** — the uncoordinated naive baseline [3, 19]: local
  replacement trees chain into Θ(n) stretch over repeated deletions.

Three adversaries per size: random churn, growth-then-massacre (the hub
attack after a join wave), and wave churn (flash-crowd joins).  Rows are
dumped to ``benchmarks/out/BENCH_stretch.json``; the ``baseline``
section holds only seed-deterministic values (no timings) so CI can diff
it against the committed copy and flag stretch regressions in the
workflow summary (``benchmarks/check_stretch_baseline.py``).

Quick mode (CI smoke + the committed baseline): ``CHURN_BENCH_QUICK=1``.
"""

import json
import math
import os
import time

from repro.adversaries import (
    GrowthThenMassacreAdversary,
    RandomChurnAdversary,
    WaveChurnAdversary,
)
from repro.baselines import (
    BinaryTreeHealer,
    ForgivingGraphHealer,
    ForgivingTreeHealer,
)
from repro.graphs import generators
from repro.harness import churn_duel, report

from benchmarks.conftest import emit

QUICK = os.environ.get("CHURN_BENCH_QUICK", "").strip().lower() not in (
    "", "0", "false", "no",
)

SIZES = (120,) if QUICK else (1000, 10_000)
EVENTS = (lambda n: max(60, n // 3)) if QUICK else (lambda n: n // 2)
TRAJECTORY_POINTS = 24
SEED = 20_09
OUT_PATH = os.path.join(os.path.dirname(__file__), "out", "BENCH_stretch.json")

HEALERS = [ForgivingTreeHealer, ForgivingGraphHealer, BinaryTreeHealer]

ADVERSARIES = {
    "random-churn": lambda: RandomChurnAdversary(p_insert=0.45, seed=SEED),
    "growth-then-massacre": lambda: GrowthThenMassacreAdversary(
        growth=24 if QUICK else 200, seed=SEED
    ),
    "wave-churn": lambda: WaveChurnAdversary(wave=6, p_wave=0.3, seed=SEED),
}


def _downsample(series, points=TRAJECTORY_POINTS):
    """Evenly thin a trajectory to at most ``points`` samples."""
    values = [v for v in series if v is not None]
    if len(values) <= points:
        return [round(v, 4) for v in values]
    step = (len(values) - 1) / (points - 1)
    return [round(values[int(i * step)], 4) for i in range(points)]


def run_duels():
    """One churn_duel per (size, adversary); returns rows + trajectories."""
    rows = []
    trajectories = {}
    for n in SIZES:
        tree = generators.random_tree(n, seed=SEED)
        for adv_name, make in ADVERSARIES.items():
            t0 = time.perf_counter()
            results = churn_duel(
                tree, HEALERS, make, events=EVENTS(n), seed=SEED
            )
            elapsed = time.perf_counter() - t0
            for healer_name, res in sorted(results.items()):
                stretches = [r.stretch for r in res.rounds if r.stretch is not None]
                rows.append(
                    [
                        n,
                        adv_name,
                        healer_name,
                        len(res.rounds),
                        res.peak_degree_increase,
                        round(res.peak_stretch, 3),
                        round(stretches[-1], 3) if stretches else None,
                        res.stayed_connected,
                        f"{elapsed:.2f}",
                    ]
                )
                trajectories[f"{n}/{adv_name}/{healer_name}"] = _downsample(
                    res.series("stretch")
                )
    return rows, trajectories


def check_claims(rows):
    """The acceptance bars of the duel (asserted in quick and full mode).

    Only the *guarantees* are asserted: the FG holds degree <= 3 and
    stretch inside the O(log n) envelope under every adversary, and the
    FT holds its degree bound.  The naive baseline is raced for its
    trajectory, not asserted against: on the diameter-ratio stretch the
    campaigns record, its uncoordinated heals are measured by the
    double-sweep *lower* bracket (its overlay is cyclic) while the FG
    carries the incremental *upper* bracket, so a cross-healer
    inequality would compare different brackets — the per-round series
    in the JSON tell the comparative story instead.
    """
    by_key = {(r[0], r[1], r[2]): r for r in rows}
    for n in SIZES:
        # log of the largest population the campaign ever reaches.
        envelope = 2 * math.log2(2 * n) + 2
        for adv in ADVERSARIES:
            fg = by_key[(n, adv, "forgiving-graph")]
            assert fg[4] <= 3, f"FG degree bound broken: {fg}"
            assert fg[7] is True, f"FG disconnected: {fg}"
            assert fg[5] <= envelope, f"FG stretch outside O(log n): {fg}"
            ft = by_key[(n, adv, "forgiving-tree")]
            assert ft[4] <= 3, f"FT degree bound broken: {ft}"


def dump_json(rows, trajectories):
    """Write the tracked JSON — seed-deterministic values only.

    Wall times stay in the printed tables: the file is committed as the
    CI drift baseline, so a clean quick-mode rerun must reproduce it
    byte-for-byte (no perpetually dirty tracked file)."""
    os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
    with open(OUT_PATH, "w") as fh:
        json.dump(
            {
                "quick": QUICK,
                "seed": SEED,
                "headers": [
                    "n0", "adversary", "healer", "rounds", "peak_ddeg",
                    "peak_stretch", "final_stretch", "connected",
                ],
                "rows": [r[:8] for r in rows],
                # The section CI diffs against the committed baseline.
                "baseline": {
                    "rows": [r[:8] for r in rows],
                    "trajectories": trajectories,
                },
            },
            fh,
            indent=2,
        )


def test_stretch_duel(benchmark, capsys):
    rows, trajectories = benchmark.pedantic(run_duels, rounds=1, iterations=1)
    check_claims(rows)
    dump_json(rows, trajectories)

    emit(capsys, report.banner("EXP-STRETCH-DUEL  FT vs FG vs naive, per-round stretch"))
    emit(
        capsys,
        report.format_table(
            ["n0", "adversary", "healer", "rounds", "peak ∆deg",
             "peak stretch", "final stretch", "connected", "s wall"],
            rows,
        ),
    )
    for key in sorted(trajectories):
        if trajectories[key]:
            emit(capsys, f"  {key:45s} {report.sparkline(trajectories[key])}")


if __name__ == "__main__":
    # Standalone mode: PYTHONPATH=src python -m benchmarks.bench_stretch
    _rows, _traj = run_duels()
    check_claims(_rows)
    print(report.banner("EXP-STRETCH-DUEL  FT vs FG vs naive, per-round stretch"))
    print(
        report.format_table(
            ["n0", "adversary", "healer", "rounds", "peak ∆deg",
             "peak stretch", "final stretch", "connected", "s wall"],
            _rows,
        )
    )
    for _key in sorted(_traj):
        if _traj[_key]:
            print(f"  {_key:45s} {report.sparkline(_traj[_key])}")
    dump_json(_rows, _traj)
    print(f"\nwrote {OUT_PATH}")
