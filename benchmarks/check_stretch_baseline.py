#!/usr/bin/env python3
"""Diff a fresh BENCH_stretch.json against the committed baseline.

CI runs ``bench_stretch`` in quick mode (seed-deterministic) and then
calls this script with the committed copy to flag stretch/degree
regressions in the workflow summary.  Only the ``baseline`` section is
compared — wall times never participate.

Usage::

    python benchmarks/check_stretch_baseline.py COMMITTED FRESH

Exit status 1 on drift.  When ``GITHUB_STEP_SUMMARY`` is set, a markdown
report is appended to it as well as printed.
"""

from __future__ import annotations

import json
import os
import sys

#: Relative slack on per-round stretch trajectory points.  The rows are
#: seeded end-to-end so they normally match exactly; the tolerance only
#: absorbs float formatting differences.
TRAJECTORY_TOLERANCE = 1e-6


def load_baseline(path: str) -> dict:
    with open(path) as fh:
        data = json.load(fh)
    if "baseline" not in data:
        raise SystemExit(f"{path}: no 'baseline' section (regenerate the bench)")
    return data["baseline"]


def diff(committed: dict, fresh: dict) -> list:
    problems = []
    old_rows = {tuple(r[:3]): r for r in committed["rows"]}
    new_rows = {tuple(r[:3]): r for r in fresh["rows"]}
    for key in sorted(old_rows.keys() | new_rows.keys()):
        if key not in new_rows:
            problems.append(f"row vanished: {key}")
        elif key not in old_rows:
            problems.append(f"new row (commit the regenerated baseline): {key}")
        elif old_rows[key] != new_rows[key]:
            problems.append(
                f"row drifted: {key}\n    committed: {old_rows[key]}\n"
                f"    fresh:     {new_rows[key]}"
            )
    old_t, new_t = committed["trajectories"], fresh["trajectories"]
    for key in sorted(old_t.keys() | new_t.keys()):
        a, b = old_t.get(key), new_t.get(key)
        if a is None or b is None or len(a) != len(b):
            problems.append(f"trajectory shape changed: {key}")
        elif any(abs(x - y) > TRAJECTORY_TOLERANCE for x, y in zip(a, b)):
            problems.append(f"trajectory drifted: {key}")
    return problems


def main(argv: list) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    committed = load_baseline(argv[1])
    fresh = load_baseline(argv[2])
    problems = diff(committed, fresh)
    if problems:
        lines = ["## EXP-STRETCH-DUEL baseline drift", ""]
        lines += [f"- {p}" for p in problems]
        lines.append(
            "\nIf the change is intentional, regenerate with "
            "`CHURN_BENCH_QUICK=1 PYTHONPATH=src python -m benchmarks.bench_stretch` "
            "and commit `benchmarks/out/BENCH_stretch.json`."
        )
    else:
        lines = [
            "## EXP-STRETCH-DUEL baseline",
            "",
            f"stable: {len(fresh['rows'])} rows, "
            f"{len(fresh['trajectories'])} trajectories match the committed "
            "baseline.",
        ]
    text = "\n".join(lines)
    print(text)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as fh:
            fh.write(text + "\n")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
