"""EXP-ASYNC — the discrete-event transport under concurrent churn.

Four experiments on the async simnet (``transport="async"`` campaigns:
the distributed runtime heals *while further churn lands*, admission by
heal-footprint disjointness or region leases, every quiesce barrier
cross-validated against the sequential engine node-for-node):

* **EXP-ASYNC-THROUGHPUT** — heal latency and in-flight depth vs event
  concurrency: shrinking the virtual inter-arrival gap packs more heals
  into flight at once; the table reports peak concurrent heals, peak
  queued messages, heal-latency percentiles (virtual time) and the
  conflict-barrier count at each gap.
* **EXP-ASYNC-LATENCY** — the three link-latency models head to head,
  for both healers: constant (lock-step-like), uniform jitter, and
  heavy-tail (straggler-dominated), same churn stream.
* **EXP-ASYNC-SCALE** — kernel scaling: wall time per event and
  concurrency sustained as n grows to 10k.
* **EXP-OVERLAP-MAKESPAN** — the overlap policies head to head on an
  *overlap-heavy* workload (``OverlapChurnAdversary`` aims events into
  in-flight heal regions): virtual makespan of ``overlap="serialize"``
  (every conflict drains the whole network) vs ``overlap="lease"``
  (conflicting events delegate to the owning coordinator and resume on
  lease release), with lease waits and escalations reported.

Results are dumped to ``benchmarks/out/BENCH_async.json`` (the overlap
duel separately to ``benchmarks/out/BENCH_overlap.json``) for the CI
artifacts.  Quick mode: ``CHURN_BENCH_QUICK=1``.
"""

import os
import time

from repro.adversaries import OverlapChurnAdversary, ScatterChurnAdversary
from repro.baselines import ForgivingTreeHealer
from repro.fgraph.healer import ForgivingGraphHealer
from repro.graphs import generators
from repro.harness import report, run_churn_campaign
from repro.simnet import TransportSpec

from benchmarks.conftest import QUICK, dump_bench, emit, table

THROUGHPUT_N = 300 if QUICK else 2000
THROUGHPUT_EVENTS = 60 if QUICK else 250
GAPS = (2.0, 0.5, 0.1, 0.02)
LATENCY_N = 200 if QUICK else 1000
LATENCY_EVENTS = 50 if QUICK else 200
SCALE_SIZES = (100, 500) if QUICK else (100, 1000, 10_000)
SCALE_EVENTS = (lambda n: 40) if QUICK else (lambda n: max(60, n // 40))
OVERLAP_N = 250 if QUICK else 1200
OVERLAP_EVENTS = 80 if QUICK else 300
OUT_PATH = os.path.join(os.path.dirname(__file__), "out", "BENCH_async.json")
OVERLAP_OUT_PATH = os.path.join(
    os.path.dirname(__file__), "out", "BENCH_overlap.json"
)


def _campaign(healer_cls, n, events, spec, tree_seed=11, adv_seed=3, adversary=None):
    tree = generators.random_tree(n, seed=tree_seed)
    healer = healer_cls({k: set(v) for k, v in tree.items()})
    if adversary is None:
        adversary = ScatterChurnAdversary(p_insert=0.25, seed=adv_seed)
    t0 = time.perf_counter()
    result = run_churn_campaign(
        healer,
        adversary,
        events=events,
        measure_diameter=False,
        seed=adv_seed,
        transport=spec,
    )
    elapsed = time.perf_counter() - t0
    return result, elapsed


def run_throughput_sweep():
    """Concurrency knob: the virtual inter-arrival gap."""
    rows = []
    for gap in GAPS:
        spec = TransportSpec(
            mode="async", latency="uniform", gap=gap, barrier_every=16
        )
        result, elapsed = _campaign(
            ForgivingTreeHealer, THROUGHPUT_N, THROUGHPUT_EVENTS, spec
        )
        t = result.transport
        pct = t.heal_latency_percentiles
        rows.append(
            [
                gap,
                t.peak_in_flight_heals,
                t.peak_queue_depth,
                f"{pct['p50']:.2f}",
                f"{pct['p99']:.2f}",
                t.conflict_barriers,
                f"{t.makespan:.0f}",
                f"{1e3 * elapsed / t.events:.1f}",
            ]
        )
    return rows


def run_latency_models():
    rows = []
    for healer_cls, name in (
        (ForgivingTreeHealer, "forgiving-tree"),
        (ForgivingGraphHealer, "forgiving-graph"),
    ):
        for latency in ("constant", "uniform", "heavy-tail"):
            spec = TransportSpec(
                mode="async", latency=latency, gap=0.1, barrier_every=16
            )
            result, _elapsed = _campaign(
                healer_cls, LATENCY_N, LATENCY_EVENTS, spec
            )
            t = result.transport
            pct = t.heal_latency_percentiles
            rows.append(
                [
                    name,
                    latency,
                    t.peak_in_flight_heals,
                    f"{pct['p50']:.2f}",
                    f"{pct['p90']:.2f}",
                    f"{pct['p99']:.2f}",
                    f"{pct['max']:.1f}",
                ]
            )
    return rows


def run_scale_sweep():
    rows = []
    for n in SCALE_SIZES:
        events = SCALE_EVENTS(n)
        spec = TransportSpec(
            mode="async", latency="uniform", gap=0.05, barrier_every=16
        )
        result, elapsed = _campaign(ForgivingTreeHealer, n, events, spec)
        t = result.transport
        rows.append(
            [
                n,
                t.events,
                t.peak_in_flight_heals,
                t.messages_delivered,
                t.barriers,
                f"{1e3 * elapsed / t.events:.1f}",
            ]
        )
    return rows


def run_overlap_makespan():
    """EXP-OVERLAP-MAKESPAN: serialize vs lease on overlap-heavy churn."""
    rows = []
    for healer_cls, name in (
        (ForgivingTreeHealer, "forgiving-tree"),
        (ForgivingGraphHealer, "forgiving-graph"),
    ):
        makespans = {}
        for overlap in ("serialize", "lease"):
            spec = TransportSpec(
                mode="async",
                overlap=overlap,
                latency="heavy-tail",
                gap=0.05,
                barrier_every=0,  # only the final barrier: pure makespan
            )
            result, _elapsed = _campaign(
                healer_cls,
                OVERLAP_N,
                OVERLAP_EVENTS,
                spec,
                adversary=OverlapChurnAdversary(
                    seed=3, p_overlap=0.75, p_coordinator=0.02
                ),
            )
            t = result.transport
            makespans[overlap] = t.makespan
            wait_pct = t.lease_wait_percentiles
            rows.append(
                [
                    name,
                    overlap,
                    f"{t.makespan:.1f}",
                    t.conflict_barriers,
                    t.lease_waits,
                    f"{wait_pct['p50']:.2f}",
                    f"{wait_pct['max']:.1f}",
                    t.total_escalations,
                    (
                        "-"
                        if overlap == "serialize"
                        else f"{makespans['serialize'] / t.makespan:.2f}x"
                    ),
                ]
            )
    return rows


def _dump_json(throughput_rows, latency_rows, scale_rows):
    dump_bench(
        "async",
        {
            "throughput": table(
                ["gap", "peak_inflight", "peak_queue", "p50",
                 "p99", "conflicts", "makespan", "ms_per_event"],
                throughput_rows,
            ),
            "latency_models": table(
                ["healer", "latency", "peak_inflight", "p50",
                 "p90", "p99", "max"],
                latency_rows,
            ),
            "scale": table(
                ["n", "events", "peak_inflight", "delivered",
                 "barriers", "ms_per_event"],
                scale_rows,
            ),
        },
    )


OVERLAP_HEADERS = [
    "healer", "overlap", "makespan", "conflicts", "lease waits",
    "wait p50", "wait max", "escalations", "speedup",
]


def _dump_overlap_json(overlap_rows):
    dump_bench(
        "overlap",
        {"overlap_makespan": table(OVERLAP_HEADERS, overlap_rows)},
        n=OVERLAP_N,
        events=OVERLAP_EVENTS,
    )


def _check(throughput_rows, latency_rows, scale_rows, overlap_rows):
    # Concurrency rises as the gap shrinks, and the smallest gap clears
    # the acceptance bar of >= 4 concurrent in-flight heals.
    assert throughput_rows[-1][1] >= throughput_rows[0][1]
    assert throughput_rows[-1][1] >= 4
    # Every latency-model campaign sustained concurrency and positive
    # heal latencies (the barriers inside already proved convergence).
    for row in latency_rows:
        assert row[2] >= 2
        assert float(row[3]) > 0
    for row in scale_rows:
        assert row[2] >= 4
    # The ISSUE's acceptance bar: on the overlap-heavy workload the
    # lease policy records a measurably lower makespan than serialize,
    # having actually interleaved intersecting heals (lease waits > 0).
    for serialize_row, lease_row in zip(overlap_rows[0::2], overlap_rows[1::2]):
        assert serialize_row[0] == lease_row[0]
        assert float(lease_row[2]) < float(serialize_row[2]), lease_row[0]
        assert lease_row[4] > 0
        assert serialize_row[3] > 0  # serialize really hit conflicts


def test_async_benchmarks(benchmark, capsys):
    throughput_rows = benchmark.pedantic(
        run_throughput_sweep, rounds=1, iterations=1
    )
    latency_rows = run_latency_models()
    scale_rows = run_scale_sweep()
    overlap_rows = run_overlap_makespan()
    _check(throughput_rows, latency_rows, scale_rows, overlap_rows)
    _dump_json(throughput_rows, latency_rows, scale_rows)
    _dump_overlap_json(overlap_rows)

    emit(
        capsys,
        report.banner(
            f"EXP-ASYNC-THROUGHPUT  scatter churn on random-tree-{THROUGHPUT_N}, "
            "uniform latency, concurrency vs inter-arrival gap"
        ),
    )
    emit(
        capsys,
        report.format_table(
            ["gap", "peak in-flight", "peak queue", "p50 lat", "p99 lat",
             "conflicts", "makespan", "ms/event"],
            throughput_rows,
        ),
    )
    emit(
        capsys,
        report.banner(
            f"EXP-ASYNC-LATENCY  link-latency models at n={LATENCY_N}"
        ),
    )
    emit(
        capsys,
        report.format_table(
            ["healer", "latency", "peak in-flight", "p50", "p90", "p99", "max"],
            latency_rows,
        ),
    )
    emit(capsys, report.banner("EXP-ASYNC-SCALE  kernel scaling"))
    emit(
        capsys,
        report.format_table(
            ["n", "events", "peak in-flight", "delivered", "barriers",
             "ms/event"],
            scale_rows,
        ),
    )
    emit(
        capsys,
        report.banner(
            f"EXP-OVERLAP-MAKESPAN  overlap-churn on random-tree-{OVERLAP_N}, "
            "heavy-tail latency, serialize vs region leases"
        ),
    )
    emit(capsys, report.format_table(OVERLAP_HEADERS, overlap_rows))


if __name__ == "__main__":
    # Standalone mode: PYTHONPATH=src python -m benchmarks.bench_async
    _throughput = run_throughput_sweep()
    _latency = run_latency_models()
    _scale = run_scale_sweep()
    _overlap = run_overlap_makespan()
    _check(_throughput, _latency, _scale, _overlap)
    for banner, rows, headers in (
        (
            "EXP-ASYNC-THROUGHPUT  concurrency vs inter-arrival gap",
            _throughput,
            ["gap", "peak in-flight", "peak queue", "p50 lat", "p99 lat",
             "conflicts", "makespan", "ms/event"],
        ),
        (
            f"EXP-ASYNC-LATENCY  link-latency models at n={LATENCY_N}",
            _latency,
            ["healer", "latency", "peak in-flight", "p50", "p90", "p99", "max"],
        ),
        (
            "EXP-ASYNC-SCALE  kernel scaling",
            _scale,
            ["n", "events", "peak in-flight", "delivered", "barriers",
             "ms/event"],
        ),
        (
            "EXP-OVERLAP-MAKESPAN  serialize vs region leases",
            _overlap,
            OVERLAP_HEADERS,
        ),
    ):
        print(report.banner(banner))
        print(report.format_table(headers, rows))
    _dump_json(_throughput, _latency, _scale)
    _dump_overlap_json(_overlap)
    print(f"\nwrote {OUT_PATH} and {OVERLAP_OUT_PATH}")
