"""EXP-ABL-WILL — ablation: positional will splicing vs full regeneration.

The paper's "Important Note" defers the O(1)-message will maintenance to
the full version; Algorithm 3.4 as printed regenerates the whole will.
Both modes are implemented; this bench quantifies the message gap while
confirming identical structural guarantees.
"""

import random

from repro import ForgivingTree
from repro.graphs import generators
from repro.harness import report

from benchmarks.conftest import dump_bench, emit, table

SIZES = (50, 150, 400)
HEADERS = ["n", "will mode", "peak msgs/node", "total msgs"]


def run_sweep():
    rows = []
    for n in SIZES:
        tree = generators.star(n - 1)  # worst case: one huge will
        for mode in ("splice", "rebuild"):
            ft = ForgivingTree(tree, will_mode=mode)
            order = sorted(set(tree) - {0})
            random.Random(1).shuffle(order)
            peak = 0
            total = 0
            for victim in order[: n // 2]:  # leaf deletions stress the will
                rep = ft.delete(victim)
                peak = max(peak, rep.max_messages_per_node)
                total += rep.total_messages
            rows.append([n, mode, peak, total])
    return rows


def test_will_maintenance_ablation(benchmark, capsys):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    by = {(r[0], r[1]): r for r in rows}
    for n in SIZES:
        # Splice mode's peak per-node cost is flat; rebuild grows with n.
        assert by[(n, "splice")][2] <= by[(50, "splice")][2] + 4
    assert by[(400, "rebuild")][3] > by[(400, "splice")][3]
    dump_bench("ablation_wills", {"will_maintenance": table(HEADERS, rows)})
    emit(
        capsys,
        report.banner("EXP-ABL-WILL  positional splice vs regenerate (star, leaf-kills)"),
    )
    emit(capsys, report.format_table(HEADERS, rows))
