"""EXP-FIG1/2/5 — the paper's worked figures, replayed and printed.

The structural assertions live in tests/test_figures.py; this bench prints
the healed virtual trees so the reproduction log shows the figures.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro import ForgivingTree
from repro.harness import report
from tests.conftest import FIG5, FIGURE5_TREE

from benchmarks.conftest import dump_bench, emit, table


def replay():
    names = {v: k for k, v in FIG5.items()}
    engine = ForgivingTree(FIGURE5_TREE, strict=True)
    snapshots = []
    for victim in ("v", "p", "d", "h"):
        engine.delete(FIG5[victim])
        edges = sorted(
            (names[a], names[b]) for a, b in engine.edges()
        )
        snapshots.append((victim, edges, engine.max_degree_increase()))
    return snapshots


def test_figure5_replay(benchmark, capsys):
    snapshots = benchmark.pedantic(replay, rounds=1, iterations=1)
    emit(capsys, report.banner("EXP-FIG5  the four-turn example (named edges)"))
    for victim, edges, deg in snapshots:
        emit(
            capsys,
            f"turn: delete {victim:<2} (max ∆deg {deg})\n  "
            + " ".join(f"{a}-{b}" for a, b in edges),
        )
    turn1 = dict((v, e) for v, e, _ in snapshots)["v"]
    assert ("b", "c") in turn1 and ("c", "d") in turn1 and ("b", "d") in turn1
    dump_bench(
        "figures",
        {
            "figure5": table(
                ["victim", "edges", "max_ddeg"],
                [[v, [f"{a}-{b}" for a, b in e], d] for v, e, d in snapshots],
            )
        },
    )
