"""EXP-FAULT-TAX — the price of a hostile network.

One experiment: the same seeded churn campaign run at message-drop
probabilities p ∈ {0, 0.01, 0.05, 0.2} (duplication fixed at 2%), for
both healers on the async transport.  Because losses are absorbed by
the timeout/retransmit layer and duplicates by the seen-windows, the
oracle event stream is *identical* across drop rates — the sweep
isolates the fault tax: virtual makespan stretch and message overhead
(retransmissions + duplicate copies on top of the base traffic).

Each row reports the exact-accounting invariants the fault plane pins
(``retransmissions == drops``, ``dup_suppressed == duplicates``), the
base message count (identical down the sweep), and the overhead and
makespan ratios relative to the p=0 row of the same healer.

Results are dumped to ``benchmarks/out/BENCH_faults.json`` for the CI
artifacts.  Quick mode: ``CHURN_BENCH_QUICK=1``.
"""

import time

from repro.adversaries import ScatterChurnAdversary
from repro.baselines import ForgivingTreeHealer
from repro.faults import FaultPlan
from repro.fgraph.healer import ForgivingGraphHealer
from repro.graphs import generators
from repro.harness import report, run_churn_campaign
from repro.simnet import TransportSpec

from benchmarks.conftest import QUICK, dump_bench, emit, table

FAULT_N = 150 if QUICK else 800
FAULT_EVENTS = 40 if QUICK else 160
DROP_RATES = (0.0, 0.01, 0.05, 0.2)
DUP_RATE = 0.02

FAULT_HEADERS = [
    "healer", "drop", "base msgs", "retrans", "dups", "dead",
    "overhead", "makespan", "stretch", "ms/event",
]


def _campaign(healer_cls, drop, tree_seed=11, adv_seed=3):
    tree = generators.random_tree(FAULT_N, seed=tree_seed)
    healer = healer_cls({k: set(v) for k, v in tree.items()})
    spec = TransportSpec(
        mode="async", latency="uniform", gap=0.1, barrier_every=16
    )
    plan = FaultPlan(drop=drop, dup=DUP_RATE)
    t0 = time.perf_counter()
    result = run_churn_campaign(
        healer,
        ScatterChurnAdversary(p_insert=0.25, seed=adv_seed),
        events=FAULT_EVENTS,
        measure_diameter=False,
        seed=adv_seed,
        transport=spec,
        faults=plan,
    )
    elapsed = time.perf_counter() - t0
    return result, elapsed


def run_fault_tax():
    """Drop-rate sweep for both healers, overhead vs the p=0 baseline."""
    rows = []
    for healer_cls, name in (
        (ForgivingTreeHealer, "forgiving-tree"),
        (ForgivingGraphHealer, "forgiving-graph"),
    ):
        base_msgs = base_makespan = None
        for drop in DROP_RATES:
            result, elapsed = _campaign(healer_cls, drop)
            t = result.transport
            fs = t.faults
            # Every loss was retransmitted and every duplicate caught,
            # so the *base* traffic is fault-invariant down the sweep.
            assert fs.retransmissions == fs.drops, (name, drop)
            assert fs.dup_suppressed == fs.duplicates, (name, drop)
            assert fs.unrepaired_violations == 0, (name, drop)
            base = t.messages_delivered - fs.duplicates
            if base_msgs is None:
                base_msgs, base_makespan = base, t.makespan
            assert base == base_msgs, (name, drop)
            overhead = (fs.retransmissions + fs.duplicates) / base
            rows.append(
                [
                    name,
                    drop,
                    base,
                    fs.retransmissions,
                    fs.duplicates,
                    fs.dead_drops,
                    f"{100 * overhead:.1f}%",
                    f"{t.makespan:.1f}",
                    f"{t.makespan / base_makespan:.2f}x",
                    f"{1e3 * elapsed / t.events:.1f}",
                ]
            )
    return rows


def _dump_json(fault_rows):
    dump_bench(
        "faults",
        {"fault_tax": table(FAULT_HEADERS, fault_rows)},
        n=FAULT_N,
        events=FAULT_EVENTS,
        dup=DUP_RATE,
    )


def _check(fault_rows):
    per_healer = len(DROP_RATES)
    for i in range(0, len(fault_rows), per_healer):
        sweep = fault_rows[i : i + per_healer]
        # p=0 pays no retransmissions; the tax then grows monotonically
        # with the drop rate while the base traffic stays fixed.
        assert sweep[0][3] == 0, sweep[0][0]
        retrans = [row[3] for row in sweep]
        assert retrans == sorted(retrans), sweep[0][0]
        assert sweep[-1][3] > 0, sweep[-1][0]
        assert len({row[2] for row in sweep}) == 1, sweep[0][0]
        # Heavier loss can only stretch the virtual makespan.
        assert float(sweep[-1][7]) >= float(sweep[0][7]), sweep[-1][0]


def test_fault_benchmarks(benchmark, capsys):
    fault_rows = benchmark.pedantic(run_fault_tax, rounds=1, iterations=1)
    _check(fault_rows)
    _dump_json(fault_rows)

    emit(
        capsys,
        report.banner(
            f"EXP-FAULT-TAX  scatter churn on random-tree-{FAULT_N}, "
            f"uniform latency, dup={DUP_RATE}, drop-rate sweep"
        ),
    )
    emit(capsys, report.format_table(FAULT_HEADERS, fault_rows))


if __name__ == "__main__":
    # Standalone mode: PYTHONPATH=src python -m benchmarks.bench_faults
    rows = run_fault_tax()
    _check(rows)
    _dump_json(rows)
    print(
        report.banner(
            f"EXP-FAULT-TAX  scatter churn on random-tree-{FAULT_N}, "
            f"uniform latency, dup={DUP_RATE}, drop-rate sweep"
        )
    )
    print(report.format_table(FAULT_HEADERS, rows))
