"""EXP-OBS-OVERHEAD — the observability stack's cost, on and off.

Two measurements on the same seeded lease-mode churn campaign (the
workload every obs hook sits on: kernel deliveries, lease admission,
handoff transitions, quiesce barriers):

* **traced vs disabled** — wall µs/event with ``obs="full"`` (causal
  tracing + metrics + profiling + flight recorder) against ``obs=None``
  (every hook collapses to one attribute/None check), at n ∈ {100, 1000}.
* **the no-op hook itself** — a direct microbenchmark of the disabled
  guards (``tracer.enabled`` / ``profiler is None`` / ``metrics is not
  None``), scaled by the hooks executed per event, as a fraction of the
  disabled-mode per-event cost.  This is the ISSUE's acceptance bar:
  the disabled stack must cost **< 5%** — and being a deterministic
  count × a nanosecond-scale branch, the assertion is stable where a
  whole-campaign wall-clock diff at same-digit noise would flake.

**EXP-AUDIT-OVERHEAD** rides the same file: certificate checking
(``obs="audit"``) is one linear pass over the exported log at
quiescence, so its cost is measured directly — re-certification wall
against campaign wall on the same audited run — and must stay under
the same **< 5%** bar.  A linear scan of a few hundred records vs a
whole discrete-event campaign makes this assertion as stable as the
hook count.

Results go to ``benchmarks/out/BENCH_obs.json``.  Quick mode:
``CHURN_BENCH_QUICK=1``.
"""

import time

from repro.adversaries import ScatterChurnAdversary
from repro.baselines import ForgivingTreeHealer
from repro.graphs import generators
from repro.harness import report, run_churn_campaign
from repro.obs import NO_TRACE
from repro.simnet import TransportSpec

from benchmarks.conftest import QUICK, dump_bench, emit, table

SIZES = (100, 1000)
EVENTS = (lambda n: 40) if QUICK else (lambda n: max(80, n // 8))
SEED = 13

#: Disabled-mode guards executed per delivered message (the hot path):
#: the kernel's tracer check, profiler check and metrics check in
#: ``_deliver``, plus the sampler's tracer check.  Everything else
#: (per-heal, per-barrier) is amortized over many deliveries.
HOOKS_PER_DELIVERY = 4


def _campaign(n, obs):
    tree = generators.random_tree(n, seed=SEED)
    healer = ForgivingTreeHealer({k: set(v) for k, v in tree.items()})
    adversary = ScatterChurnAdversary(p_insert=0.25, seed=SEED)
    spec = TransportSpec(
        mode="async", overlap="lease", latency="uniform", gap=0.1,
        barrier_every=16,
    )
    t0 = time.perf_counter()
    result = run_churn_campaign(
        healer,
        adversary,
        events=EVENTS(n),
        measure_diameter=False,
        seed=SEED,
        transport=spec,
        obs=obs,
    )
    return result, time.perf_counter() - t0


def run_overhead_sweep():
    rows = []
    for n in SIZES:
        base, base_s = _campaign(n, None)
        full, full_s = _campaign(n, "full")
        t = base.transport
        rows.append(
            [
                n,
                t.events,
                t.messages_delivered,
                f"{1e6 * base_s / t.events:.0f}",
                f"{1e6 * full_s / t.events:.0f}",
                f"{full_s / base_s:.2f}x",
                full.obs.trace_events,
            ]
        )
    return rows


def measure_hook_cost():
    """The disabled guards' cost per event, as a fraction of event cost.

    Times the exact branch the hot path takes when obs is off
    (``NO_TRACE.enabled`` plus two ``None`` checks) and scales it by the
    per-event delivery count of the measured campaign.
    """
    tracer, profiler, metrics = NO_TRACE, None, None
    reps = 200_000
    t0 = time.perf_counter_ns()
    for _ in range(reps):
        if tracer.enabled:  # pragma: no cover - disabled
            pass
        if profiler is not None:  # pragma: no cover - disabled
            pass
        if metrics is not None:  # pragma: no cover - disabled
            pass
        if tracer.enabled:  # pragma: no cover - disabled
            pass
    hook_ns = (time.perf_counter_ns() - t0) / reps

    base, base_s = _campaign(SIZES[0], None)
    t = base.transport
    deliveries_per_event = t.messages_delivered / t.events
    event_ns = 1e9 * base_s / t.events
    # hook_ns already covers HOOKS_PER_DELIVERY guards (the loop body).
    overhead = (hook_ns * deliveries_per_event) / event_ns
    return {
        "hook_ns_per_delivery": round(hook_ns, 2),
        "deliveries_per_event": round(deliveries_per_event, 1),
        "event_us_disabled": round(event_ns / 1e3, 1),
        "disabled_overhead_fraction": round(overhead, 5),
    }


def run_audit_overhead():
    """EXP-AUDIT-OVERHEAD: certification wall vs campaign wall.

    The harness certifies once at quiescence; re-running
    ``audit_inputs.certify()`` here times exactly that pass in
    isolation, against the audited campaign's total wall."""
    rows = []
    for n in SIZES:
        result, campaign_s = _campaign(n, "audit")
        assert result.audit is not None and result.audit.ok
        certify_s = float("inf")
        for _ in range(3):  # best-of-3: the pass's cost, not OS noise
            t0 = time.perf_counter()
            result.audit_inputs.certify()
            certify_s = min(certify_s, time.perf_counter() - t0)
        rows.append(
            [
                n,
                result.transport.events,
                result.audit.records,
                len(result.audit.certificates),
                f"{1e3 * campaign_s:.1f}",
                f"{1e3 * certify_s:.2f}",
                round(certify_s / campaign_s, 4),
            ]
        )
    return rows


OVERHEAD_HEADERS = [
    "n", "events", "delivered", "us/event off", "us/event full",
    "ratio", "trace events",
]

AUDIT_HEADERS = [
    "n", "events", "log records", "heals", "campaign ms", "certify ms",
    "fraction",
]


def _check(rows, hook, audit_rows):
    for row in rows:
        assert row[6] > 0  # tracing really ran
    # The acceptance bar: the disabled stack costs < 5% of an event.
    assert hook["disabled_overhead_fraction"] < 0.05, hook
    for row in audit_rows:
        # Same bar for the auditor: one linear log scan per campaign.
        assert row[6] < 0.05, row


def test_obs_overhead(benchmark, capsys):
    rows = benchmark.pedantic(run_overhead_sweep, rounds=1, iterations=1)
    hook = measure_hook_cost()
    audit_rows = run_audit_overhead()
    _check(rows, hook, audit_rows)
    dump_bench(
        "obs",
        {
            "overhead": table(OVERHEAD_HEADERS, rows),
            "hook_cost": hook,
            "audit_overhead": table(AUDIT_HEADERS, audit_rows),
        },
    )
    emit(
        capsys,
        report.banner(
            "EXP-OBS-OVERHEAD  obs='full' vs obs=None on lease-mode churn"
        ),
    )
    emit(capsys, report.format_table(OVERHEAD_HEADERS, rows))
    emit(
        capsys,
        f"\ndisabled hooks: {hook['hook_ns_per_delivery']:.0f} ns × "
        f"{hook['deliveries_per_event']:.0f} deliveries/event = "
        f"{100 * hook['disabled_overhead_fraction']:.3f}% of a "
        f"{hook['event_us_disabled']:.0f} µs event  (bar: < 5%)",
    )
    emit(
        capsys,
        report.banner(
            "EXP-AUDIT-OVERHEAD  certificate pass vs campaign wall"
        ),
    )
    emit(capsys, report.format_table(AUDIT_HEADERS, audit_rows))


if __name__ == "__main__":
    # Standalone mode: PYTHONPATH=src python -m benchmarks.bench_obs
    _rows = run_overhead_sweep()
    _hook = measure_hook_cost()
    _audit = run_audit_overhead()
    _check(_rows, _hook, _audit)
    print(report.banner("EXP-OBS-OVERHEAD  obs='full' vs obs=None"))
    print(report.format_table(OVERHEAD_HEADERS, _rows))
    print(_hook)
    print(report.banner("EXP-AUDIT-OVERHEAD  certificate pass vs campaign wall"))
    print(report.format_table(AUDIT_HEADERS, _audit))
    print("wrote", dump_bench("obs", {
        "overhead": table(OVERHEAD_HEADERS, _rows),
        "hook_cost": _hook,
        "audit_overhead": table(AUDIT_HEADERS, _audit),
    }))
