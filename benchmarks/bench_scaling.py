"""EXP-SCALE — amortized heal time is O(1)-ish per deletion.

pytest-benchmark timings of full campaigns: time per deletion stays flat
as n grows (the engine's per-deletion work is O(deg + log ∆)).
"""

import random
import time

from repro import ForgivingTree
from repro.graphs import generators
from repro.harness import report

from benchmarks.conftest import dump_bench, emit, table


def campaign(n):
    tree = generators.random_tree(n, seed=5)
    order = sorted(tree)
    random.Random(5).shuffle(order)

    def run():
        ft = ForgivingTree(tree)
        for victim in order:
            ft.delete(victim)
        return ft

    return run


def test_heal_throughput_small(benchmark):
    benchmark(campaign(200))


def test_heal_throughput_medium(benchmark):
    benchmark(campaign(800))


def test_heal_throughput_large(benchmark, capsys):
    benchmark(campaign(2000))
    rows = []
    for n in (200, 800, 2000):
        t0 = time.perf_counter()
        campaign(n)()
        dt = time.perf_counter() - t0
        rows.append([n, f"{1e6 * dt / n:.1f}"])
    dump_bench("scaling", {"heal_throughput": table(["n", "us_per_delete"], rows)})
    emit(
        capsys,
        report.banner("EXP-SCALE  compare ops/sec across sizes above")
        + "\n(time per deletion = total/n stays near-flat: O(deg + log ∆) heals)",
    )
