"""EXP-SCALE — amortized heal time is O(1)-ish per deletion.

pytest-benchmark timings of full campaigns: time per deletion stays flat
as n grows (the engine's per-deletion work is O(deg + log ∆)).
"""

import random

from repro import ForgivingTree
from repro.graphs import generators
from repro.harness import report

from benchmarks.conftest import emit


def campaign(n):
    tree = generators.random_tree(n, seed=5)
    order = sorted(tree)
    random.Random(5).shuffle(order)

    def run():
        ft = ForgivingTree(tree)
        for victim in order:
            ft.delete(victim)
        return ft

    return run


def test_heal_throughput_small(benchmark):
    benchmark(campaign(200))


def test_heal_throughput_medium(benchmark):
    benchmark(campaign(800))


def test_heal_throughput_large(benchmark, capsys):
    benchmark(campaign(2000))
    emit(
        capsys,
        report.banner("EXP-SCALE  compare ops/sec across sizes above")
        + "\n(time per deletion = total/n stays near-flat: O(deg + log ∆) heals)",
    )
