"""Benchmark suite configuration.

Every benchmark regenerates one of the paper's results (see DESIGN.md §4
and EXPERIMENTS.md) and prints the measured rows next to the theoretical
bound, so ``pytest benchmarks/ --benchmark-only`` doubles as the
reproduction log.  Every benchmark also dumps its tables to
``benchmarks/out/BENCH_<name>.json`` (:func:`dump_bench`), so a CI run
leaves a machine-readable artifact per experiment, quick or full.
"""

import json
import math
import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

QUICK = os.environ.get("CHURN_BENCH_QUICK", "").strip().lower() not in (
    "", "0", "false", "no",
)


def emit(capsys, text: str) -> None:
    """Print a report table outside pytest's capture."""
    with capsys.disabled():
        print(text)


def _coerce(cell):
    """Return display-formatted numbers ("126", "5.2x", "97%") as numbers.

    Benchmarks format cells for the printed tables; the JSON artifact must
    keep numeric columns *numeric* so baseline checks compare numbers, not
    strings (lexically, "97" > "126").  Unit suffixes ``x``/``%`` are
    display-only and dropped.  Anything that is not a finite number passes
    through untouched.
    """
    if not isinstance(cell, str):
        return cell
    body = cell[:-1] if cell.endswith(("x", "%")) else cell
    try:
        return int(body)
    except ValueError:
        try:
            value = float(body)
        except ValueError:
            return cell
    return value if math.isfinite(value) else cell


def dump_bench(name: str, tables, **extra) -> str:
    """Write one benchmark's tables to ``benchmarks/out/BENCH_<name>.json``.

    ``tables`` maps a table name to ``{"headers": [...], "rows": [...]}``
    (or any JSON-able payload); ``extra`` adds top-level keys.  The
    ``quick`` flag is always recorded so a baseline diff knows which
    regime produced the artifact.  Returns the path written.

    Payloads must be JSON-serializable as-is — non-serializable values
    raise instead of being silently stringified (the former ``default=str``
    turned numeric columns into strings, breaking numeric baseline diffs).
    """
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump({"quick": QUICK, **extra, **tables}, fh, indent=2)
        fh.write("\n")
    return path


def table(headers, rows) -> dict:
    """The standard ``{"headers": ..., "rows": ...}`` table payload.

    Cells that are display-formatted numbers are restored to numbers
    (:func:`_coerce`) so JSON consumers always see numeric columns.
    """
    return {
        "headers": list(headers),
        "rows": [[_coerce(c) for c in r] for r in rows],
    }
