"""Benchmark suite configuration.

Every benchmark regenerates one of the paper's results (see DESIGN.md §4
and EXPERIMENTS.md) and prints the measured rows next to the theoretical
bound, so ``pytest benchmarks/ --benchmark-only`` doubles as the
reproduction log.
"""

import pytest


def emit(capsys, text: str) -> None:
    """Print a report table outside pytest's capture."""
    with capsys.disabled():
        print(text)
