"""Benchmark suite configuration.

Every benchmark regenerates one of the paper's results (see DESIGN.md §4
and EXPERIMENTS.md) and prints the measured rows next to the theoretical
bound, so ``pytest benchmarks/ --benchmark-only`` doubles as the
reproduction log.  Every benchmark also dumps its tables to
``benchmarks/out/BENCH_<name>.json`` (:func:`dump_bench`), so a CI run
leaves a machine-readable artifact per experiment, quick or full.
"""

import json
import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

QUICK = os.environ.get("CHURN_BENCH_QUICK", "").strip().lower() not in (
    "", "0", "false", "no",
)


def emit(capsys, text: str) -> None:
    """Print a report table outside pytest's capture."""
    with capsys.disabled():
        print(text)


def dump_bench(name: str, tables, **extra) -> str:
    """Write one benchmark's tables to ``benchmarks/out/BENCH_<name>.json``.

    ``tables`` maps a table name to ``{"headers": [...], "rows": [...]}``
    (or any JSON-able payload); ``extra`` adds top-level keys.  The
    ``quick`` flag is always recorded so a baseline diff knows which
    regime produced the artifact.  Returns the path written.
    """
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump({"quick": QUICK, **extra, **tables}, fh, indent=2, default=str)
        fh.write("\n")
    return path


def table(headers, rows) -> dict:
    """The standard ``{"headers": ..., "rows": ...}`` table payload."""
    return {"headers": list(headers), "rows": [list(r) for r in rows]}
