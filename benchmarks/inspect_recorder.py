#!/usr/bin/env python3
"""Pretty-print a FlightRecorder JSONL dump (the bisection entry point).

A soak's SLO breach (or a transport cross-validation failure) dumps the
flight-recorder ring to JSONL with a header naming the covered
**event-id window** — the replayable slice of the campaign.  This tool
renders that dump for a human: the header first (what window, how much
was evicted before it), then the events as an aligned table, with
``--kind`` filtering and ``--tail`` for the usual "what happened right
before it blew up" question.

Usage::

    PYTHONPATH=src python benchmarks/inspect_recorder.py dump.jsonl
    PYTHONPATH=src python benchmarks/inspect_recorder.py dump.jsonl \\
        --kind alert --tail 20

Exit codes: 0 ok; 1 the file is not a recorder dump; 2 usage error.
"""

import argparse
import json
import sys


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="inspect_recorder.py",
        description="pretty-print a FlightRecorder JSONL dump",
    )
    parser.add_argument("path", help="recorder dump (JSONL, header first)")
    parser.add_argument("--kind", help="only show events of this kind")
    parser.add_argument("--tail", type=int, metavar="N",
                        help="only the last N events")
    parser.add_argument("--json", action="store_true",
                        help="re-emit the (filtered) events as JSONL "
                             "instead of a table")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        with open(args.path) as fh:
            lines = [line for line in fh if line.strip()]
        rows = [json.loads(line) for line in lines]
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{args.path}: not a recorder dump — {exc}", file=sys.stderr)
        return 1
    if not rows or "recorded_total" not in rows[0]:
        print(f"{args.path}: missing recorder header", file=sys.stderr)
        return 1
    header, events = rows[0], rows[1:]
    if args.kind:
        events = [e for e in events if e.get("kind") == args.kind]
    if args.tail is not None:
        events = events[-args.tail:]

    print(
        f"recorder {header.get('recorder', '?')!r}: "
        f"events {header['first_id']}..{header['last_id']} "
        f"({len(rows) - 1} held, {header['evicted']} evicted, "
        f"{header['recorded_total']} recorded total, "
        f"capacity {header['capacity']})"
    )
    if header["evicted"]:
        print(
            f"  replay window: resume the nearest checkpoint at or before "
            f"event {header['first_id']} and play forward"
        )
    if args.json:
        for event in events:
            print(json.dumps(event, sort_keys=True))
        return 0
    if not events:
        print("  (no events match)")
        return 0
    extras = sorted(
        {k for e in events for k in e} - {"id", "kind", "clock"}
    )
    widths = {
        k: max(len(k), *(len(str(e.get(k, ""))) for e in events))
        for k in extras
    }
    head = f"  {'id':>8}  {'clock':>10}  {'kind':<10}" + "".join(
        f"  {k:>{widths[k]}}" for k in extras
    )
    print(head)
    print("  " + "-" * (len(head) - 2))
    for event in events:
        line = (
            f"  {event['id']:>8}  {event['clock']:>10}  "
            f"{event.get('kind', '?'):<10}"
        )
        line += "".join(
            f"  {str(event.get(k, '')):>{widths[k]}}" for k in extras
        )
        print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
