"""EXP-CHURN — healers under mixed insert/delete streams (the churn game).

Three experiments:

* **EXP-CHURN-SCALE** — the Forgiving Tree under a random churn stream at
  n0 up to 10k: per-event wall time, peak degree increase, and peak
  synthesized messages per node stay flat as the network scales.
* **EXP-CHURN-DUEL** — head-to-head healers under growth-then-massacre:
  the join wave grows the network, then the hub attack tears it down;
  the Forgiving Tree keeps both guarantees while the baselines reproduce
  their signature failures.
* **EXP-METRICS-SCALING** — per-round diameter measurement cost, full
  BFS (double sweep, O(m)/round; ``diameter_exact`` is O(n·m) and is
  already unaffordable at these sizes) vs the incremental engine
  (O(depth)/round), on the same churn stream at n up to 20k.  The two
  values are cross-checked every round: equal whenever the overlay is a
  tree; with heal chords the incremental value brackets from above what
  the sweep brackets from below.

Results are also dumped to ``benchmarks/out/BENCH_churn.json`` so CI can
archive the trajectory as a workflow artifact.

Quick mode (for CI smoke runs): set ``CHURN_BENCH_QUICK=1`` to shrink the
sizes to seconds of runtime.
"""

import json
import os
import time

from repro.adversaries import (
    GrowthThenMassacreAdversary,
    RandomChurnAdversary,
    WaveChurnAdversary,
)
from repro.baselines import (
    BinaryTreeHealer,
    ForgivingTreeHealer,
    LineHealer,
    SurrogateHealer,
)
from repro.churn import Insert, InsertWave
from repro.graphs import generators
from repro.graphs.incremental import DynamicTreeMetrics
from repro.graphs.metrics import diameter_double_sweep
from repro.harness import churn_duel, report, run_churn_campaign

from benchmarks.conftest import emit

QUICK = os.environ.get("CHURN_BENCH_QUICK", "").strip().lower() not in (
    "", "0", "false", "no",
)

SCALE_SIZES = (100, 1000) if QUICK else (100, 1000, 10_000)
SCALE_EVENTS = (lambda n: max(40, n // 10)) if QUICK else (lambda n: n // 2)
DUEL_N = 60 if QUICK else 300
DUEL_GROWTH = 30 if QUICK else 150
METRICS_SIZES = (200, 1000) if QUICK else (1000, 5000, 10_000, 20_000)
METRICS_ROUNDS = 60 if QUICK else 200
OUT_PATH = os.path.join(os.path.dirname(__file__), "out", "BENCH_churn.json")


def run_scale_sweep():
    rows = []
    for n0 in SCALE_SIZES:
        tree = generators.random_tree(n0, seed=1)
        healer = ForgivingTreeHealer({k: set(v) for k, v in tree.items()})
        adversary = RandomChurnAdversary(p_insert=0.5, seed=1)
        events = SCALE_EVENTS(n0)
        t0 = time.perf_counter()
        result = run_churn_campaign(
            healer, adversary, events=events, measure_diameter=False
        )
        elapsed = time.perf_counter() - t0
        rows.append(
            [
                n0,
                events,
                result.final_alive,
                result.peak_degree_increase,
                result.peak_messages_per_node,
                result.stayed_connected,
                f"{1e6 * elapsed / max(1, len(result.rounds)):.0f}",
            ]
        )
    return rows


def run_churn_duel():
    tree = generators.random_tree(DUEL_N, seed=7)
    results = churn_duel(
        tree,
        [ForgivingTreeHealer, SurrogateHealer, LineHealer, BinaryTreeHealer],
        lambda: GrowthThenMassacreAdversary(growth=DUEL_GROWTH, seed=7),
        events=DUEL_GROWTH + DUEL_N // 2,
    )
    return [
        [
            name,
            res.n_inserts,
            res.n_deletes,
            res.peak_degree_increase,
            res.peak_diameter,
            res.stayed_connected,
        ]
        for name, res in sorted(results.items())
    ]


def run_metrics_scaling():
    """Per-round diameter measurement: full-BFS sweep vs incremental.

    Both are driven by the same churn stream over the same engine; the
    shared per-round cost (applying the event, materializing the image)
    is excluded from both timers so the rows isolate measurement cost.
    """
    rows = []
    for n in METRICS_SIZES:
        tree = generators.random_tree(n, seed=2)
        engine = ForgivingTreeHealer({k: set(v) for k, v in tree.items()}).engine
        tracker = DynamicTreeMetrics(tree)
        adversary = RandomChurnAdversary(p_insert=0.5, seed=2)
        adversary.reset()

        class _Shim:
            """Just enough healer surface for the adversary."""

            alive = property(lambda self: engine.alive)
            known_ids = property(lambda self: set(engine.original_degree))

            def graph(self):
                return engine.adjacency()

        shim = _Shim()
        t_sweep = t_inc = 0.0
        agree = brackets = 0
        for _ in range(METRICS_ROUNDS):
            event = adversary.next_event(shim)
            if isinstance(event, Insert):
                rep = engine.insert(event.nid, event.attach_to)
            else:
                rep = engine.delete(event.nid)
            image = engine.adjacency()

            t0 = time.perf_counter()
            d_sweep = diameter_double_sweep(image, seed=2)
            t_sweep += time.perf_counter() - t0

            t0 = time.perf_counter()
            tracker.apply_report(rep)
            d_inc = tracker.diameter
            t_inc += time.perf_counter() - t0

            if d_inc == d_sweep:
                agree += 1
            assert d_sweep <= d_inc, "brackets inverted"
            if tracker.is_exact:
                assert d_inc == d_sweep, "exact mode must match the sweep"
            brackets += 1
        speedup = t_sweep / t_inc if t_inc else float("inf")
        rows.append(
            [
                n,
                METRICS_ROUNDS,
                f"{1e6 * t_sweep / METRICS_ROUNDS:.0f}",
                f"{1e6 * t_inc / METRICS_ROUNDS:.0f}",
                f"{speedup:.1f}x",
                f"{100 * agree / brackets:.0f}%",
            ]
        )
    return rows


def _dump_json(scale_rows, duel_rows, metrics_rows):
    os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
    with open(OUT_PATH, "w") as fh:
        json.dump(
            {
                "quick": QUICK,
                "scale": {
                    "headers": ["n0", "events", "final_n", "peak_ddeg",
                                "peak_msg_node", "connected", "us_per_event"],
                    "rows": scale_rows,
                },
                "duel": {
                    "headers": ["healer", "inserts", "deletes", "peak_ddeg",
                                "peak_diameter", "connected"],
                    "rows": duel_rows,
                },
                "metrics_scaling": {
                    "headers": ["n", "rounds", "us_sweep", "us_incremental",
                                "speedup", "agreement"],
                    "rows": metrics_rows,
                },
            },
            fh,
            indent=2,
            default=str,
        )


def test_churn_benchmarks(benchmark, capsys):
    scale_rows = benchmark.pedantic(run_scale_sweep, rounds=1, iterations=1)
    duel_rows = run_churn_duel()
    metrics_rows = run_metrics_scaling()

    # The guarantees hold at every scale sampled.
    for row in scale_rows:
        assert row[3] <= 3  # peak degree increase
        assert row[5] is True  # stayed connected
    # Messages per node stay flat from n=100 to the largest size.
    assert scale_rows[-1][4] <= scale_rows[0][4] + 6

    by_name = {r[0]: r for r in duel_rows}
    assert by_name["forgiving-tree"][3] <= 3
    assert by_name["forgiving-tree"][5] is True
    assert by_name["surrogate"][3] > 3  # degree blow-up survives churn

    # The incremental engine wins by >= 5x (the acceptance bar is at
    # n=10k, where it wins by ~47x).  Only sizes with millisecond-scale
    # sweeps are asserted — at n=200 the per-round timings are single
    # microseconds and a CI scheduler hiccup could flake the ratio.
    for row in metrics_rows:
        if row[0] >= 1000:
            assert float(row[4].rstrip("x")) >= 5.0

    _dump_json(scale_rows, duel_rows, metrics_rows)

    emit(capsys, report.banner("EXP-CHURN-SCALE  random churn, p_insert=0.5"))
    emit(
        capsys,
        report.format_table(
            ["n0", "events", "final n", "peak ∆deg", "peak msg/node",
             "connected", "µs/event"],
            scale_rows,
        ),
    )
    emit(
        capsys,
        report.banner(
            f"EXP-CHURN-DUEL  growth({DUEL_GROWTH}) then hub massacre on "
            f"random-tree-{DUEL_N}"
        ),
    )
    emit(
        capsys,
        report.format_table(
            ["healer", "inserts", "deletes", "peak ∆deg", "peak diameter",
             "connected"],
            duel_rows,
        ),
    )
    emit(
        capsys,
        report.banner(
            "EXP-METRICS-SCALING  per-round diameter: full-BFS sweep vs incremental"
        ),
    )
    emit(
        capsys,
        report.format_table(
            ["n", "rounds", "µs/round sweep", "µs/round incr", "speedup",
             "agreement"],
            metrics_rows,
        ),
    )


if __name__ == "__main__":
    # Standalone mode: PYTHONPATH=src python -m benchmarks.bench_churn
    _scale = run_scale_sweep()
    _duel = run_churn_duel()
    _metrics = run_metrics_scaling()
    for banner, rows, headers in (
        (
            "EXP-CHURN-SCALE  random churn, p_insert=0.5",
            _scale,
            ["n0", "events", "final n", "peak ∆deg", "peak msg/node",
             "connected", "µs/event"],
        ),
        (
            f"EXP-CHURN-DUEL  growth({DUEL_GROWTH}) then hub massacre",
            _duel,
            ["healer", "inserts", "deletes", "peak ∆deg", "peak diameter",
             "connected"],
        ),
        (
            "EXP-METRICS-SCALING  per-round diameter: full-BFS sweep vs incremental",
            _metrics,
            ["n", "rounds", "µs/round sweep", "µs/round incr", "speedup",
             "agreement"],
        ),
    ):
        print(report.banner(banner))
        print(report.format_table(headers, rows))
    _dump_json(_scale, _duel, _metrics)
    print(f"\nwrote {OUT_PATH}")
