"""EXP-CHURN — healers under mixed insert/delete streams (the churn game).

Four experiments:

* **EXP-CHURN-SCALE** — the Forgiving Tree under a random churn stream at
  n0 up to 10k: per-event wall time, peak degree increase, and peak
  synthesized messages per node stay flat as the network scales.
* **EXP-CHURN-DUEL** — head-to-head healers under growth-then-massacre:
  the join wave grows the network, then the hub attack tears it down;
  the Forgiving Tree keeps both guarantees while the baselines reproduce
  their signature failures.
* **EXP-METRICS-SCALING** — per-round diameter measurement cost, full
  BFS (double sweep, O(m)/round; ``diameter_exact`` is O(n·m) and is
  already unaffordable at these sizes) vs the incremental engine
  (O(depth)/round), on the same churn stream at n up to 20k.  The two
  values are cross-checked every round: equal whenever the overlay is a
  tree; with heal chords the incremental value brackets from above what
  the sweep brackets from below.
* **EXP-CHURN-LADDER** — the EXP-METRICS-SCALING extension at flat-core
  scale: sustained random churn at n ∈ {10k, 100k, 1M} through the full
  production path (healer → harness, ``metrics="none"`` fast stats,
  ``keep_rounds=False`` streaming, O(1) adversary sampling).  Per-event
  cost must stay ~flat across the ladder — the committed baseline is
  gated by ``benchmarks/check_churn_baseline.py`` (≤ 2x µs/event growth
  bottom rung to top).

Results are also dumped to ``benchmarks/out/BENCH_churn.json`` so CI can
archive the trajectory as a workflow artifact and gate the ladder.

Quick mode (for CI smoke runs): set ``CHURN_BENCH_QUICK=1`` to shrink the
sizes to seconds of runtime (the ladder then runs n ∈ {10k, 50k}).
"""

import gc
import os
import statistics
import time

from repro.adversaries import (
    GrowthThenMassacreAdversary,
    RandomChurnAdversary,
)
from repro.baselines import (
    BinaryTreeHealer,
    ForgivingTreeHealer,
    LineHealer,
    SurrogateHealer,
)
from repro.churn import Insert
from repro.graphs import generators
from repro.graphs.incremental import DynamicTreeMetrics
from repro.graphs.metrics import diameter_double_sweep
from repro.harness import churn_duel, report, run_churn_campaign

from benchmarks.conftest import QUICK, dump_bench, emit, table

SCALE_SIZES = (100, 1000) if QUICK else (100, 1000, 10_000)
SCALE_EVENTS = (lambda n: max(40, n // 10)) if QUICK else (lambda n: n // 2)
DUEL_N = 60 if QUICK else 300
DUEL_GROWTH = 30 if QUICK else 150
METRICS_SIZES = (200, 1000) if QUICK else (1000, 5000, 10_000, 20_000)
METRICS_ROUNDS = 60 if QUICK else 200
LADDER_SIZES = (10_000, 50_000) if QUICK else (10_000, 100_000, 1_000_000)
LADDER_EVENTS = 400 if QUICK else 2000
#: µs/event growth allowed across the whole ladder (top rung / bottom
#: rung) before the in-bench assertion trips.  The CI gate proper lives in
#: ``check_churn_baseline.py`` (2.0 on committed baselines); the in-test
#: bar is looser to absorb shared-runner scheduling noise.
LADDER_MAX_GROWTH_IN_TEST = 3.0


def run_scale_sweep():
    rows = []
    for n0 in SCALE_SIZES:
        tree = generators.random_tree(n0, seed=1)
        healer = ForgivingTreeHealer({k: set(v) for k, v in tree.items()})
        adversary = RandomChurnAdversary(p_insert=0.5, seed=1)
        events = SCALE_EVENTS(n0)
        t0 = time.perf_counter()
        result = run_churn_campaign(
            healer, adversary, events=events, measure_diameter=False
        )
        elapsed = time.perf_counter() - t0
        rows.append(
            [
                n0,
                events,
                result.final_alive,
                result.peak_degree_increase,
                result.peak_messages_per_node,
                result.stayed_connected,
                round(1e6 * elapsed / max(1, len(result.rounds)), 1),
            ]
        )
    return rows


def run_flat_ladder():
    """Sustained churn at flat-core scale through the production path.

    Each rung plays ``LADDER_EVENTS`` mixed insert/delete events against
    the (flat-core) healer via :func:`run_churn_campaign` with every
    large-n knob on: ``metrics="none"`` + healer fast stats (no per-event
    graph materialization), ``keep_rounds=False`` (O(1) memory), and the
    adversary's O(1) ``fast_sample`` path.  Per-event durations are taken
    between round callbacks, so setup — building the healer and the
    campaign's one O(n) initial snapshot — is excluded, and the gated
    column is the *median* duration: an O(n)-per-event regression shifts
    every event and therefore the median, while interpreter artifacts
    that hit a few percent of events (gen-2 GC pauses scanning the
    million-entry id maps, the adversary's one-time fresh-id seed) only
    move the mean, which is reported alongside for honesty.
    """
    rows = []
    for n0 in LADDER_SIZES:
        tree = generators.random_tree(n0, seed=3)
        healer = ForgivingTreeHealer({k: set(v) for k, v in tree.items()})
        adversary = RandomChurnAdversary(p_insert=0.5, seed=3, fast_sample=True)
        gc.collect()  # level the playing field between rungs
        durations = []
        last = [0.0]

        def _tick(record, _healer):
            now = time.perf_counter()
            if last[0]:
                durations.append(now - last[0])
            last[0] = now

        result = run_churn_campaign(
            healer,
            adversary,
            events=LADDER_EVENTS,
            metrics="none",
            keep_rounds=False,
            on_round=_tick,
        )
        rows.append(
            [
                n0,
                result.n_inserts + result.n_deletes,
                result.final_alive,
                result.peak_degree_increase,
                result.peak_messages_per_node,
                result.stayed_connected,
                round(1e6 * statistics.median(durations), 2),
                round(1e6 * statistics.fmean(durations), 2),
            ]
        )
    return rows


def ladder_growth(rows) -> float:
    """µs/event growth across the ladder: top rung over bottom rung."""
    return rows[-1][6] / max(rows[0][6], 1e-9)


def run_churn_duel():
    tree = generators.random_tree(DUEL_N, seed=7)
    results = churn_duel(
        tree,
        [ForgivingTreeHealer, SurrogateHealer, LineHealer, BinaryTreeHealer],
        lambda: GrowthThenMassacreAdversary(growth=DUEL_GROWTH, seed=7),
        events=DUEL_GROWTH + DUEL_N // 2,
    )
    return [
        [
            name,
            res.n_inserts,
            res.n_deletes,
            res.peak_degree_increase,
            res.peak_diameter,
            res.stayed_connected,
        ]
        for name, res in sorted(results.items())
    ]


def run_metrics_scaling():
    """Per-round diameter measurement: full-BFS sweep vs incremental.

    Both are driven by the same churn stream over the same engine; the
    shared per-round cost (applying the event, materializing the image)
    is excluded from both timers so the rows isolate measurement cost.
    """
    rows = []
    for n in METRICS_SIZES:
        tree = generators.random_tree(n, seed=2)
        engine = ForgivingTreeHealer({k: set(v) for k, v in tree.items()}).engine
        tracker = DynamicTreeMetrics(tree)
        adversary = RandomChurnAdversary(p_insert=0.5, seed=2)
        adversary.reset()

        class _Shim:
            """Just enough healer surface for the adversary."""

            alive = property(lambda self: engine.alive)
            known_ids = property(lambda self: set(engine.original_degree))

            def graph(self):
                return engine.adjacency()

        shim = _Shim()
        t_sweep = t_inc = 0.0
        agree = brackets = 0
        for _ in range(METRICS_ROUNDS):
            event = adversary.next_event(shim)
            if isinstance(event, Insert):
                rep = engine.insert(event.nid, event.attach_to)
            else:
                rep = engine.delete(event.nid)
            image = engine.adjacency()

            t0 = time.perf_counter()
            d_sweep = diameter_double_sweep(image, seed=2)
            t_sweep += time.perf_counter() - t0

            t0 = time.perf_counter()
            tracker.apply_report(rep)
            d_inc = tracker.diameter
            t_inc += time.perf_counter() - t0

            if d_inc == d_sweep:
                agree += 1
            assert d_sweep <= d_inc, "brackets inverted"
            if tracker.is_exact:
                assert d_inc == d_sweep, "exact mode must match the sweep"
            brackets += 1
        speedup = t_sweep / t_inc if t_inc else float("inf")
        rows.append(
            [
                n,
                METRICS_ROUNDS,
                round(1e6 * t_sweep / METRICS_ROUNDS, 1),
                round(1e6 * t_inc / METRICS_ROUNDS, 1),
                round(speedup, 1),
                round(100 * agree / brackets, 1),
            ]
        )
    return rows


SCALE_HEADERS = ["n0", "events", "final_n", "peak_ddeg", "peak_msg_node",
                 "connected", "us_per_event"]
LADDER_HEADERS = ["n0", "events", "final_n", "peak_ddeg", "peak_msg_node",
                  "connected", "us_per_event", "us_mean"]
DUEL_HEADERS = ["healer", "inserts", "deletes", "peak_ddeg",
                "peak_diameter", "connected"]
METRICS_HEADERS = ["n", "rounds", "us_sweep", "us_incremental",
                   "speedup", "agreement_pct"]


def _dump_json(scale_rows, duel_rows, metrics_rows, ladder_rows):
    return dump_bench(
        "churn",
        {
            "scale": table(SCALE_HEADERS, scale_rows),
            "duel": table(DUEL_HEADERS, duel_rows),
            "metrics_scaling": table(METRICS_HEADERS, metrics_rows),
            "ladder": table(LADDER_HEADERS, ladder_rows),
        },
        ladder_events=LADDER_EVENTS,
    )


def _check_guarantees(scale_rows, duel_rows, metrics_rows, ladder_rows):
    # The guarantees hold at every scale sampled.
    for row in scale_rows:
        assert row[3] <= 3  # peak degree increase
        assert row[5] is True  # stayed connected
    # Messages per node stay flat from n=100 to the largest size.
    assert scale_rows[-1][4] <= scale_rows[0][4] + 6

    by_name = {r[0]: r for r in duel_rows}
    assert by_name["forgiving-tree"][3] <= 3
    assert by_name["forgiving-tree"][5] is True
    assert by_name["surrogate"][3] > 3  # degree blow-up survives churn

    # The incremental engine wins by >= 5x (the acceptance bar is at
    # n=10k, where it wins by ~47x).  Only sizes with millisecond-scale
    # sweeps are asserted — at n=200 the per-round timings are single
    # microseconds and a CI scheduler hiccup could flake the ratio.
    for row in metrics_rows:
        if row[0] >= 1000:
            assert row[4] >= 5.0

    # The flat-core ladder: guarantees hold at every rung and per-event
    # cost stays ~flat (the committed-baseline gate enforces 2.0; the
    # in-test bar absorbs runner noise).
    for row in ladder_rows:
        assert row[3] <= 3
        assert row[5] is True
    growth = ladder_growth(ladder_rows)
    assert growth <= LADDER_MAX_GROWTH_IN_TEST, (
        f"per-event cost grew {growth:.1f}x from n={ladder_rows[0][0]} to "
        f"n={ladder_rows[-1][0]} (bar: {LADDER_MAX_GROWTH_IN_TEST}x)"
    )


def test_churn_benchmarks(benchmark, capsys):
    scale_rows = benchmark.pedantic(run_scale_sweep, rounds=1, iterations=1)
    duel_rows = run_churn_duel()
    metrics_rows = run_metrics_scaling()
    ladder_rows = run_flat_ladder()

    _check_guarantees(scale_rows, duel_rows, metrics_rows, ladder_rows)
    _dump_json(scale_rows, duel_rows, metrics_rows, ladder_rows)

    emit(capsys, report.banner("EXP-CHURN-SCALE  random churn, p_insert=0.5"))
    emit(
        capsys,
        report.format_table(
            ["n0", "events", "final n", "peak ∆deg", "peak msg/node",
             "connected", "µs/event"],
            scale_rows,
        ),
    )
    emit(
        capsys,
        report.banner(
            f"EXP-CHURN-DUEL  growth({DUEL_GROWTH}) then hub massacre on "
            f"random-tree-{DUEL_N}"
        ),
    )
    emit(
        capsys,
        report.format_table(
            ["healer", "inserts", "deletes", "peak ∆deg", "peak diameter",
             "connected"],
            duel_rows,
        ),
    )
    emit(
        capsys,
        report.banner(
            "EXP-METRICS-SCALING  per-round diameter: full-BFS sweep vs incremental"
        ),
    )
    emit(
        capsys,
        report.format_table(
            ["n", "rounds", "µs/round sweep", "µs/round incr", "speedup",
             "agreement %"],
            metrics_rows,
        ),
    )
    emit(
        capsys,
        report.banner(
            "EXP-CHURN-LADDER  flat-core sustained churn "
            f"({LADDER_EVENTS} events/rung)"
        ),
    )
    emit(
        capsys,
        report.format_table(
            ["n0", "events", "final n", "peak ∆deg", "peak msg/node",
             "connected", "µs/event (median)", "µs mean"],
            ladder_rows,
        ),
    )


if __name__ == "__main__":
    # Standalone mode: PYTHONPATH=src python -m benchmarks.bench_churn
    _scale = run_scale_sweep()
    _duel = run_churn_duel()
    _metrics = run_metrics_scaling()
    _ladder = run_flat_ladder()
    for banner, rows, headers in (
        (
            "EXP-CHURN-SCALE  random churn, p_insert=0.5",
            _scale,
            ["n0", "events", "final n", "peak ∆deg", "peak msg/node",
             "connected", "µs/event"],
        ),
        (
            f"EXP-CHURN-DUEL  growth({DUEL_GROWTH}) then hub massacre",
            _duel,
            ["healer", "inserts", "deletes", "peak ∆deg", "peak diameter",
             "connected"],
        ),
        (
            "EXP-METRICS-SCALING  per-round diameter: full-BFS sweep vs incremental",
            _metrics,
            ["n", "rounds", "µs/round sweep", "µs/round incr", "speedup",
             "agreement %"],
        ),
        (
            f"EXP-CHURN-LADDER  flat-core sustained churn ({LADDER_EVENTS} events/rung)",
            _ladder,
            ["n0", "events", "final n", "peak ∆deg", "peak msg/node",
             "connected", "µs/event (median)", "µs mean"],
        ),
    ):
        print(report.banner(banner))
        print(report.format_table(headers, rows))
    _check_guarantees(_scale, _duel, _metrics, _ladder)
    print(f"\nwrote {_dump_json(_scale, _duel, _metrics, _ladder)}")
